//! Durability: the append-only write-ahead log, group commit, and checkpoints.
//!
//! The in-memory fabric publishes state in batch-sized steps — a [`CommitBatch`] /
//! [`ShardedBatch`](crate::ShardedBatch) is one coalesced epoch bump, and PR 5's
//! `ShardCut` already defines what a consistent published state *is*.  This module
//! makes those steps survive a crash:
//!
//! * **Record = batch.**  A [`WalRecord`] is one published batch: its logical
//!   version (batches since genesis), its dirty [`ComponentSet`] bitmask, and the
//!   ordered [`LogOp`]s that were *attempted* (failed commits keep their partial
//!   effects — deterministically, so replaying the same ops reproduces the same
//!   state; `tests/prop_shard.rs` pins that invariant).  Records are serialized as
//!   JSON and framed `[len: u32 LE][crc32: u32 LE][payload]`; the CRC is over the
//!   payload, so a torn or bit-flipped tail is *detected*, never misdecoded
//!   (`tests/prop_wal.rs`).
//! * **Group commit.**  [`Wal::append_record`] under [`DurabilityMode::Sync`] uses a
//!   leader/follower protocol: while one committer is inside `fsync`, every batch
//!   submitted concurrently queues up and the next leader flushes them all with a
//!   single write+fsync.  `batches per fsync` is observable via [`Wal::stats`].
//! * **Checkpoint = study snapshot + truncation.**  [`Wal::write_checkpoint`]
//!   persists a CRC-framed [`Checkpoint`] (a [`StudySnapshot`] plus the version and
//!   shard count), fsyncs it, and only then truncates the log.  Recovery replays
//!   checkpoint-then-tail, skipping tail records at or below the checkpoint version,
//!   so a crash *between* the checkpoint write and the truncation is harmless (see
//!   [`crate::recovery`]).
//! * **Pluggable storage.**  [`WalStorage`] abstracts the byte layer: [`FileStorage`]
//!   for real logs, [`MemStorage`] for tests, and [`FaultStorage`] — a deterministic
//!   fault-injection backend that can tear an append mid-record, flip a byte, drop an
//!   fsync, or power-cut between checkpoint and truncation at an enumerated
//!   [`CrashPoint`], exposing the surviving bytes as a [`CrashImage`] for the
//!   crash-recovery battery.
//!
//! [`DurableSystem`] / [`DurableShardedSystem`] wrap [`Graphitti`] /
//! [`ShardedSystem`]: `apply` runs one batch of [`LogOp`]s and appends its record
//! *before returning*, so by the time a caller publishes the resulting snapshot or
//! cut to a query service the batch is durable (under `Sync`; `Async` defers the
//! fsync to [`Wal::flush`], which the services' publish paths call — durable before
//! visible either way).

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use bytes::Bytes;
use ontology::ConceptId;
use relstore::Value;
use serde::{Deserialize, Serialize};

use crate::batch::CommitBatch;
use crate::epoch::ComponentSet;
use crate::marker::Marker;
use crate::referent::ReferentId;
use crate::shard::{ShardedBatch, ShardedSystem};
use crate::study::StudySnapshot;
use crate::system::{Component, Graphitti, ObjectId, REGISTER_DIRTY};
use crate::types::DataType;
use crate::{CoreError, Result};

// --- CRC32 and framing ---

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        // lint: allow(no-panic-serving) -- const-eval loop counter, always < 256
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of a byte slice (the checksum in every frame header).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // lint: allow(no-panic-serving) -- index is masked to 8 bits, table has 256 entries
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Frame header size: `[len: u32 LE][crc32: u32 LE]`.
pub const FRAME_HEADER: usize = 8;

/// Frame a payload: length + CRC header followed by the payload bytes.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// The result of scanning a log image: every validly framed payload in order, the
/// byte length of that valid prefix, and whether scanning stopped at a torn or
/// corrupt tail (as opposed to the clean end of the log).
pub struct FrameScan {
    /// The framed payloads, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes of the log occupied by the valid frames (a truncation point).
    pub valid_len: usize,
    /// `true` if trailing bytes after `valid_len` were unreadable (torn header,
    /// short payload, or CRC mismatch).
    pub torn: bool,
}

/// Scan a log image into frames, stopping cleanly at the first torn or corrupt one.
///
/// This is the recovery-side prefix rule: everything before the first bad frame is
/// trusted (its CRC matched), everything from it on is discarded.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    loop {
        // Fully checked decode: a missing header, a short payload, or a CRC mismatch
        // all stop the scan at `offset` — never a panic on a truncated image.
        let (Some(len_bytes), Some(crc_bytes)) =
            (read_u32_le(bytes, offset), read_u32_le(bytes, offset + 4))
        else {
            return FrameScan { payloads, valid_len: offset, torn: offset < bytes.len() };
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        let expected_crc = u32::from_le_bytes(crc_bytes);
        let start = offset + FRAME_HEADER;
        let payload = match start.checked_add(len).and_then(|end| bytes.get(start..end)) {
            Some(p) if crc32(p) == expected_crc => p,
            _ => return FrameScan { payloads, valid_len: offset, torn: true },
        };
        payloads.push(payload.to_vec());
        offset = start + len;
    }
}

/// Read 4 little-endian bytes at `offset`, or `None` if the image is too short.
fn read_u32_le(bytes: &[u8], offset: usize) -> Option<[u8; 4]> {
    bytes.get(offset..offset.checked_add(4)?)?.try_into().ok()
}

// --- the loggable write surface ---

/// One durable write, as persisted in a [`WalRecord`].  The loggable surface mirrors
/// the system's write API in *global* ids, so one op stream replays identically into
/// an unsharded [`Graphitti`] or a [`ShardedSystem`] at any shard count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogOp {
    /// Register an object (the general form; see [`LogOp::register_sequence`] for
    /// the linear-object convenience that mirrors
    /// [`Graphitti::register_sequence`]).
    Register {
        /// The object's data type.
        data_type: DataType,
        /// Its name / accession.
        name: String,
        /// The metadata columns between `name` and `payload`.
        metadata: Vec<Value>,
        /// The raw payload bytes.
        payload: Vec<u8>,
        /// Its coordinate domain / system.
        domain: String,
    },
    /// Commit an annotation: content plus ordered referents (new marks or reused
    /// committed referents, by global id) plus cited ontology terms.
    Annotate {
        /// The annotation's Dublin Core content.
        content: xmlstore::DublinCore,
        /// Its referents, in builder order.
        referents: Vec<LogReferent>,
        /// The ontology terms it cites.
        terms: Vec<ConceptId>,
    },
    /// Define an ontology concept (vocabulary curation).
    DefineTerm {
        /// The concept's name.
        name: String,
    },
}

/// A serializable pending referent: a new mark on an object, or the reuse of a
/// committed referent by its global id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogReferent {
    /// Mark a new region of an object.
    New {
        /// The object being marked.
        object: ObjectId,
        /// Where on the object.
        marker: Marker,
    },
    /// Link an already-committed referent.
    Existing(ReferentId),
}

impl LogOp {
    /// The sequence-registration convenience: builds the same metadata row as
    /// [`Graphitti::register_sequence`], so the logged op replays to an identical
    /// catalog entry.
    pub fn register_sequence(
        name: impl Into<String>,
        data_type: DataType,
        length: u64,
        domain: impl Into<String>,
    ) -> LogOp {
        assert!(data_type.is_linear(), "register_sequence needs a linear type");
        let domain = domain.into();
        let metadata = match data_type {
            DataType::DnaSequence | DataType::RnaSequence => vec![
                Value::Int(length as i64),
                Value::text("unknown"),
                Value::Float(0.5),
                Value::text(domain.clone()),
            ],
            DataType::ProteinSequence => vec![
                Value::Int(length as i64),
                Value::text("unknown"),
                Value::text("unknown"),
                Value::text(domain.clone()),
            ],
            DataType::MultipleAlignment => {
                vec![Value::Int(length as i64), Value::Int(1), Value::text(domain.clone())]
            }
            // lint: allow(no-panic-serving) -- the is_linear assert above admits only the three arms
            _ => unreachable!("linear types handled above"),
        };
        LogOp::Register { data_type, name: name.into(), metadata, payload: Vec::new(), domain }
    }

    /// The components this op dirties (conservative, computed from the op alone so
    /// sharded and unsharded logs of the same batch carry identical dirty sets; a
    /// superset of what the batch actually copied).
    pub fn dirty(&self) -> ComponentSet {
        match self {
            LogOp::Register { .. } => REGISTER_DIRTY,
            LogOp::Annotate { referents, terms, .. } => {
                let mut dirty = ComponentSet::of([
                    Component::Content,
                    Component::Agraph,
                    Component::NodeMaps,
                    Component::Annotations,
                    Component::Indexes,
                ]);
                for referent in referents {
                    if let LogReferent::New { marker, .. } = referent {
                        dirty.insert(Component::Referents);
                        dirty.insert(Component::ObjectReferents);
                        match marker {
                            Marker::Interval(_) => dirty.insert(Component::Intervals),
                            Marker::Region(_) | Marker::Volume(_) => {
                                dirty.insert(Component::Spatial)
                            }
                            Marker::BlockSet(_) => {}
                        }
                    }
                }
                if !terms.is_empty() {
                    dirty.insert(Component::Ontology);
                }
                dirty
            }
            LogOp::DefineTerm { .. } => ComponentSet::of([Component::Ontology]),
        }
    }
}

/// The dirty union of a whole batch of ops.
pub fn batch_dirty(ops: &[LogOp]) -> ComponentSet {
    ops.iter().fold(ComponentSet::EMPTY, |acc, op| acc.union(op.dirty()))
}

/// One WAL record: a published batch with its logical version and dirty set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// The batch's logical version: 1 for the first batch after genesis (or after
    /// the state the checkpoint captured), strictly increasing by 1.
    pub version: u64,
    /// The batch's dirty [`ComponentSet`] as a bitmask ([`ComponentSet::bits`]).
    pub dirty: u16,
    /// The attempted ops, in submission order.
    pub ops: Vec<LogOp>,
}

impl WalRecord {
    /// Serialize to a CRC-framed byte record.
    pub fn encode(&self) -> Vec<u8> {
        // lint: allow(no-panic-serving) -- serializing an owned record of plain data is infallible
        let json = serde_json::to_string(self).expect("WAL record serializes");
        encode_frame(json.as_bytes())
    }

    /// Parse a record from one frame's payload.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| CoreError::Durability(format!("record is not UTF-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| CoreError::Durability(format!("record does not parse: {e}")))
    }
}

/// A checkpoint: the full state at a logical version, persisted through the existing
/// [`StudySnapshot`] machinery.  `shards == 0` marks an unsharded system's log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The logical version (batches since genesis) the snapshot captures.
    pub version: u64,
    /// Shard count of the logging system (`0` = unsharded).
    pub shards: usize,
    /// The replayable state.
    pub snapshot: StudySnapshot,
}

impl Checkpoint {
    /// Serialize to a CRC-framed byte blob.
    pub fn encode(&self) -> Vec<u8> {
        // lint: allow(no-panic-serving) -- serializing an owned snapshot of plain data is infallible
        let json = serde_json::to_string(self).expect("checkpoint serializes");
        encode_frame(json.as_bytes())
    }

    /// Parse a checkpoint from its framed blob, verifying the CRC.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint> {
        let scan = scan_frames(bytes);
        let [payload] = scan.payloads.as_slice() else {
            return Err(CoreError::Durability(format!(
                "checkpoint blob is corrupt: {} valid frame(s), torn={}",
                scan.payloads.len(),
                scan.torn
            )));
        };
        let text = std::str::from_utf8(payload)
            .map_err(|e| CoreError::Durability(format!("checkpoint is not UTF-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| CoreError::Durability(format!("checkpoint does not parse: {e}")))
    }
}

// --- storage backends ---

/// The byte layer under the WAL: an append-only log plus a single checkpoint slot.
///
/// The log contract is append + explicit durability barrier (`sync`); the checkpoint
/// slot is replaced atomically (write-then-rename on [`FileStorage`]).  `read_*` see
/// every written byte — *durability* (what survives a crash) is a property of the
/// fault-injection backend's [`CrashImage`], not of reads on a live store.
pub trait WalStorage: Send {
    /// Append bytes to the log (buffered; durable only after [`sync`](Self::sync)).
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Durability barrier: everything appended so far survives a crash.
    fn sync(&mut self) -> io::Result<()>;
    /// The current log contents.
    fn read_log(&self) -> io::Result<Vec<u8>>;
    /// Drop all log bytes past `len` (recovery's torn-tail repair).
    fn truncate_log_to(&mut self, len: usize) -> io::Result<()>;
    /// Replace the checkpoint slot.
    fn write_checkpoint(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// The checkpoint slot contents, if any.
    fn read_checkpoint(&self) -> io::Result<Option<Vec<u8>>>;
}

/// Plain in-memory storage (tests, and the substrate a [`CrashImage`] is recovered
/// from).
#[derive(Default)]
pub struct MemStorage {
    log: Vec<u8>,
    checkpoint: Option<Vec<u8>>,
}

impl MemStorage {
    /// Empty storage.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Storage pre-loaded with a crash's surviving bytes.
    pub fn from_image(image: CrashImage) -> MemStorage {
        MemStorage { log: image.log, checkpoint: image.checkpoint }
    }
}

impl WalStorage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.log.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn read_log(&self) -> io::Result<Vec<u8>> {
        Ok(self.log.clone())
    }

    fn truncate_log_to(&mut self, len: usize) -> io::Result<()> {
        self.log.truncate(len);
        Ok(())
    }

    fn write_checkpoint(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.checkpoint = Some(bytes.to_vec());
        Ok(())
    }

    fn read_checkpoint(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.checkpoint.clone())
    }
}

/// File-backed storage: `wal.log` (append-only) and `checkpoint.bin`
/// (write-tmp-then-rename) under one directory.
pub struct FileStorage {
    dir: std::path::PathBuf,
    log: std::fs::File,
}

impl FileStorage {
    /// Open (creating if needed) the log directory.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> io::Result<FileStorage> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(dir.join("wal.log"))?;
        Ok(FileStorage { dir, log })
    }

    fn log_path(&self) -> std::path::PathBuf {
        self.dir.join("wal.log")
    }

    fn checkpoint_path(&self) -> std::path::PathBuf {
        self.dir.join("checkpoint.bin")
    }
}

impl WalStorage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.log.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.log.sync_data()
    }

    fn read_log(&self) -> io::Result<Vec<u8>> {
        std::fs::read(self.log_path())
    }

    fn truncate_log_to(&mut self, len: usize) -> io::Result<()> {
        self.log.set_len(len as u64)?;
        self.log.sync_data()
    }

    fn write_checkpoint(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join("checkpoint.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.checkpoint_path())
    }

    fn read_checkpoint(&self) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.checkpoint_path()) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

// --- fault injection ---

/// One enumerated crash point for the fault-injection harness.  Indices are 0-based
/// counters over the storage's own operations, so a plan is deterministic for a
/// deterministic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Power cut mid-append: only `keep` bytes of record-append number `record`
    /// reach the platter (`keep` is taken modulo the record length, so any value is
    /// a valid torn point).
    TornAppend {
        /// Which record append tears (0-based).
        record: u64,
        /// How many of its bytes survive.
        keep: usize,
    },
    /// Record-append number `record` lands fully, but the byte at `offset` (modulo
    /// the record length) is flipped with `xor` (forced non-zero); power cut after.
    CorruptRecord {
        /// Which record append is corrupted (0-based).
        record: u64,
        /// Byte offset within the record's frame.
        offset: usize,
        /// XOR mask applied to that byte.
        xor: u8,
    },
    /// Sync number `sync` reports success without persisting anything, and the power
    /// cut happens before the next real barrier: everything since the previous sync
    /// is lost even though the writer was told otherwise.
    LostSync {
        /// Which sync call lies (0-based).
        sync: u64,
    },
    /// Power cut after checkpoint number `checkpoint` is durably written but before
    /// the log truncation that follows it: recovery sees the new checkpoint *and*
    /// the full pre-checkpoint log, and must skip the already-checkpointed records.
    CheckpointNoTruncate {
        /// Which checkpoint write precedes the crash (0-based).
        checkpoint: u64,
    },
}

/// The bytes that survive a [`CrashPoint`]: what recovery gets to read.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrashImage {
    /// Surviving log bytes.
    pub log: Vec<u8>,
    /// Surviving checkpoint slot.
    pub checkpoint: Option<Vec<u8>>,
}

#[derive(Default)]
struct FaultInner {
    log: Vec<u8>,
    /// Synced prefix of `log` (what a [`CrashPoint::LostSync`] power cut exposes).
    durable_log: usize,
    checkpoint: Option<Vec<u8>>,
    durable_checkpoint: Option<Vec<u8>>,
    plan: Option<CrashPoint>,
    image: Option<CrashImage>,
    appends: u64,
    syncs: u64,
    checkpoints: u64,
}

impl FaultInner {
    fn crash(&mut self, image: CrashImage) {
        if self.image.is_none() {
            self.image = Some(image);
        }
    }
}

/// Deterministic fault-injection storage: behaves like [`MemStorage`] until its
/// [`CrashPoint`] triggers, at which moment it freezes the surviving bytes as a
/// [`CrashImage`] (all later writes are void, as after a power cut).  The harness
/// keeps a [`FaultHandle`] to extract the image and recover from it.
pub struct FaultStorage {
    inner: Arc<Mutex<FaultInner>>,
}

/// The harness-side handle to a [`FaultStorage`]'s crash state.
#[derive(Clone)]
pub struct FaultHandle {
    inner: Arc<Mutex<FaultInner>>,
}

/// Lock the shared fault state, recovering from poisoning.  The harness only
/// mutates the state in short exception-safe sections, so if a test thread
/// panicked while holding the lock the state is still coherent — recovering keeps
/// the fault-injection battery observable instead of cascading the panic.
fn fault_state(inner: &Mutex<FaultInner>) -> std::sync::MutexGuard<'_, FaultInner> {
    inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FaultStorage {
    /// A storage that will crash at `plan`, plus the handle to inspect it.
    pub fn with_plan(plan: CrashPoint) -> (FaultStorage, FaultHandle) {
        let inner = Arc::new(Mutex::new(FaultInner { plan: Some(plan), ..Default::default() }));
        (FaultStorage { inner: Arc::clone(&inner) }, FaultHandle { inner })
    }

    /// A storage with no planned crash (behaves like [`MemStorage`]).
    pub fn reliable() -> (FaultStorage, FaultHandle) {
        let inner = Arc::new(Mutex::new(FaultInner::default()));
        (FaultStorage { inner: Arc::clone(&inner) }, FaultHandle { inner })
    }
}

impl FaultHandle {
    /// The frozen crash image, if the plan triggered.
    pub fn crash_image(&self) -> Option<CrashImage> {
        fault_state(&self.inner).image.clone()
    }

    /// The surviving bytes *now*: the crash image if the plan triggered, else the
    /// durable state as of the last sync (i.e. an unplanned power cut right now).
    pub fn image_now(&self) -> CrashImage {
        let inner = fault_state(&self.inner);
        inner.image.clone().unwrap_or_else(|| CrashImage {
            // lint: allow(no-panic-serving) -- durable_log only ever set from log.len(), never past it
            log: inner.log[..inner.durable_log].to_vec(),
            checkpoint: inner.durable_checkpoint.clone(),
        })
    }

    /// `(appends, syncs)` so far — the group-commit observables.
    pub fn io_counts(&self) -> (u64, u64) {
        let inner = fault_state(&self.inner);
        (inner.appends, inner.syncs)
    }
}

impl WalStorage for FaultStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut inner = fault_state(&self.inner);
        if inner.image.is_some() {
            return Ok(());
        }
        match inner.plan {
            Some(CrashPoint::TornAppend { record, keep }) if record == inner.appends => {
                let keep = keep % bytes.len().max(1);
                // lint: allow(no-panic-serving) -- keep is reduced modulo the frame length just above
                inner.log.extend_from_slice(&bytes[..keep]);
                // The torn tail may have hit the platter; everything before this
                // append had already been written.
                let image = CrashImage {
                    log: inner.log.clone(),
                    checkpoint: inner.durable_checkpoint.clone(),
                };
                inner.crash(image);
            }
            Some(CrashPoint::CorruptRecord { record, offset, xor }) if record == inner.appends => {
                let start = inner.log.len();
                inner.log.extend_from_slice(bytes);
                let at = start + offset % bytes.len().max(1);
                // lint: allow(no-panic-serving) -- at < log.len(): offset is reduced modulo the appended frame
                inner.log[at] ^= if xor == 0 { 0x01 } else { xor };
                let image = CrashImage {
                    log: inner.log.clone(),
                    checkpoint: inner.durable_checkpoint.clone(),
                };
                inner.crash(image);
            }
            _ => inner.log.extend_from_slice(bytes),
        }
        inner.appends += 1;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut inner = fault_state(&self.inner);
        if inner.image.is_some() {
            return Ok(());
        }
        if let Some(CrashPoint::LostSync { sync }) = inner.plan {
            if sync == inner.syncs {
                // The barrier lies, and the power cut lands before the next one:
                // only the previously synced prefix survives.
                let image = CrashImage {
                    // lint: allow(no-panic-serving) -- durable_log only ever set from log.len(), never past it
                    log: inner.log[..inner.durable_log].to_vec(),
                    checkpoint: inner.durable_checkpoint.clone(),
                };
                inner.crash(image);
                inner.syncs += 1;
                return Ok(());
            }
        }
        inner.durable_log = inner.log.len();
        inner.durable_checkpoint = inner.checkpoint.clone();
        inner.syncs += 1;
        Ok(())
    }

    fn read_log(&self) -> io::Result<Vec<u8>> {
        Ok(fault_state(&self.inner).log.clone())
    }

    fn truncate_log_to(&mut self, len: usize) -> io::Result<()> {
        let mut inner = fault_state(&self.inner);
        if inner.image.is_some() {
            return Ok(());
        }
        if len == 0 {
            if let Some(CrashPoint::CheckpointNoTruncate { checkpoint }) = inner.plan {
                if checkpoint + 1 == inner.checkpoints {
                    // The checkpoint is durable (the Wal synced it before asking for
                    // truncation) but the truncation itself never lands.
                    let image =
                        CrashImage { log: inner.log.clone(), checkpoint: inner.checkpoint.clone() };
                    inner.crash(image);
                    return Ok(());
                }
            }
        }
        inner.log.truncate(len);
        inner.durable_log = inner.durable_log.min(len);
        Ok(())
    }

    fn write_checkpoint(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut inner = fault_state(&self.inner);
        if inner.image.is_some() {
            return Ok(());
        }
        inner.checkpoint = Some(bytes.to_vec());
        inner.checkpoints += 1;
        Ok(())
    }

    fn read_checkpoint(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(fault_state(&self.inner).checkpoint.clone())
    }
}

// --- the WAL proper ---

/// When a batch's record must be on stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// `apply` returns only after the record is fsynced (group-committed with any
    /// concurrently submitted batches).
    #[default]
    Sync,
    /// `apply` appends without waiting for the barrier; [`Wal::flush`] (called by
    /// the query services' publish paths) makes everything appended durable before
    /// the state becomes visible.
    Async,
    /// No logging at all (the pre-durability in-memory behaviour).
    Off,
}

/// Counters describing the WAL's work so far (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended to the log.
    pub records_appended: u64,
    /// Fsync barriers issued; under `Sync` with concurrent committers,
    /// `records_appended / fsyncs` is the group-commit coalescing factor.
    pub fsyncs: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Records replayed by the recovery that opened this log (0 for a fresh log).
    pub recovery_replays: u64,
}

struct GroupState {
    /// Ticket of the most recently enqueued record.
    enqueued: u64,
    /// Highest ticket known durable.
    durable: u64,
    /// Whether a leader is currently inside write+fsync.
    flushing: bool,
    /// Encoded frames waiting for the next leader.
    queue: VecDeque<Vec<u8>>,
}

struct WalInner {
    storage: Mutex<Box<dyn WalStorage>>,
    group: Mutex<GroupState>,
    group_done: Condvar,
    mode: DurabilityMode,
    records: AtomicU64,
    fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    recovery_replays: AtomicU64,
}

impl WalInner {
    /// Lock the storage backend, recovering from poisoning.  Every storage section
    /// either completes or leaves the backend as a power cut would — the exact
    /// states recovery is built to handle — so a committer that panicked while
    /// holding the lock must not take the whole log handle down with it.
    fn storage_guard(&self) -> std::sync::MutexGuard<'_, Box<dyn WalStorage>> {
        self.storage.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Lock the group-commit state, recovering from poisoning: queue pushes and
    /// counter bumps are exception-safe, and the leader clears `flushing` under the
    /// re-acquired lock, so the state stays coherent across a waiter's panic.
    fn group_guard(&self) -> std::sync::MutexGuard<'_, GroupState> {
        self.group.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The write-ahead log handle: sharable (`Clone` bumps an `Arc`), thread-safe, and
/// group-committing under [`DurabilityMode::Sync`].
#[derive(Clone)]
pub struct Wal {
    inner: Arc<WalInner>,
}

impl Wal {
    /// Wrap a storage backend.
    pub fn new(storage: Box<dyn WalStorage>, mode: DurabilityMode) -> Wal {
        Wal {
            inner: Arc::new(WalInner {
                storage: Mutex::new(storage),
                group: Mutex::new(GroupState {
                    enqueued: 0,
                    durable: 0,
                    flushing: false,
                    queue: VecDeque::new(),
                }),
                group_done: Condvar::new(),
                mode,
                records: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
                checkpoints: AtomicU64::new(0),
                recovery_replays: AtomicU64::new(0),
            }),
        }
    }

    /// The configured durability mode.
    pub fn mode(&self) -> DurabilityMode {
        self.inner.mode
    }

    /// Append one record per the durability mode.  Under `Sync` this blocks until
    /// the record is on stable storage; the leader/follower protocol batches every
    /// concurrently waiting record into one write+fsync.
    pub fn append_record(&self, record: &WalRecord) -> Result<()> {
        let frame = record.encode();
        match self.inner.mode {
            DurabilityMode::Off => Ok(()),
            DurabilityMode::Async => {
                let mut storage = self.inner.storage_guard();
                storage.append(&frame).map_err(wal_io)?;
                self.inner.records.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            DurabilityMode::Sync => self.group_commit(frame),
        }
    }

    fn group_commit(&self, frame: Vec<u8>) -> Result<()> {
        let inner = &*self.inner;
        let mut group = inner.group_guard();
        group.enqueued += 1;
        let ticket = group.enqueued;
        group.queue.push_back(frame);
        self.inner.records.fetch_add(1, Ordering::Relaxed);
        loop {
            if group.durable >= ticket {
                return Ok(());
            }
            if !group.flushing {
                group.flushing = true;
                let batch: Vec<Vec<u8>> = group.queue.drain(..).collect();
                let high = group.enqueued;
                drop(group);
                let flush = (|| -> io::Result<()> {
                    let mut storage = inner.storage_guard();
                    for frame in &batch {
                        storage.append(frame)?;
                    }
                    storage.sync()
                })();
                inner.fsyncs.fetch_add(1, Ordering::Relaxed);
                group = inner.group_guard();
                group.flushing = false;
                if flush.is_ok() {
                    group.durable = group.durable.max(high);
                }
                inner.group_done.notify_all();
                flush.map_err(wal_io)?;
            } else {
                group =
                    inner.group_done.wait(group).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    /// Durability barrier: everything appended so far (any mode) is made durable.
    /// The services' publish paths call this so a published state is never more
    /// recent than the log.
    pub fn flush(&self) -> Result<()> {
        if self.inner.mode == DurabilityMode::Off {
            return Ok(());
        }
        let mut storage = self.inner.storage_guard();
        storage.sync().map_err(wal_io)?;
        self.inner.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Persist a checkpoint and truncate the log: write the framed blob, fsync it,
    /// and only then drop the log records it covers.  A crash between the two steps
    /// leaves the full log alongside the new checkpoint — recovery skips records at
    /// or below the checkpoint version, so the order is always safe.
    pub fn write_checkpoint(&self, checkpoint: &Checkpoint) -> Result<()> {
        if self.inner.mode == DurabilityMode::Off {
            return Ok(());
        }
        let blob = checkpoint.encode();
        let mut storage = self.inner.storage_guard();
        storage.write_checkpoint(&blob).map_err(wal_io)?;
        storage.sync().map_err(wal_io)?;
        storage.truncate_log_to(0).map_err(wal_io)?;
        self.inner.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.inner.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// A snapshot of the WAL counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records_appended: self.inner.records.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
            checkpoints: self.inner.checkpoints.load(Ordering::Relaxed),
            recovery_replays: self.inner.recovery_replays.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_recovery(&self, replayed: u64) {
        self.inner.recovery_replays.store(replayed, Ordering::Relaxed);
    }
}

fn wal_io(e: io::Error) -> CoreError {
    CoreError::Durability(format!("log storage error: {e}"))
}

// --- applying logged ops ---

/// Apply one op to an unsharded batch; a `false` return is a failed (but logged)
/// commit whose partial effects are deliberately kept, exactly as a live caller's
/// failed commit would.
pub(crate) fn apply_op_unsharded(batch: &mut CommitBatch<'_>, op: &LogOp) -> bool {
    match op {
        LogOp::Register { data_type, name, metadata, payload, domain } => batch
            .register_object(
                *data_type,
                name.clone(),
                metadata.clone(),
                Bytes::from(payload.clone()),
                domain.clone(),
            )
            .is_ok(),
        LogOp::Annotate { content, referents, terms } => {
            let mut builder = batch.annotate().with_content(content.clone());
            for referent in referents {
                builder = match referent {
                    LogReferent::New { object, marker } => builder.mark(*object, marker.clone()),
                    LogReferent::Existing(id) => builder.mark_existing(*id),
                };
            }
            for term in terms {
                builder = builder.cite_term(*term);
            }
            builder.commit().is_ok()
        }
        LogOp::DefineTerm { name } => {
            batch.ontology_mut().add_concept(name.clone());
            true
        }
    }
}

/// Apply one op to a sharded batch (same contract as [`apply_op_unsharded`]).
pub(crate) fn apply_op_sharded(batch: &mut ShardedBatch<'_>, op: &LogOp) -> bool {
    match op {
        LogOp::Register { data_type, name, metadata, payload, domain } => batch
            .register_object(
                *data_type,
                name.clone(),
                metadata.clone(),
                Bytes::from(payload.clone()),
                domain.clone(),
            )
            .is_ok(),
        LogOp::Annotate { content, referents, terms } => {
            let mut builder = batch.annotate().with_content(content.clone());
            for referent in referents {
                builder = match referent {
                    LogReferent::New { object, marker } => builder.mark(*object, marker.clone()),
                    LogReferent::Existing(id) => builder.mark_existing(*id),
                };
            }
            for term in terms {
                builder = builder.cite_term(*term);
            }
            builder.commit().is_ok()
        }
        LogOp::DefineTerm { name } => {
            let name = name.clone();
            batch.ontology_edit(move |o| {
                o.add_concept(name.clone());
            });
            true
        }
    }
}

// --- durable wrappers ---

/// A [`Graphitti`] whose batches are written ahead to a [`Wal`]: `apply` commits one
/// batch of [`LogOp`]s and logs it before returning.
pub struct DurableSystem {
    system: Graphitti,
    wal: Wal,
    version: u64,
    checkpoint_every: u64,
    since_checkpoint: u64,
}

impl DurableSystem {
    /// A fresh system over (assumed-empty) storage.
    pub fn create(storage: Box<dyn WalStorage>, mode: DurabilityMode) -> DurableSystem {
        DurableSystem {
            system: Graphitti::new(),
            wal: Wal::new(storage, mode),
            version: 0,
            checkpoint_every: 0,
            since_checkpoint: 0,
        }
    }

    /// Recover from existing storage (checkpoint-then-tail; see [`crate::recovery`])
    /// and continue logging to it.  The torn tail, if any, is truncated away so new
    /// records append after the last valid one.
    pub fn open(
        storage: Box<dyn WalStorage>,
        mode: DurabilityMode,
    ) -> Result<(DurableSystem, crate::recovery::RecoveryReport)> {
        let (system, report) = crate::recovery::recover_unsharded(storage.as_ref())?;
        let mut storage = storage;
        storage.truncate_log_to(report.valid_log_len).map_err(wal_io)?;
        let wal = Wal::new(storage, mode);
        wal.note_recovery(report.replayed_records as u64);
        let version = report.recovered_version;
        Ok((
            DurableSystem { system, wal, version, checkpoint_every: 0, since_checkpoint: 0 },
            report,
        ))
    }

    /// Builder: checkpoint automatically every `n` batches (`0` = manual only).
    pub fn with_checkpoint_every(mut self, n: u64) -> DurableSystem {
        self.checkpoint_every = n;
        self
    }

    /// The wrapped system.
    pub fn system(&self) -> &Graphitti {
        &self.system
    }

    /// The durable logical version: batches applied since genesis.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A handle to the log (for attaching to a query service).
    pub fn wal(&self) -> Wal {
        self.wal.clone()
    }

    /// Commit one batch of ops and log it (write-ahead of any publish the caller
    /// does with the returned state).  Failed ops keep their partial effects and are
    /// still logged — replay reproduces them deterministically.
    pub fn apply(&mut self, ops: &[LogOp]) -> Result<u64> {
        {
            let mut batch = self.system.batch();
            for op in ops {
                apply_op_unsharded(&mut batch, op);
            }
            batch.commit();
        }
        self.version += 1;
        let record =
            WalRecord { version: self.version, dirty: batch_dirty(ops).bits(), ops: ops.to_vec() };
        self.wal.append_record(&record)?;
        self.since_checkpoint += 1;
        if self.checkpoint_every > 0 && self.since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(self.version)
    }

    /// Write a checkpoint of the current state and truncate the log.
    pub fn checkpoint(&mut self) -> Result<()> {
        let checkpoint =
            Checkpoint { version: self.version, shards: 0, snapshot: self.system.study_snapshot() };
        self.wal.write_checkpoint(&checkpoint)?;
        self.since_checkpoint = 0;
        Ok(())
    }
}

/// A [`ShardedSystem`] whose logical batches are written ahead to a [`Wal`] — one
/// record per [`ShardedBatch`], global ids, so the same log recovers at the same
/// shard count into the identical sharded state (or, unsharded, into the equivalent
/// oracle).
pub struct DurableShardedSystem {
    system: ShardedSystem,
    wal: Wal,
    version: u64,
    checkpoint_every: u64,
    since_checkpoint: u64,
}

impl DurableShardedSystem {
    /// A fresh sharded system over (assumed-empty) storage.
    pub fn create(
        storage: Box<dyn WalStorage>,
        mode: DurabilityMode,
        shards: usize,
    ) -> DurableShardedSystem {
        DurableShardedSystem {
            system: ShardedSystem::new(shards),
            wal: Wal::new(storage, mode),
            version: 0,
            checkpoint_every: 0,
            since_checkpoint: 0,
        }
    }

    /// Recover from existing storage and continue logging to it.  The shard count
    /// comes from the checkpoint when there is one; `default_shards` is used for a
    /// checkpoint-less log.
    pub fn open(
        storage: Box<dyn WalStorage>,
        mode: DurabilityMode,
        default_shards: usize,
    ) -> Result<(DurableShardedSystem, crate::recovery::RecoveryReport)> {
        let (system, report) = crate::recovery::recover_sharded(storage.as_ref(), default_shards)?;
        let mut storage = storage;
        storage.truncate_log_to(report.valid_log_len).map_err(wal_io)?;
        let wal = Wal::new(storage, mode);
        wal.note_recovery(report.replayed_records as u64);
        let version = report.recovered_version;
        Ok((
            DurableShardedSystem { system, wal, version, checkpoint_every: 0, since_checkpoint: 0 },
            report,
        ))
    }

    /// Builder: checkpoint automatically every `n` batches (`0` = manual only).
    pub fn with_checkpoint_every(mut self, n: u64) -> DurableShardedSystem {
        self.checkpoint_every = n;
        self
    }

    /// The wrapped sharded system.
    pub fn system(&self) -> &ShardedSystem {
        &self.system
    }

    /// The durable logical version: batches applied since genesis.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A handle to the log (for attaching to a sharded query service).
    pub fn wal(&self) -> Wal {
        self.wal.clone()
    }

    /// Commit one logical batch of ops across the shards and log it.
    pub fn apply(&mut self, ops: &[LogOp]) -> Result<u64> {
        {
            let mut batch = self.system.batch();
            for op in ops {
                apply_op_sharded(&mut batch, op);
            }
            batch.commit();
        }
        self.version += 1;
        let record =
            WalRecord { version: self.version, dirty: batch_dirty(ops).bits(), ops: ops.to_vec() };
        self.wal.append_record(&record)?;
        self.since_checkpoint += 1;
        if self.checkpoint_every > 0 && self.since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(self.version)
    }

    /// Write a checkpoint of the current state and truncate the log.
    pub fn checkpoint(&mut self) -> Result<()> {
        let checkpoint = Checkpoint {
            version: self.version,
            shards: self.system.shard_count(),
            snapshot: self.system.study_snapshot(),
        };
        self.wal.write_checkpoint(&checkpoint)?;
        self.since_checkpoint = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops(step: u64) -> Vec<LogOp> {
        vec![
            LogOp::register_sequence(format!("seq-{step}"), DataType::DnaSequence, 2_000, "chr1"),
            LogOp::Annotate {
                content: xmlstore::DublinCore::new().field("description", format!("note {step}")),
                referents: vec![LogReferent::New {
                    object: ObjectId(step),
                    marker: Marker::interval(step * 10, step * 10 + 5),
                }],
                terms: vec![],
            },
            LogOp::DefineTerm { name: format!("term-{step}") },
        ]
    }

    #[test]
    fn crc_detects_any_flip_in_a_sample() {
        let payload = b"graphitti wal record";
        let crc = crc32(payload);
        for i in 0..payload.len() {
            let mut copy = payload.to_vec();
            copy[i] ^= 0x40;
            assert_ne!(crc32(&copy), crc, "flip at byte {i} must change the CRC");
        }
    }

    #[test]
    fn frame_scan_round_trips_and_stops_at_torn_tail() {
        let mut log = Vec::new();
        for step in 0..4u64 {
            let record = WalRecord { version: step + 1, dirty: 0, ops: sample_ops(step) };
            log.extend_from_slice(&record.encode());
        }
        let clean = scan_frames(&log);
        assert_eq!(clean.payloads.len(), 4);
        assert!(!clean.torn);
        assert_eq!(clean.valid_len, log.len());

        // Tear the last frame: the first three survive, the scan reports the tear.
        let torn_at = clean.valid_len - 3;
        let torn = scan_frames(&log[..torn_at]);
        assert_eq!(torn.payloads.len(), 3);
        assert!(torn.torn);
        let record = WalRecord::decode(&torn.payloads[2]).expect("valid frame decodes");
        assert_eq!(record.version, 3);
    }

    #[test]
    fn record_encode_decode_round_trip() {
        let record =
            WalRecord { version: 7, dirty: batch_dirty(&sample_ops(3)).bits(), ops: sample_ops(3) };
        let frame = record.encode();
        let scan = scan_frames(&frame);
        assert_eq!(scan.payloads.len(), 1);
        assert_eq!(WalRecord::decode(&scan.payloads[0]).expect("round trip"), record);
    }

    #[test]
    fn op_dirty_covers_the_actual_batch_footprint() {
        // The op-derived dirty set must be a superset of what the batch really
        // copies, for every op shape — otherwise a recovery-side cache consumer
        // could under-invalidate.
        let mut system = Graphitti::new();
        let ops = sample_ops(0);
        for op in &ops {
            let mut batch = system.batch();
            apply_op_unsharded(&mut batch, op);
            let actual = batch.dirty_components();
            let declared = op.dirty();
            assert_eq!(actual, declared & actual, "op {op:?} under-declares {actual:?}");
        }
    }

    #[test]
    fn group_commit_coalesces_concurrent_batches() {
        let (storage, handle) = FaultStorage::reliable();
        let wal = Wal::new(Box::new(storage), DurabilityMode::Sync);
        let committers = 8;
        let per_thread = 16;
        std::thread::scope(|scope| {
            for t in 0..committers {
                let wal = wal.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let record = WalRecord {
                            version: (t * per_thread + i) as u64 + 1,
                            dirty: 0,
                            ops: vec![LogOp::DefineTerm { name: format!("t{t}-{i}") }],
                        };
                        wal.append_record(&record).expect("append");
                    }
                });
            }
        });
        let stats = wal.stats();
        let (appends, syncs) = handle.io_counts();
        assert_eq!(stats.records_appended, (committers * per_thread) as u64);
        assert_eq!(appends, stats.records_appended);
        assert_eq!(syncs, stats.fsyncs);
        assert!(
            stats.fsyncs <= stats.records_appended,
            "group commit must never fsync more than once per record: {stats:?}"
        );
        // Every appended frame is intact and none were interleaved mid-frame.
        let scan = scan_frames(&handle.image_now().log);
        assert_eq!(scan.payloads.len(), committers * per_thread);
        assert!(!scan.torn);
    }

    #[test]
    fn file_storage_round_trips_log_and_checkpoint() {
        let dir = std::env::temp_dir().join(format!("graphitti-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut storage = FileStorage::open(&dir).expect("open");
            storage.append(b"hello ").expect("append");
            storage.append(b"wal").expect("append");
            storage.sync().expect("sync");
            storage.write_checkpoint(b"cp-bytes").expect("checkpoint");
            assert_eq!(storage.read_log().expect("read"), b"hello wal");
            storage.truncate_log_to(5).expect("truncate");
        }
        let storage = FileStorage::open(&dir).expect("reopen");
        assert_eq!(storage.read_log().expect("read"), b"hello");
        assert_eq!(storage.read_checkpoint().expect("read"), Some(b"cp-bytes".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
