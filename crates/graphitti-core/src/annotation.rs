//! The annotation content model and the fluent annotation builder.
//!
//! An annotation is a "linker object": it carries the content (a Dublin Core XML
//! document — the comment itself) and links it to referents and ontology terms.  The
//! builder mirrors the annotation-tab workflow: the user fills in content fields, drags
//! referents in by marking substructures, and inserts ontology references, then commits.

use ontology::ConceptId;
use serde::{Deserialize, Serialize};
use xmlstore::{DocId, DublinCore};

use crate::marker::Marker;
use crate::referent::ReferentId;
use crate::system::{Graphitti, ObjectId};
use crate::Result;

/// Identifier of a committed annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AnnotationId(pub u64);

/// A committed annotation: its content document plus the referents and terms it links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// Identifier.
    pub id: AnnotationId,
    /// The Dublin Core record backing the content document.
    pub content: DublinCore,
    /// The id of the content document in the XML store.
    pub doc_id: DocId,
    /// Referents (marked substructures) this annotation links.
    pub referents: Vec<ReferentId>,
    /// Ontology terms this annotation cites.
    pub terms: Vec<ConceptId>,
}

impl Annotation {
    /// The annotation title (`dc:title`), if any.
    pub fn title(&self) -> Option<&str> {
        self.content.get("title")
    }

    /// The annotation comment body (`dc:description`), if any.
    pub fn comment(&self) -> Option<&str> {
        self.content.get("description")
    }

    /// The annotation creator (`dc:creator`), if any.
    pub fn creator(&self) -> Option<&str> {
        self.content.get("creator")
    }

    /// The a-graph node key for this annotation's content.
    pub fn node_key(&self) -> String {
        format!("ann:{}", self.id.0)
    }

    /// Whether this annotation links the given referent.
    pub fn links_referent(&self, referent: ReferentId) -> bool {
        self.referents.contains(&referent)
    }
}

/// A pending referent in a builder: either a fresh marker applied to an object (the
/// index domain is resolved from the object at commit time) or a reference to an
/// already-committed referent, so two annotations can link the *same* referent and
/// become indirectly related (as the paper describes).
#[derive(Debug, Clone)]
pub(crate) enum PendingReferent {
    /// A new marked substructure.
    New {
        /// The object whose substructure is marked.
        object: ObjectId,
        /// The marker.
        marker: Marker,
    },
    /// An existing referent to attach to.
    Existing(ReferentId),
}

/// The data a builder accumulates before committing.
#[derive(Debug, Clone, Default)]
pub(crate) struct AnnotationSpec {
    pub content: DublinCore,
    pub referents: Vec<PendingReferent>,
    pub terms: Vec<ConceptId>,
}

/// A fluent builder for creating an annotation, borrowing the system mutably until it is
/// committed.
pub struct AnnotationBuilder<'a> {
    system: &'a mut Graphitti,
    spec: AnnotationSpec,
}

impl<'a> AnnotationBuilder<'a> {
    pub(crate) fn new(system: &'a mut Graphitti) -> Self {
        AnnotationBuilder { system, spec: AnnotationSpec::default() }
    }

    /// Set the annotation title (`dc:title`).
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).title(title);
        self
    }

    /// Set the annotation comment body (`dc:description`).
    pub fn comment(mut self, comment: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).description(comment);
        self
    }

    /// Set the annotation creator (`dc:creator`).
    pub fn creator(mut self, creator: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).creator(creator);
        self
    }

    /// Add a `dc:subject` keyword.
    pub fn subject(mut self, subject: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).subject(subject);
        self
    }

    /// Add an arbitrary Dublin Core field.
    pub fn field(mut self, element: impl Into<String>, value: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).field(element, value);
        self
    }

    /// Add a user-defined tag to the content.
    pub fn user_tag(mut self, tag: impl Into<String>, value: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).user_tag(tag, value);
        self
    }

    /// Mark a substructure of an object as a referent of this annotation (the demo's
    /// "drag a referent into the annotation structure" step).
    pub fn mark(mut self, object: ObjectId, marker: Marker) -> Self {
        self.spec.referents.push(PendingReferent::New { object, marker });
        self
    }

    /// Attach to an existing referent, so this annotation shares it with whoever created
    /// it — the mechanism by which two annotations become *indirectly related*.
    pub fn mark_existing(mut self, referent: ReferentId) -> Self {
        self.spec.referents.push(PendingReferent::Existing(referent));
        self
    }

    /// Replace the content document wholesale with a prepared Dublin Core record (used
    /// when rebuilding from a snapshot).
    pub fn with_content(mut self, content: DublinCore) -> Self {
        self.spec.content = content;
        self
    }

    /// Add an ontology-term reference (the demo's "insert ontology reference" step).
    pub fn cite_term(mut self, concept: ConceptId) -> Self {
        self.spec.terms.push(concept);
        self
    }

    /// Commit the annotation to the system, returning its id.  This wires the content
    /// node to each referent (and index entry) and each ontology term in the a-graph.
    pub fn commit(self) -> Result<AnnotationId> {
        let AnnotationBuilder { system, spec } = self;
        system.commit_annotation(spec)
    }

    /// Access the content being built (for previewing before commit, as the demo allows
    /// "view it as an XML-structured object … before it is committed").
    pub fn preview_content(&self) -> &DublinCore {
        &self.spec.content
    }

    /// The number of referents marked so far.
    pub fn referent_count(&self) -> usize {
        self.spec.referents.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::DublinCore;

    #[test]
    fn annotation_accessors() {
        let ann = Annotation {
            id: AnnotationId(3),
            content: DublinCore::new().title("t").description("c").creator("u"),
            doc_id: DocId(0),
            referents: vec![ReferentId(1), ReferentId(2)],
            terms: vec![],
        };
        assert_eq!(ann.title(), Some("t"));
        assert_eq!(ann.comment(), Some("c"));
        assert_eq!(ann.creator(), Some("u"));
        assert_eq!(ann.node_key(), "ann:3");
        assert!(ann.links_referent(ReferentId(1)));
        assert!(!ann.links_referent(ReferentId(9)));
    }
}
