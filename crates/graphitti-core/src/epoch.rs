//! Per-component versioning: [`ComponentSet`] dirty sets and the [`EpochVector`].
//!
//! The global epoch says *that* the system changed; it cannot say *what* changed.  For
//! a downstream consumer that only reads a few components — the query service's result
//! cache reads exactly the components a query's plan touches — that distinction is the
//! difference between invalidating one entry and invalidating everything.
//!
//! Two small value types carry it:
//!
//! * [`ComponentSet`] — a bitset over [`Component`].  Mutations declare the components
//!   they write (their **dirty set**, matching the `Arc::make_mut` copy footprint that
//!   `tests/cow_sharing.rs` pins), and query plans declare the components they read
//!   (their **footprint**).  An entry computed before a publish stays valid exactly
//!   when its footprint is disjoint from everything dirtied since.
//! * [`EpochVector`] — one epoch per component: the value of the global epoch counter
//!   at the last write that dirtied that component.  Within one system lineage, equal
//!   component epochs mean the component's query-visible state is identical — so two
//!   snapshots agreeing on a footprint's epochs return identical answers for any query
//!   with that footprint, even when the snapshots' global epochs differ.

use crate::system::Component;

/// A set of [`Component`]s, stored as a bitmask (the enum has 12 variants).
///
/// Used for both **dirty sets** (what a mutation writes) and **read footprints** (what
/// a query plan reads); cache invalidation is an intersection test between the two.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ComponentSet(u16);

impl ComponentSet {
    /// The empty set.
    pub const EMPTY: ComponentSet = ComponentSet(0);

    /// Every component.
    pub fn all() -> ComponentSet {
        Component::ALL.into_iter().collect()
    }

    /// The set containing exactly the given components.
    pub fn of(components: impl IntoIterator<Item = Component>) -> ComponentSet {
        components.into_iter().collect()
    }

    /// Const constructor, for `const` dirty-set declarations.
    pub const fn of_const(components: &[Component]) -> ComponentSet {
        let mut bits = 0u16;
        let mut i = 0;
        while i < components.len() {
            bits |= 1 << components[i] as u16;
            i += 1;
        }
        ComponentSet(bits)
    }

    fn bit(component: Component) -> u16 {
        1 << component as u16
    }

    /// Add one component.
    pub fn insert(&mut self, component: Component) {
        self.0 |= Self::bit(component);
    }

    /// Whether the set contains a component.
    pub fn contains(self, component: Component) -> bool {
        self.0 & Self::bit(component) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of components in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set union.
    pub fn union(self, other: ComponentSet) -> ComponentSet {
        ComponentSet(self.0 | other.0)
    }

    /// Whether the two sets share any component — the cache-invalidation test: an
    /// entry whose read footprint `intersects` a publish's dirty set must go.
    pub fn intersects(self, other: ComponentSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether every component of `other` is in `self` — the dirty-set-soundness
    /// test: a declared dirty set must `contains_all` of the copy-on-write footprint.
    pub fn contains_all(self, other: ComponentSet) -> bool {
        other.0 & !self.0 == 0
    }

    /// The components in the set, in [`Component::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = Component> {
        Component::ALL.into_iter().filter(move |&c| self.contains(c))
    }

    /// The raw bitmask — the stable wire form a WAL record's dirty set is persisted
    /// as (bit `i` is `Component::ALL[i]`).
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Rebuild a set from a persisted bitmask; bits beyond the 12 components are
    /// dropped, so any `u16` round-trips to a valid set.
    pub fn from_bits(bits: u16) -> ComponentSet {
        ComponentSet(bits) & ComponentSet::all()
    }
}

impl std::ops::BitAnd for ComponentSet {
    type Output = ComponentSet;

    fn bitand(self, rhs: ComponentSet) -> ComponentSet {
        ComponentSet(self.0 & rhs.0)
    }
}

impl FromIterator<Component> for ComponentSet {
    fn from_iter<I: IntoIterator<Item = Component>>(iter: I) -> ComponentSet {
        let mut set = ComponentSet::EMPTY;
        for c in iter {
            set.insert(c);
        }
        set
    }
}

impl std::ops::BitOr for ComponentSet {
    type Output = ComponentSet;

    fn bitor(self, rhs: ComponentSet) -> ComponentSet {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for ComponentSet {
    fn bitor_assign(&mut self, rhs: ComponentSet) {
        self.0 |= rhs.0;
    }
}

impl std::fmt::Debug for ComponentSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// One epoch per [`Component`]: the global epoch of the last write that dirtied it.
///
/// Carried by the live system and by every [`Snapshot`](crate::Snapshot).  Within one
/// system lineage (same [`Graphitti`](crate::Graphitti) instance, identified by its
/// system id) the vector is monotone per component, and equal component epochs denote
/// identical query-visible component state — which is exactly the validity condition a
/// footprint-keyed cache entry needs.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochVector([u64; Component::ALL.len()]);

impl EpochVector {
    /// The epoch of one component.
    pub fn get(self, component: Component) -> u64 {
        self.0[component as usize]
    }

    /// Record that `dirty`'s components were written at global epoch `epoch`.
    pub fn mark(&mut self, dirty: ComponentSet, epoch: u64) {
        for c in dirty.iter() {
            self.0[c as usize] = epoch;
        }
    }

    /// The components whose epochs differ between the two vectors — for vectors from
    /// the same system lineage, the set of components dirtied between the two states.
    pub fn changed(self, other: EpochVector) -> ComponentSet {
        Component::ALL.into_iter().filter(|&c| self.get(c) != other.get(c)).collect()
    }

    /// Whether the two vectors agree on every component of `set` — the per-entry
    /// cache-validity test: a result whose footprint's epochs are unchanged is still
    /// the current answer.
    pub fn agrees_on(self, other: EpochVector, set: ComponentSet) -> bool {
        set.iter().all(|c| self.get(c) == other.get(c))
    }
}

impl std::fmt::Debug for EpochVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(Component::ALL.into_iter().map(|c| (c, self.get(c)))).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations() {
        let mut a = ComponentSet::EMPTY;
        assert!(a.is_empty());
        a.insert(Component::Content);
        a.insert(Component::Annotations);
        assert_eq!(a.len(), 2);
        assert!(a.contains(Component::Content));
        assert!(!a.contains(Component::Catalog));

        let b = ComponentSet::of([Component::Catalog, Component::Objects]);
        assert!(!a.intersects(b));
        assert!(a.intersects(ComponentSet::of([Component::Annotations])));

        let u = a | b;
        assert_eq!(u.len(), 4);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            vec![
                Component::Catalog,
                Component::Content,
                Component::Objects,
                Component::Annotations
            ]
        );
        assert_eq!(ComponentSet::all().len(), Component::ALL.len());
    }

    #[test]
    fn vector_marks_and_diffs() {
        let mut a = EpochVector::default();
        let mut b = EpochVector::default();
        assert!(a.changed(b).is_empty());

        a.mark(ComponentSet::of([Component::Content, Component::Annotations]), 3);
        assert_eq!(a.get(Component::Content), 3);
        assert_eq!(a.get(Component::Catalog), 0);
        assert_eq!(a.changed(b), ComponentSet::of([Component::Content, Component::Annotations]));

        b.mark(ComponentSet::of([Component::Content, Component::Annotations]), 3);
        assert!(a.changed(b).is_empty());
        assert!(a.agrees_on(b, ComponentSet::all()));

        b.mark(ComponentSet::of([Component::Catalog]), 4);
        assert!(a.agrees_on(b, ComponentSet::of([Component::Content])));
        assert!(!a.agrees_on(b, ComponentSet::of([Component::Catalog, Component::Content])));
    }
}
