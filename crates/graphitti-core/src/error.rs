//! Error type for the Graphitti core system.

use std::fmt;

use crate::system::ObjectId;
use crate::types::{DataType, Dimensionality};

/// Errors raised by the Graphitti facade.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Referenced an object that does not exist.
    UnknownObject(ObjectId),
    /// A marker's dimensionality did not match the object's data type.
    MarkerKindMismatch {
        /// The object's data type.
        data_type: DataType,
        /// The object's dimensionality.
        expected: Dimensionality,
        /// The marker's dimensionality.
        got: Dimensionality,
    },
    /// An annotation was committed with no referents and no ontology terms, which would
    /// leave a dangling content node with nothing to link.
    EmptyAnnotation,
    /// A marker fell outside the object's extent.
    MarkerOutOfBounds {
        /// The object it was applied to.
        object: ObjectId,
        /// A human-readable description of the violation.
        detail: String,
    },
    /// An underlying relational-store error.
    Relational(String),
    /// An underlying a-graph error.
    Graph(String),
    /// A sharded annotation reused committed referents that live on one shard while
    /// its new marks (or other reused referents) pin it to a different shard.  An
    /// annotation is a shard-local row, so all of its referents must share one home.
    CrossShardReuse {
        /// The shard the annotation was routed to.
        home: usize,
        /// The different shard a reused referent lives on.
        reused: usize,
    },
    /// A durability-layer failure: the write-ahead log or checkpoint storage errored,
    /// or recovery found the persisted state unusable (e.g. a corrupt checkpoint).
    Durability(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownObject(id) => write!(f, "unknown object {id:?}"),
            CoreError::MarkerKindMismatch { data_type, expected, got } => {
                write!(f, "marker mismatch for {data_type:?}: expected {expected:?}, got {got:?}")
            }
            CoreError::EmptyAnnotation => {
                write!(f, "annotation has no referents and no ontology terms")
            }
            CoreError::MarkerOutOfBounds { object, detail } => {
                write!(f, "marker out of bounds on {object:?}: {detail}")
            }
            CoreError::Relational(m) => write!(f, "relational store error: {m}"),
            CoreError::Graph(m) => write!(f, "a-graph error: {m}"),
            CoreError::CrossShardReuse { home, reused } => write!(
                f,
                "cross-shard annotation: a reused referent lives on shard {reused} but the \
                 annotation is routed to shard {home} (co-locate reused referents or annotate \
                 them separately)"
            ),
            CoreError::Durability(m) => write!(f, "durability error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<relstore::RelError> for CoreError {
    fn from(e: relstore::RelError) -> Self {
        CoreError::Relational(e.to_string())
    }
}

impl From<agraph::GraphError> for CoreError {
    fn from(e: agraph::GraphError) -> Self {
        CoreError::Graph(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(CoreError::EmptyAnnotation.to_string().contains("no referents"));
        let re: CoreError = relstore::RelError::NoSuchTable("t".into()).into();
        assert!(re.to_string().contains("relational"));
        let ge: CoreError = agraph::GraphError::TooFewTerminals(1).into();
        assert!(ge.to_string().contains("a-graph"));
        let cs = CoreError::CrossShardReuse { home: 2, reused: 5 }.to_string();
        assert!(cs.contains("shard 5") && cs.contains("shard 2"), "{cs}");
        assert!(CoreError::Durability("bad checkpoint".into()).to_string().contains("durability"));
    }
}
