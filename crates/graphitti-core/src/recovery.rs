//! Crash recovery: replay checkpoint-then-tail to a consistent published state.
//!
//! Recovery reads a [`WalStorage`] left behind by a crash and rebuilds the system to
//! the **longest durable prefix of published batches**:
//!
//! 1. **Checkpoint.**  If the checkpoint slot holds a CRC-valid [`Checkpoint`], its
//!    [`StudySnapshot`] is replayed through the existing machinery
//!    ([`Graphitti::from_study_snapshot`] / [`ShardedSystem::from_study_snapshot`])
//!    and sets the base logical version.  An empty slot means genesis (version 0); a
//!    *corrupt* slot is an error — the log alone cannot reproduce state the
//!    checkpoint truncated away, so guessing would violate the prefix guarantee.
//! 2. **Tail.**  The log is scanned frame by frame ([`scan_frames`]): a torn header,
//!    short payload, or CRC mismatch ends the scan — everything before it is
//!    trusted, everything from it on is discarded.  Each surviving [`WalRecord`] is
//!    replayed as **one batch** if and only if its version is the next expected one;
//!    records at or below the checkpoint version are skipped (the
//!    crash-between-checkpoint-and-truncation case), and a version gap or regression
//!    ends replay (a record after lost data must not be applied out of order).
//!
//! The result is exactly the state at some version `v` ≤ the last published version:
//! never torn (CRC), never reordered (the version chain), and — because replay runs
//! through the normal batch/router paths — satisfying every in-memory invariant,
//! including the `ShardCut` consistency contract for sharded systems.  The
//! crash-point battery in `graphitti-query/tests/crash_recovery.rs` asserts this
//! byte-for-byte against a [`ReferenceExecutor`] oracle replayed to `v`.

use crate::study::StudySnapshot;
use crate::system::Graphitti;
use crate::wal::{
    apply_op_sharded, apply_op_unsharded, scan_frames, Checkpoint, WalRecord, WalStorage,
};
use crate::{CoreError, Result, ShardedSystem};

/// What a recovery did: where it started, how much tail it replayed, and where it
/// landed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Version of the checkpoint the base state came from (0 = genesis, no
    /// checkpoint).
    pub checkpoint_version: u64,
    /// Tail records actually replayed (skipped already-checkpointed records do not
    /// count).
    pub replayed_records: usize,
    /// The logical version the recovered system is at.
    pub recovered_version: u64,
    /// Bytes of the log occupied by valid frames — the repair truncation point a
    /// reopened log continues appending from.
    pub valid_log_len: usize,
    /// Whether the log ended in a torn or corrupt frame (dropped by the scan).
    pub torn_tail: bool,
}

/// The decoded durable state: base checkpoint (if any) plus the valid record tail.
struct DurableState {
    checkpoint: Option<Checkpoint>,
    records: Vec<WalRecord>,
    valid_log_len: usize,
    torn_tail: bool,
}

fn load(storage: &dyn WalStorage) -> Result<DurableState> {
    let checkpoint = match storage
        .read_checkpoint()
        .map_err(|e| CoreError::Durability(format!("cannot read checkpoint: {e}")))?
    {
        Some(bytes) if !bytes.is_empty() => Some(Checkpoint::decode(&bytes)?),
        _ => None,
    };
    let log =
        storage.read_log().map_err(|e| CoreError::Durability(format!("cannot read log: {e}")))?;
    let scan = scan_frames(&log);
    let mut records = Vec::with_capacity(scan.payloads.len());
    let mut valid_len = 0usize;
    let mut torn = scan.torn;
    for payload in &scan.payloads {
        // A frame whose CRC matched but whose payload does not parse as a record is
        // treated exactly like a torn tail: trust the prefix, drop the rest.
        match WalRecord::decode(payload) {
            Ok(record) => {
                records.push(record);
                valid_len += crate::wal::FRAME_HEADER + payload.len();
            }
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    Ok(DurableState { checkpoint, records, valid_log_len: valid_len, torn_tail: torn })
}

/// Replay the tail through `apply`, enforcing the version chain; returns the report.
fn replay_tail(
    state: &DurableState,
    base_version: u64,
    mut apply: impl FnMut(&WalRecord),
) -> RecoveryReport {
    let mut version = base_version;
    let mut replayed = 0usize;
    let mut torn = state.torn_tail;
    let mut valid_len = state.valid_log_len;
    let mut offset = 0usize;
    for record in &state.records {
        let frame_len = crate::wal::FRAME_HEADER + record_frame_payload_len(record);
        if record.version <= base_version {
            // Already captured by the checkpoint (crash before truncation).
            offset += frame_len;
            continue;
        }
        if record.version != version + 1 {
            // A gap or regression: data between the checkpoint and this record was
            // lost, so nothing from here on may be applied.
            torn = true;
            valid_len = offset;
            break;
        }
        apply(record);
        version = record.version;
        replayed += 1;
        offset += frame_len;
    }
    RecoveryReport {
        checkpoint_version: base_version,
        replayed_records: replayed,
        recovered_version: version,
        valid_log_len: valid_len,
        torn_tail: torn,
    }
}

fn record_frame_payload_len(record: &WalRecord) -> usize {
    // Records are re-encoded deterministically (same serializer), so the frame
    // length can be recomputed without carrying offsets through the scan.
    // lint: allow(no-panic-serving) -- serializing an owned record of plain data is infallible
    serde_json::to_string(record).expect("record serializes").len()
}

fn base_snapshot(checkpoint: &Option<Checkpoint>) -> Option<(&StudySnapshot, u64, usize)> {
    checkpoint.as_ref().map(|cp| (&cp.snapshot, cp.version, cp.shards))
}

/// Recover an unsharded [`Graphitti`] to the longest consistent durable prefix.
pub fn recover_unsharded(storage: &dyn WalStorage) -> Result<(Graphitti, RecoveryReport)> {
    let state = load(storage)?;
    let (mut system, base) = match base_snapshot(&state.checkpoint) {
        Some((snapshot, version, shards)) => {
            if shards != 0 {
                return Err(CoreError::Durability(format!(
                    "checkpoint was written by a {shards}-shard system; recover it sharded"
                )));
            }
            (Graphitti::from_study_snapshot(snapshot)?, version)
        }
        None => (Graphitti::new(), 0),
    };
    let report = replay_tail(&state, base, |record| {
        let mut batch = system.batch();
        for op in &record.ops {
            apply_op_unsharded(&mut batch, op);
        }
        batch.commit();
    });
    Ok((system, report))
}

/// Recover a [`ShardedSystem`] — every shard *and* the collation mirror — to the
/// longest consistent durable prefix.  The shard count comes from the checkpoint;
/// `default_shards` applies to a checkpoint-less log.
pub fn recover_sharded(
    storage: &dyn WalStorage,
    default_shards: usize,
) -> Result<(ShardedSystem, RecoveryReport)> {
    let state = load(storage)?;
    let (mut system, base) = match base_snapshot(&state.checkpoint) {
        Some((snapshot, version, shards)) => {
            if shards == 0 {
                return Err(CoreError::Durability(
                    "checkpoint was written by an unsharded system; recover it unsharded".into(),
                ));
            }
            (ShardedSystem::from_study_snapshot(snapshot, shards)?, version)
        }
        None => (ShardedSystem::new(default_shards.max(1)), 0),
    };
    let report = replay_tail(&state, base, |record| {
        let mut batch = system.batch();
        for op in &record.ops {
            apply_op_sharded(&mut batch, op);
        }
        batch.commit();
    });
    Ok((system, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use crate::wal::{LogOp, LogReferent, MemStorage};
    use crate::{Marker, ObjectId};

    fn batch_ops(step: u64) -> Vec<LogOp> {
        vec![
            LogOp::register_sequence(format!("seq-{step}"), DataType::DnaSequence, 2_000, "chr1"),
            LogOp::Annotate {
                content: xmlstore::DublinCore::new().field("description", format!("note {step}")),
                referents: vec![LogReferent::New {
                    object: ObjectId(step),
                    marker: Marker::interval(step * 10, step * 10 + 5),
                }],
                terms: vec![],
            },
        ]
    }

    #[test]
    fn fresh_storage_recovers_to_genesis() {
        let storage = MemStorage::new();
        let (system, report) = recover_unsharded(&storage).expect("recover");
        assert_eq!(system.object_count(), 0);
        assert_eq!(report, RecoveryReport::default());
        let (sharded, report) = recover_sharded(&storage, 4).expect("recover");
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(report.recovered_version, 0);
    }

    #[test]
    fn log_only_recovery_replays_every_batch() {
        let mut storage = MemStorage::new();
        let mut expected = Graphitti::new();
        for step in 0..5u64 {
            let ops = batch_ops(step);
            let record = crate::wal::WalRecord {
                version: step + 1,
                dirty: crate::wal::batch_dirty(&ops).bits(),
                ops: ops.clone(),
            };
            storage.append(&record.encode()).expect("append");
            let mut batch = expected.batch();
            for op in &ops {
                apply_op_unsharded(&mut batch, op);
            }
            batch.commit();
        }
        let (recovered, report) = recover_unsharded(&storage).expect("recover");
        assert_eq!(report.replayed_records, 5);
        assert_eq!(report.recovered_version, 5);
        assert!(!report.torn_tail);
        assert_eq!(recovered.study_snapshot(), expected.study_snapshot());
        assert_eq!(recovered.to_json(), expected.to_json());
    }

    #[test]
    fn version_gap_ends_replay() {
        let mut storage = MemStorage::new();
        for version in [1u64, 2, 4] {
            let ops = batch_ops(version);
            let record = crate::wal::WalRecord { version, dirty: 0, ops };
            storage.append(&record.encode()).expect("append");
        }
        let (_, report) = recover_unsharded(&storage).expect("recover");
        assert_eq!(report.recovered_version, 2, "the gap at version 3 must end replay");
        assert_eq!(report.replayed_records, 2);
        assert!(report.torn_tail);
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_guess() {
        let mut storage = MemStorage::new();
        storage.write_checkpoint(b"not a framed checkpoint").expect("write");
        let err = recover_unsharded(&storage).expect_err("corrupt checkpoint must fail");
        assert!(matches!(err, CoreError::Durability(_)), "{err:?}");
    }
}
