//! Persistent secondary indexes and statistics over the annotation registries.
//!
//! The paper's query processor "separates subqueries … finding a feasible order among
//! these subqueries" — which only pays off when each subquery can be answered without
//! scanning the registries. This module holds the inverted maps that make that
//! possible, maintained **incrementally** at `register` / `annotate` time (never
//! rebuilt per query):
//!
//! * `term → posting list of AnnotationId` — drives ontology subqueries,
//! * `doc id → AnnotationId` — maps content-store hits back to annotations,
//! * `data type → ReferentId`s — drives `OfType` referent subqueries,
//! * `block id → ReferentId`s — drives `BlockContains` referent subqueries,
//! * `referent → AnnotationId`s — constant-time "who annotated this substructure",
//!
//! plus [`Stats`], the per-term / per-type / per-domain counts the planner uses to
//! estimate subquery selectivity from real data instead of hard-coded guesses.
//!
//! Every posting list is a **strictly ascending, deduplicated `Vec`** (ids are dense
//! and allocated in increasing order, so appends preserve order — the maintenance
//! paths below `debug_assert!` it).  The executor relies on this invariant twice: to
//! intersect candidate sets by galloping merge / probe membership by binary search,
//! and to materialize a posting directly into a compressed candidate bitmap
//! (`graphitti_query::bitmap`) **without re-sorting** — the posting is consumed as a
//! pre-sorted run and packed chunk-by-chunk into containers.

use std::collections::HashMap;

use ontology::ConceptId;
use xmlstore::DocId;

use crate::annotation::AnnotationId;
use crate::marker::Marker;
use crate::referent::{Referent, ReferentId};
use crate::system::ObjectId;
use crate::types::DataType;

/// Workload statistics maintained alongside the indexes, used by the query planner for
/// selectivity estimation.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Committed annotations.
    pub annotations: usize,
    /// Created referents.
    pub referents: usize,
    /// Registered objects.
    pub objects: usize,
    /// Interval referents per coordinate domain.
    pub interval_referents_by_domain: HashMap<String, usize>,
    /// Region / volume referents per coordinate system.
    pub region_referents_by_system: HashMap<String, usize>,
    /// Block-set referents (all domains).
    pub block_referents: usize,
    /// Annotations citing each ontology term.
    pub term_citations: HashMap<ConceptId, usize>,
    /// Referents per data type.
    pub referents_by_type: HashMap<DataType, usize>,
}

impl Stats {
    /// Number of annotations citing `term`.
    pub fn term_citation_count(&self, term: ConceptId) -> usize {
        self.term_citations.get(&term).copied().unwrap_or(0)
    }

    /// Number of referents on objects of `data_type`.
    pub fn type_count(&self, data_type: DataType) -> usize {
        self.referents_by_type.get(&data_type).copied().unwrap_or(0)
    }

    /// Number of interval referents in `domain`, or across all domains when `None`.
    pub fn interval_count(&self, domain: Option<&str>) -> usize {
        match domain {
            Some(d) => self.interval_referents_by_domain.get(d).copied().unwrap_or(0),
            None => self.interval_referents_by_domain.values().sum(),
        }
    }

    /// Number of region / volume referents in `system`, or across all systems when
    /// `None`.
    pub fn region_count(&self, system: Option<&str>) -> usize {
        match system {
            Some(s) => self.region_referents_by_system.get(s).copied().unwrap_or(0),
            None => self.region_referents_by_system.values().sum(),
        }
    }
}

/// The inverted secondary indexes, updated by the [`Graphitti`](crate::Graphitti)
/// facade on every registration / annotation commit.
#[derive(Debug, Clone, Default)]
pub struct Indexes {
    term_postings: HashMap<ConceptId, Vec<AnnotationId>>,
    doc_annotation: HashMap<DocId, AnnotationId>,
    type_referents: HashMap<DataType, Vec<ReferentId>>,
    type_objects: HashMap<DataType, Vec<ObjectId>>,
    block_referents: HashMap<u64, Vec<ReferentId>>,
    referent_annotations: HashMap<ReferentId, Vec<AnnotationId>>,
    stats: Stats,
}

impl Indexes {
    /// Current workload statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Sorted posting list of annotations citing `term` (empty when none).
    pub fn annotations_citing(&self, term: ConceptId) -> &[AnnotationId] {
        self.term_postings.get(&term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The annotation whose content document is `doc`, if any.
    pub fn annotation_of_doc(&self, doc: DocId) -> Option<AnnotationId> {
        self.doc_annotation.get(&doc).copied()
    }

    /// Sorted list of referents on objects of `data_type`.
    pub fn referents_of_type(&self, data_type: DataType) -> &[ReferentId] {
        self.type_referents.get(&data_type).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sorted list of objects of `data_type` (ids are dense and registered in
    /// increasing order, so appends preserve order).
    pub fn objects_of_type(&self, data_type: DataType) -> &[ObjectId] {
        self.type_objects.get(&data_type).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sorted list of block-set referents containing `block_id`.
    pub fn referents_with_block(&self, block_id: u64) -> &[ReferentId] {
        self.block_referents.get(&block_id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sorted list of annotations linking `referent`.
    pub fn annotations_of_referent(&self, referent: ReferentId) -> &[AnnotationId] {
        self.referent_annotations.get(&referent).map(Vec::as_slice).unwrap_or(&[])
    }

    // --- incremental maintenance (called by the facade) ---

    /// Record a newly registered object.
    pub(crate) fn on_object_registered(&mut self, id: ObjectId, data_type: DataType) {
        let postings = self.type_objects.entry(data_type).or_default();
        debug_assert!(postings.last().is_none_or(|&last| last < id), "object posting out of order");
        postings.push(id);
        self.stats.objects += 1;
    }

    /// Record a newly created referent (`data_type` is its owning object's type).
    pub(crate) fn on_referent_added(&mut self, referent: &Referent, data_type: DataType) {
        let postings = self.type_referents.entry(data_type).or_default();
        debug_assert!(
            postings.last().is_none_or(|&last| last < referent.id),
            "type posting out of order"
        );
        postings.push(referent.id);
        *self.stats.referents_by_type.entry(data_type).or_insert(0) += 1;
        self.stats.referents += 1;
        match &referent.marker {
            Marker::Interval(_) => {
                *self
                    .stats
                    .interval_referents_by_domain
                    .entry(referent.domain.clone())
                    .or_insert(0) += 1;
            }
            Marker::Region(_) | Marker::Volume(_) => {
                *self
                    .stats
                    .region_referents_by_system
                    .entry(referent.domain.clone())
                    .or_insert(0) += 1;
            }
            Marker::BlockSet(ids) => {
                self.stats.block_referents += 1;
                for &id in ids {
                    let postings = self.block_referents.entry(id).or_default();
                    debug_assert!(
                        postings.last().is_none_or(|&last| last < referent.id),
                        "block posting out of order"
                    );
                    postings.push(referent.id);
                }
            }
        }
    }

    /// Record a committed annotation: its content document, linked referents and cited
    /// terms. `terms` may contain duplicates; postings record each annotation once.
    pub(crate) fn on_annotation_committed(
        &mut self,
        annotation: AnnotationId,
        doc: DocId,
        referents: &[ReferentId],
        terms: &[ConceptId],
    ) {
        self.doc_annotation.insert(doc, annotation);
        self.stats.annotations += 1;
        for &term in terms {
            let postings = self.term_postings.entry(term).or_default();
            if postings.last() != Some(&annotation) {
                debug_assert!(
                    postings.last().is_none_or(|&last| last < annotation),
                    "term posting out of order"
                );
                postings.push(annotation);
                *self.stats.term_citations.entry(term).or_insert(0) += 1;
            }
        }
        for &rid in referents {
            let postings = self.referent_annotations.entry(rid).or_default();
            debug_assert!(
                postings.last().is_none_or(|&last| last < annotation),
                "referent-annotation posting out of order"
            );
            postings.push(annotation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn referent(id: u64, marker: Marker, domain: &str) -> Referent {
        Referent::new(ReferentId(id), crate::ObjectId(0), marker, domain)
    }

    #[test]
    fn referent_indexes_and_stats() {
        let mut idx = Indexes::default();
        idx.on_object_registered(crate::ObjectId(0), DataType::DnaSequence);
        idx.on_referent_added(&referent(0, Marker::interval(0, 10), "chr1"), DataType::DnaSequence);
        idx.on_referent_added(&referent(1, Marker::interval(5, 20), "chr1"), DataType::DnaSequence);
        idx.on_referent_added(
            &referent(2, Marker::region(0.0, 0.0, 1.0, 1.0), "cs"),
            DataType::Image,
        );
        idx.on_referent_added(
            &referent(3, Marker::block_set([4, 7]), "r"),
            DataType::RelationalRecord,
        );

        assert_eq!(idx.referents_of_type(DataType::DnaSequence), &[ReferentId(0), ReferentId(1)]);
        assert_eq!(idx.objects_of_type(DataType::DnaSequence), &[crate::ObjectId(0)]);
        assert!(idx.objects_of_type(DataType::Image).is_empty());
        assert_eq!(idx.referents_with_block(7), &[ReferentId(3)]);
        assert!(idx.referents_with_block(99).is_empty());
        let s = idx.stats();
        assert_eq!(s.objects, 1);
        assert_eq!(s.referents, 4);
        assert_eq!(s.interval_count(Some("chr1")), 2);
        assert_eq!(s.interval_count(None), 2);
        assert_eq!(s.region_count(Some("cs")), 1);
        assert_eq!(s.block_referents, 1);
        assert_eq!(s.type_count(DataType::Image), 1);
        assert_eq!(s.type_count(DataType::ProteinModel), 0);
    }

    #[test]
    fn annotation_postings_stay_sorted_and_deduped() {
        let mut idx = Indexes::default();
        let t = ConceptId(3);
        idx.on_annotation_committed(AnnotationId(0), DocId(0), &[ReferentId(0)], &[t, t]);
        idx.on_annotation_committed(
            AnnotationId(1),
            DocId(1),
            &[ReferentId(0), ReferentId(1)],
            &[t],
        );
        assert_eq!(idx.annotations_citing(t), &[AnnotationId(0), AnnotationId(1)]);
        assert_eq!(idx.stats().term_citation_count(t), 2);
        assert_eq!(idx.annotation_of_doc(DocId(1)), Some(AnnotationId(1)));
        assert_eq!(idx.annotation_of_doc(DocId(9)), None);
        assert_eq!(idx.annotations_of_referent(ReferentId(0)), &[AnnotationId(0), AnnotationId(1)]);
        assert!(idx.annotations_of_referent(ReferentId(9)).is_empty());
    }
}
