//! [`Graphitti`] — the system facade — and [`SystemView`], its immutable read state.
//!
//! `Graphitti` owns every store and index and implements the demo's three activities:
//! **register** heterogeneous data objects (with type-specific metadata), **annotate**
//! their substructures (building the a-graph), and **explore** the resulting connection
//! structure.  It is the object a downstream application holds.
//!
//! All registries, stores and indexes live in a [`SystemView`] behind an `Arc`;
//! `Graphitti` derefs to it, so every read method is callable on either.  The view is
//! itself a **tree of independently shared components**: every substrate store, every
//! registry and the inverted indexes sit behind their own inner `Arc` (see
//! [`Component`]).  Mutations go through [`Arc::make_mut`] at *both* levels: while no
//! [`Snapshot`](crate::Snapshot) is outstanding they are plain in-place updates, and
//! the first mutation after a snapshot is taken shallow-copies the component tree (a
//! dozen `Arc` bumps) and then deep-copies **only the components that mutation
//! touches** — so publish cost after a snapshot is O(dirty components), not O(system),
//! and the snapshot keeps structurally sharing every untouched component with the live
//! view.  Readers therefore never block writers and never observe torn state — see
//! [`crate::snapshot`] for the read-handle side, and [`crate::batch`] for coalescing
//! many writes into one epoch bump.

use std::collections::HashMap;
use std::sync::Arc;

use agraph::{EdgeLabel, MultiGraph, NodeId, NodeKind};
use bytes::Bytes;
use interval_index::{DomainIntervals, Interval};
use ontology::{ConceptId, InstanceId, Ontology};
use relstore::{Catalog, Value};
use spatial_index::{CoordinateSystems, Rect};
use xmlstore::ContentStore;

use crate::annotation::{
    Annotation, AnnotationBuilder, AnnotationId, AnnotationSpec, PendingReferent,
};
use crate::epoch::{ComponentSet, EpochVector};
use crate::error::CoreError;
use crate::indexes::{Indexes, Stats};
use crate::marker::Marker;
use crate::referent::{Referent, ReferentId};
use crate::types::{DataType, Dimensionality};
use crate::Result;

/// Identifier of a registered data object.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct ObjectId(pub u64);

/// Metadata about a registered object (its type, name, relational location and index
/// domain).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInfo {
    /// The object's id.
    pub id: ObjectId,
    /// The object's data type.
    pub data_type: DataType,
    /// The object's human-readable name / accession.
    pub name: String,
    /// The row id of the object's metadata in its type-specific table.
    pub row: relstore::RowId,
    /// The coordinate domain (sequences) or coordinate system (spatial) the object's
    /// substructures are indexed under.  Empty for discrete types.
    pub domain: String,
    /// The a-graph node representing the whole object.
    pub node: NodeId,
}

/// What an a-graph node refers to back in the core registries — lets the query engine
/// decode a node id into a typed entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    /// An annotation content node.
    Annotation(AnnotationId),
    /// A referent node.
    Referent(ReferentId),
    /// An ontology-term node.
    Term(ConceptId),
    /// A whole-object node.
    Object(ObjectId),
}

/// One independently shared component of a [`SystemView`].
///
/// The view is a tree of `Arc`s, one per component; a mutation deep-copies only the
/// components it touches (and only when they are still shared with a snapshot).
/// Tests use [`SystemView::shares_component`] to prove that untouched components stay
/// structurally shared across a snapshot/write boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The relational catalogue (typed object metadata tables).
    Catalog,
    /// The annotation-content store (XML documents + keyword index).
    Content,
    /// The interval-index collection.
    Intervals,
    /// The spatial-index collection.
    Spatial,
    /// The ontology store.
    Ontology,
    /// The a-graph.
    Agraph,
    /// The object registry.
    Objects,
    /// The referent registry.
    Referents,
    /// The annotation registry.
    Annotations,
    /// The node ↔ entity maps (forward and all reverse directions).
    NodeMaps,
    /// The object → referents secondary map.
    ObjectReferents,
    /// The inverted secondary indexes + planner statistics.
    Indexes,
}

impl Component {
    /// Every component, in declaration order.
    pub const ALL: [Component; 12] = [
        Component::Catalog,
        Component::Content,
        Component::Intervals,
        Component::Spatial,
        Component::Ontology,
        Component::Agraph,
        Component::Objects,
        Component::Referents,
        Component::Annotations,
        Component::NodeMaps,
        Component::ObjectReferents,
        Component::Indexes,
    ];
}

/// The node ↔ entity maps, grouped under one `Arc` because every a-graph mutation
/// updates them together.
#[derive(Debug, Default, Clone)]
struct NodeMaps {
    /// Maps an a-graph node id to the entity it represents.
    node_entity: HashMap<NodeId, Entity>,
    /// Reverse maps for the query engine.
    object_node: HashMap<ObjectId, NodeId>,
    referent_node: HashMap<ReferentId, NodeId>,
    annotation_node: HashMap<AnnotationId, NodeId>,
    term_node: HashMap<ConceptId, NodeId>,
}

/// The complete read state of a Graphitti system: every registry, store and index.
///
/// `Graphitti` and [`Snapshot`](crate::Snapshot) both deref to this type, so the whole
/// read API (lookups, exploration, substructure queries, integrity checks) is written
/// once here and shared by the live system and by isolated snapshots.  Cloning is
/// **shallow** — one `Arc` bump per [`Component`]; component contents are deep-copied
/// lazily, per component, by the first mutation that touches them while they are still
/// shared (`Arc::make_mut` at the component level).
#[derive(Debug, Default, Clone)]
pub struct SystemView {
    catalog: Arc<Catalog>,
    content: Arc<ContentStore>,
    intervals: Arc<DomainIntervals>,
    spatial: Arc<CoordinateSystems>,
    ontology: Arc<Ontology>,
    agraph: Arc<MultiGraph>,

    objects: Arc<Vec<ObjectInfo>>,
    referents: Arc<Vec<Referent>>,
    annotations: Arc<Vec<Annotation>>,

    /// The node ↔ entity maps (see [`NodeMaps`]).
    nodes: Arc<NodeMaps>,
    /// Secondary index: object → its referents, so exploration is O(k) not O(all
    /// referents).
    ///
    /// **Ordering contract:** each per-object list is strictly ascending by
    /// [`ReferentId`] — referent ids are allocated monotonically and each referent
    /// is appended to exactly one object's list at creation, so mark order and id
    /// order coincide.  [`SystemView::referents_of_object`] returns the slice
    /// as-is; candidate pipelines feed it to `CandidateSet::from_posting`, which
    /// requires strict ascent (debug-asserted at both ends).
    object_referents: Arc<HashMap<ObjectId, Vec<ReferentId>>>,
    /// Inverted secondary indexes + workload statistics, maintained incrementally at
    /// register / annotate time (never rebuilt per query).
    indexes: Arc<Indexes>,
}

impl SystemView {
    // --- read-only accessors for substrate stores (used by the query engine) ---

    /// The relational catalogue.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The annotation-content store.
    pub fn content_store(&self) -> &ContentStore {
        &self.content
    }

    /// The interval-index collection.
    pub fn intervals(&self) -> &DomainIntervals {
        &self.intervals
    }

    /// The spatial-index collection.
    pub fn spatial(&self) -> &CoordinateSystems {
        &self.spatial
    }

    /// The ontology store.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Mutable access to the ontology store (facade-internal; the public entry point is
    /// [`Graphitti::ontology_mut`], which routes through copy-on-publish).  Copies the
    /// ontology component iff it is still shared with a snapshot.
    pub(crate) fn ontology_mut(&mut self) -> &mut Ontology {
        Arc::make_mut(&mut self.ontology)
    }

    // --- structural sharing ---

    /// Whether `self` and `other` share the storage of one component (`Arc::ptr_eq` on
    /// the component's inner `Arc`).  After a snapshot capture every component is
    /// shared; a mutation un-shares exactly the components it touches.  Tests use this
    /// to prove the copy-on-write granularity.
    pub fn shares_component(&self, other: &SystemView, component: Component) -> bool {
        match component {
            Component::Catalog => Arc::ptr_eq(&self.catalog, &other.catalog),
            Component::Content => Arc::ptr_eq(&self.content, &other.content),
            Component::Intervals => Arc::ptr_eq(&self.intervals, &other.intervals),
            Component::Spatial => Arc::ptr_eq(&self.spatial, &other.spatial),
            Component::Ontology => Arc::ptr_eq(&self.ontology, &other.ontology),
            Component::Agraph => Arc::ptr_eq(&self.agraph, &other.agraph),
            Component::Objects => Arc::ptr_eq(&self.objects, &other.objects),
            Component::Referents => Arc::ptr_eq(&self.referents, &other.referents),
            Component::Annotations => Arc::ptr_eq(&self.annotations, &other.annotations),
            Component::NodeMaps => Arc::ptr_eq(&self.nodes, &other.nodes),
            Component::ObjectReferents => {
                Arc::ptr_eq(&self.object_referents, &other.object_referents)
            }
            Component::Indexes => Arc::ptr_eq(&self.indexes, &other.indexes),
        }
    }

    /// The components whose storage `self` still shares with `other`, in
    /// [`Component::ALL`] order.
    pub fn shared_components(&self, other: &SystemView) -> Vec<Component> {
        Component::ALL.into_iter().filter(|&c| self.shares_component(other, c)).collect()
    }

    /// A fully materialised copy sharing **no** storage with `self`: every component's
    /// contents deep-cloned behind a fresh `Arc`.  This is exactly what the
    /// pre-refactor monolithic copy-on-publish paid on the first write after every
    /// snapshot; benches use it as the before-side baseline when reporting the
    /// per-component sharing win.
    pub fn deep_copy(&self) -> SystemView {
        SystemView {
            catalog: Arc::new((*self.catalog).clone()),
            content: Arc::new((*self.content).clone()),
            intervals: Arc::new((*self.intervals).clone()),
            spatial: Arc::new((*self.spatial).clone()),
            ontology: Arc::new((*self.ontology).clone()),
            agraph: Arc::new((*self.agraph).clone()),
            objects: Arc::new((*self.objects).clone()),
            referents: Arc::new((*self.referents).clone()),
            annotations: Arc::new((*self.annotations).clone()),
            nodes: Arc::new((*self.nodes).clone()),
            object_referents: Arc::new((*self.object_referents).clone()),
            indexes: Arc::new((*self.indexes).clone()),
        }
    }

    /// The a-graph.
    pub fn agraph(&self) -> &MultiGraph {
        &self.agraph
    }

    /// The inverted secondary indexes (term postings, doc → annotation, type / block →
    /// referents), used by the query engine's pipelined executor.
    pub fn indexes(&self) -> &Indexes {
        &self.indexes
    }

    /// Workload statistics (counts per term / type / domain), used by the query planner
    /// for selectivity estimation.
    pub fn stats(&self) -> &Stats {
        self.indexes.stats()
    }

    // --- counts ---

    /// Number of registered objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of referents.
    pub fn referent_count(&self) -> usize {
        self.referents.len()
    }

    /// Number of committed annotations.
    pub fn annotation_count(&self) -> usize {
        self.annotations.len()
    }

    // --- registration ---

    /// Register a data object (facade-internal; see [`Graphitti::register_object`]).
    pub(crate) fn register_object(
        &mut self,
        data_type: DataType,
        name: impl Into<String>,
        mut metadata: Vec<Value>,
        payload: Bytes,
        domain: impl Into<String>,
    ) -> Result<ObjectId> {
        let name = name.into();
        let domain = domain.into();
        let table_name = data_type.table_name();
        let catalog = Arc::make_mut(&mut self.catalog);
        catalog.ensure_table(table_name, data_type.default_schema());

        // Build the full row: name, <metadata...>, payload.
        let mut row = Vec::with_capacity(metadata.len() + 2);
        row.push(Value::text(name.clone()));
        row.append(&mut metadata);
        row.push(Value::Blob(payload));
        let table = catalog.require_table_mut(table_name)?;
        let expected_meta = table.schema().arity();
        if row.len() != expected_meta {
            return Err(CoreError::Relational(format!(
                "{} metadata arity: expected {}, got {}",
                table_name,
                expected_meta,
                row.len()
            )));
        }
        let row_id = table.insert(row)?;

        let id = ObjectId(self.objects.len() as u64);
        let node =
            Arc::make_mut(&mut self.agraph).add_node(NodeKind::Object, format!("obj:{}", id.0));
        let nodes = Arc::make_mut(&mut self.nodes);
        nodes.node_entity.insert(node, Entity::Object(id));
        nodes.object_node.insert(id, node);
        Arc::make_mut(&mut self.objects).push(ObjectInfo {
            id,
            data_type,
            name,
            row: row_id,
            domain,
            node,
        });
        Arc::make_mut(&mut self.indexes).on_object_registered(id, data_type);
        Ok(id)
    }

    /// Metadata about a registered object.
    pub fn object(&self, id: ObjectId) -> Option<&ObjectInfo> {
        self.objects.get(id.0 as usize)
    }

    /// All objects of a given data type, served from the type inverted index — no
    /// registry scan and no per-call `Vec` allocation.
    pub fn objects_of_type(&self, data_type: DataType) -> impl Iterator<Item = &ObjectInfo> + '_ {
        self.indexes.objects_of_type(data_type).iter().map(move |id| &self.objects[id.0 as usize])
    }

    /// The sorted ids of all objects of a given data type, as a borrowed slice.
    pub fn object_ids_of_type(&self, data_type: DataType) -> &[ObjectId] {
        self.indexes.objects_of_type(data_type)
    }

    /// All registered objects.
    pub fn objects(&self) -> &[ObjectInfo] {
        &self.objects
    }

    /// The metadata a [`register_object`](Self::register_object) call would take for this
    /// object: the middle columns (between `name` and `payload`) plus the payload blob.
    /// Used by snapshot export to reconstruct the registration.
    pub fn object_metadata(&self, id: ObjectId) -> Option<(Vec<Value>, Bytes)> {
        let info = self.object(id)?;
        let table = self.catalog.table(info.data_type.table_name())?;
        let row = table.get(info.row)?;
        if row.len() < 2 {
            return None;
        }
        let metadata = row[1..row.len() - 1].to_vec();
        let payload = match row.last() {
            Some(Value::Blob(b)) => b.clone(),
            _ => Bytes::new(),
        };
        Some((metadata, payload))
    }

    // --- annotation ---

    /// Commit an annotation spec (called by the builder through the facade).
    pub(crate) fn commit_annotation(&mut self, spec: AnnotationSpec) -> Result<AnnotationId> {
        if spec.referents.is_empty() && spec.terms.is_empty() {
            return Err(CoreError::EmptyAnnotation);
        }

        // 1. materialise referents: validate markers, index them, add a-graph nodes.
        //    Existing-referent references are reused (shared referent → indirect
        //    relation) after checking they exist.
        let mut referent_ids = Vec::with_capacity(spec.referents.len());
        for pending in &spec.referents {
            let rid = match pending {
                PendingReferent::New { object, marker } => {
                    self.add_referent(*object, marker.clone())?
                }
                PendingReferent::Existing(rid) => {
                    if self.referent(*rid).is_none() {
                        return Err(CoreError::Graph(format!(
                            "annotation references unknown referent {rid:?}"
                        )));
                    }
                    *rid
                }
            };
            if !referent_ids.contains(&rid) {
                referent_ids.push(rid);
            }
        }

        // 2. persist the content document.
        let id = AnnotationId(self.annotations.len() as u64);
        let doc = spec.content.to_document();
        let doc_id = Arc::make_mut(&mut self.content).insert(doc);

        // 3. content node in the a-graph.
        let content_node =
            Arc::make_mut(&mut self.agraph).add_node(NodeKind::Content, format!("ann:{}", id.0));
        let nodes = Arc::make_mut(&mut self.nodes);
        nodes.node_entity.insert(content_node, Entity::Annotation(id));
        nodes.annotation_node.insert(id, content_node);

        // 4. link content -> each referent.
        for &rid in &referent_ids {
            let rnode = self.nodes.referent_node[&rid];
            Arc::make_mut(&mut self.agraph).add_edge(
                content_node,
                rnode,
                EdgeLabel::annotates(),
            )?;
        }

        // 5. link content -> each ontology term (adding term nodes lazily).
        for &term in &spec.terms {
            let tnode = self.term_node_for(term);
            Arc::make_mut(&mut self.agraph).add_edge(
                content_node,
                tnode,
                EdgeLabel::cites_term(),
            )?;
        }

        Arc::make_mut(&mut self.indexes).on_annotation_committed(
            id,
            doc_id,
            &referent_ids,
            &spec.terms,
        );
        Arc::make_mut(&mut self.annotations).push(Annotation {
            id,
            content: spec.content,
            doc_id,
            referents: referent_ids,
            terms: spec.terms,
        });
        Ok(id)
    }

    /// Create and index a referent, returning its id.  The referent node is linked to
    /// its owning object by a `part-of` edge.
    fn add_referent(&mut self, object: ObjectId, marker: Marker) -> Result<ReferentId> {
        let info = self.object(object).ok_or(CoreError::UnknownObject(object))?.clone();

        // Validate marker kind against the object's dimensionality.
        let expected = info.data_type.dimensionality();
        let got = marker.dimensionality();
        if expected != got {
            return Err(CoreError::MarkerKindMismatch { data_type: info.data_type, expected, got });
        }

        let rid = ReferentId(self.referents.len() as u64);

        // Index the substructure in the appropriate structure.
        match &marker {
            Marker::Interval(iv) => {
                Arc::make_mut(&mut self.intervals).insert(&info.domain, *iv, rid.0);
            }
            Marker::Region(rect) | Marker::Volume(rect) => {
                Arc::make_mut(&mut self.spatial).insert(&info.domain, *rect, rid.0);
            }
            Marker::BlockSet(_) => { /* discrete: no spatial index, lives in the a-graph only */ }
        }

        let referent = Referent::new(rid, object, marker, info.domain.clone());
        let rnode =
            Arc::make_mut(&mut self.agraph).add_node(NodeKind::Referent, referent.node_key());
        let nodes = Arc::make_mut(&mut self.nodes);
        nodes.node_entity.insert(rnode, Entity::Referent(rid));
        nodes.referent_node.insert(rid, rnode);

        // referent -> object (part-of)
        Arc::make_mut(&mut self.agraph).add_edge(rnode, info.node, EdgeLabel::part_of())?;

        let per_object = Arc::make_mut(&mut self.object_referents).entry(object).or_default();
        debug_assert!(
            per_object.last().is_none_or(|&prev| prev < rid),
            "object_referents ordering contract: new {rid:?} must exceed {:?}",
            per_object.last()
        );
        per_object.push(rid);
        Arc::make_mut(&mut self.indexes).on_referent_added(&referent, info.data_type);
        Arc::make_mut(&mut self.referents).push(referent);
        Ok(rid)
    }

    /// Look up (or lazily create) the a-graph node for an ontology term.
    fn term_node_for(&mut self, concept: ConceptId) -> NodeId {
        if let Some(&n) = self.nodes.term_node.get(&concept) {
            return n;
        }
        let n = Arc::make_mut(&mut self.agraph)
            .add_node(NodeKind::OntologyTerm, format!("onto:{}", concept.0));
        let nodes = Arc::make_mut(&mut self.nodes);
        nodes.node_entity.insert(n, Entity::Term(concept));
        nodes.term_node.insert(concept, n);
        n
    }

    /// Register an ontology term node explicitly (facade-internal; see
    /// [`Graphitti::ensure_term_node`]).
    pub(crate) fn ensure_term_node(&mut self, concept: ConceptId) -> NodeId {
        self.term_node_for(concept)
    }

    // --- lookups ---

    /// An annotation by id.
    pub fn annotation(&self, id: AnnotationId) -> Option<&Annotation> {
        self.annotations.get(id.0 as usize)
    }

    /// All annotations.
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// A referent by id.
    pub fn referent(&self, id: ReferentId) -> Option<&Referent> {
        self.referents.get(id.0 as usize)
    }

    /// All referents.
    pub fn referents(&self) -> &[Referent] {
        &self.referents
    }

    /// The entity a node refers to.
    pub fn entity_of(&self, node: NodeId) -> Option<Entity> {
        self.nodes.node_entity.get(&node).copied()
    }

    /// The a-graph node of an object.
    pub fn object_node(&self, id: ObjectId) -> Option<NodeId> {
        self.nodes.object_node.get(&id).copied()
    }

    /// The a-graph node of a referent.
    pub fn referent_node(&self, id: ReferentId) -> Option<NodeId> {
        self.nodes.referent_node.get(&id).copied()
    }

    /// The a-graph node of an annotation.
    pub fn annotation_node(&self, id: AnnotationId) -> Option<NodeId> {
        self.nodes.annotation_node.get(&id).copied()
    }

    /// The a-graph node of an ontology term, if any annotation has cited it (or it was
    /// explicitly ensured).
    pub fn term_node(&self, concept: ConceptId) -> Option<NodeId> {
        self.nodes.term_node.get(&concept).copied()
    }

    // --- exploration (correlated data viewing) ---

    /// The referents of an object: every marked substructure of it. `O(k)` via the
    /// object→referents index, returned as a borrowed slice (no per-call allocation).
    pub fn referents_of_object(&self, object: ObjectId) -> &[ReferentId] {
        self.object_referents.get(&object).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The annotations that link a given referent. Answered in O(k) from the
    /// referent → annotations index (no a-graph traversal).
    pub fn annotations_of_referent(&self, referent: ReferentId) -> Vec<AnnotationId> {
        self.indexes.annotations_of_referent(referent).to_vec()
    }

    /// All annotations that touch an object (through any of its referents) — "what other
    /// annotations have been made on this sequence".
    pub fn annotations_of_object(&self, object: ObjectId) -> Vec<AnnotationId> {
        let mut out = Vec::new();
        for &rid in self.referents_of_object(object) {
            for aid in self.annotations_of_referent(rid) {
                if !out.contains(&aid) {
                    out.push(aid);
                }
            }
        }
        out.sort();
        out
    }

    /// Annotations indirectly related to the given one because they share a referent —
    /// the paper's notion that "if the same referent is connected to two different
    /// annotations … the two annotations become indirectly related".
    pub fn related_annotations(&self, annotation: AnnotationId) -> Vec<AnnotationId> {
        let Some(ann) = self.annotation(annotation) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &rid in &ann.referents {
            for other in self.annotations_of_referent(rid) {
                if other != annotation && !out.contains(&other) {
                    out.push(other);
                }
            }
        }
        out.sort();
        out
    }

    /// Transitively related annotations: every annotation reachable from `start` by
    /// repeatedly hopping through shared referents.  A single breadth-first traversal of
    /// the a-graph over content↔referent edges — the operation the a-graph join index
    /// exists to make cheap (a relational baseline needs an iterative self-join).
    pub fn transitively_related_annotations(&self, start: AnnotationId) -> Vec<AnnotationId> {
        use std::collections::{HashSet, VecDeque};
        let Some(&seed) = self.nodes.annotation_node.get(&start) else {
            return Vec::new();
        };
        // BFS over the bipartite content↔referent structure, following annotates edges in
        // both directions.
        let mut visited_content: HashSet<NodeId> = HashSet::new();
        visited_content.insert(seed);
        let mut queue = VecDeque::new();
        queue.push_back(seed);
        let mut out = Vec::new();
        while let Some(content) = queue.pop_front() {
            for referent in self.agraph.referents_of_content(content) {
                for other in self.agraph.contents_of_referent(referent) {
                    if visited_content.insert(other) {
                        if let Some(Entity::Annotation(a)) = self.entity_of(other) {
                            if a != start {
                                out.push(a);
                            }
                            queue.push_back(other);
                        }
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// The ontology terms an annotation cites.
    pub fn terms_of_annotation(&self, annotation: AnnotationId) -> Vec<ConceptId> {
        self.annotation(annotation).map(|a| a.terms.clone()).unwrap_or_default()
    }

    /// Ontology instances attached to an object's referents via the ontology store — a
    /// convenience for "search for the ontology terms mapped to the objects in the
    /// result".  (Objects map to instances by name; unmatched objects yield nothing.)
    pub fn ontology_instances_for_object(&self, object: ObjectId) -> Vec<InstanceId> {
        // This uses instance names equal to object names as the mapping convention.
        let Some(info) = self.object(object) else { return Vec::new() };
        (0..self.ontology.instance_count() as u32)
            .map(InstanceId)
            .filter(|i| self.ontology.instance_name(*i) == Some(info.name.as_str()))
            .collect()
    }

    // --- substructure queries delegated to the indexes ---

    /// Referents whose interval overlaps `query` within a coordinate domain.
    pub fn overlapping_intervals(&self, domain: &str, query: Interval) -> Vec<ReferentId> {
        self.intervals
            .overlapping(domain, query)
            .into_iter()
            .map(|e| ReferentId(e.payload))
            .collect()
    }

    /// Referents whose region overlaps `query` within a coordinate system.
    pub fn overlapping_regions(&self, system: &str, query: Rect) -> Vec<ReferentId> {
        self.spatial.overlapping(system, query).into_iter().map(|e| ReferentId(e.payload)).collect()
    }

    /// The connection subgraph intervening a set of annotations — the a-graph `connect`
    /// primitive applied to their content nodes. Returns `None` if fewer than two of the
    /// annotations exist or they are not mutually connected.
    pub fn connect_annotations(
        &self,
        annotations: &[AnnotationId],
    ) -> Option<agraph::ConnectionSubgraph> {
        let nodes: Vec<NodeId> =
            annotations.iter().filter_map(|a| self.nodes.annotation_node.get(a).copied()).collect();
        self.agraph.connect(&nodes).ok()
    }

    /// The connection subgraph intervening a set of objects — `connect` on their object
    /// nodes.  This is what the demo's correlated-data viewer draws when the user asks
    /// how several result objects are related.
    pub fn connect_objects(&self, objects: &[ObjectId]) -> Option<agraph::ConnectionSubgraph> {
        let nodes: Vec<NodeId> =
            objects.iter().filter_map(|o| self.nodes.object_node.get(o).copied()).collect();
        self.agraph.connect(&nodes).ok()
    }

    /// A path between two annotations through the a-graph, if one exists (the `path`
    /// primitive lifted to annotation ids).
    pub fn path_between_annotations(
        &self,
        a: AnnotationId,
        b: AnnotationId,
    ) -> Option<agraph::Path> {
        let na = self.nodes.annotation_node.get(&a).copied()?;
        let nb = self.nodes.annotation_node.get(&b).copied()?;
        self.agraph.path(na, nb)
    }

    /// Count of spatial / interval index structures currently held — reports how the
    /// "keep the number of index structures small" grouping is behaving.
    pub fn index_structure_count(&self) -> (usize, usize) {
        (self.intervals.domain_count(), self.spatial.system_count())
    }

    /// Check internal consistency across the registries, the a-graph and the indexes.
    /// Returns the list of problems found (empty when the system is consistent). Used by
    /// tests and the admin tab to catch corruption.
    pub fn verify_integrity(&self) -> Vec<String> {
        let mut problems = Vec::new();

        // every object has an a-graph node
        for info in self.objects.iter() {
            match self.nodes.object_node.get(&info.id) {
                Some(&n) if self.agraph.node_alive(n) => {}
                _ => problems.push(format!("object {:?} has no live a-graph node", info.id)),
            }
        }
        // every referent has a node, an object that exists, and (for spatial/linear) an
        // index entry
        for r in self.referents.iter() {
            if self.object(r.object).is_none() {
                problems.push(format!("referent {:?} points to missing object", r.id));
            }
            match self.nodes.referent_node.get(&r.id) {
                Some(&n) if self.agraph.node_alive(n) => {}
                _ => problems.push(format!("referent {:?} has no live node", r.id)),
            }
            match &r.marker {
                Marker::Interval(iv) => {
                    let found = self
                        .intervals
                        .overlapping(&r.domain, *iv)
                        .iter()
                        .any(|e| e.payload == r.id.0);
                    if !iv.is_empty() && !found {
                        problems.push(format!("referent {:?} missing from interval index", r.id));
                    }
                }
                Marker::Region(rect) | Marker::Volume(rect) => {
                    let found = self
                        .spatial
                        .overlapping(&r.domain, *rect)
                        .iter()
                        .any(|e| e.payload == r.id.0);
                    if !found {
                        problems.push(format!("referent {:?} missing from spatial index", r.id));
                    }
                }
                Marker::BlockSet(_) => {}
            }
        }
        // every annotation has a node and its referents exist
        for a in self.annotations.iter() {
            match self.nodes.annotation_node.get(&a.id) {
                Some(&n) if self.agraph.node_alive(n) => {}
                _ => problems.push(format!("annotation {:?} has no live node", a.id)),
            }
            for &rid in &a.referents {
                if self.referent(rid).is_none() {
                    problems
                        .push(format!("annotation {:?} links missing referent {:?}", a.id, rid));
                }
            }
        }
        problems
    }

    /// Whether the object's dimensionality is spatial (for callers building markers).
    pub fn is_spatial_object(&self, object: ObjectId) -> bool {
        self.object(object)
            .map(|o| {
                matches!(
                    o.data_type.dimensionality(),
                    Dimensionality::Planar | Dimensionality::Volumetric
                )
            })
            .unwrap_or(false)
    }
}

/// The Graphitti annotation management system.
///
/// A thin mutation facade over an [`Arc`]-shared [`SystemView`].  Reads deref straight
/// to the view; every mutation routes through [`Arc::make_mut`], bumps the epoch
/// counter, and records its **dirty set** — the [`Component`]s it writes — in a
/// per-component [`EpochVector`].  [`Snapshot`](crate::Snapshot)s taken earlier keep
/// the exact state they captured (copy-on-publish), the epoch identifies which
/// published state a reader or cache entry belongs to, and the epoch vector identifies
/// *which components* moved between two published states, so downstream caches can
/// invalidate per dirtied component instead of wholesale.
#[derive(Debug)]
pub struct Graphitti {
    view: Arc<SystemView>,
    epoch: u64,
    /// Per-component epochs: for each component, the global epoch of the last write
    /// that dirtied it (see [`crate::epoch`]).
    epochs: EpochVector,
    /// A process-unique lineage id (fresh per `Graphitti` instance).  Component epochs
    /// are only comparable within one lineage; a rebuilt system restarts its epochs,
    /// and the id is what lets a downstream cache detect that and clear wholesale.
    system_id: u64,
    /// Inside a [`CommitBatch`](crate::CommitBatch): epoch bumps are coalesced so the
    /// whole batch publishes as one version.
    batched: bool,
    /// Whether the current batch has already taken its single epoch bump.
    batch_bumped: bool,
    /// The union of the current batch's writes' dirty sets (empty outside a batch).
    batch_dirty: ComponentSet,
    /// Debug-build twin of the lint's dirty-set-soundness rule: the shared view as
    /// of `begin_batch`, diffed against the post-batch view at `end_batch` to prove
    /// the accumulated dirty set covers every component the batch actually copied.
    #[cfg(debug_assertions)]
    batch_base: Option<SystemView>,
}

impl Default for Graphitti {
    fn default() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_SYSTEM_ID: AtomicU64 = AtomicU64::new(1);
        Graphitti {
            view: Arc::default(),
            epoch: 0,
            epochs: EpochVector::default(),
            system_id: NEXT_SYSTEM_ID.fetch_add(1, Ordering::Relaxed),
            batched: false,
            batch_bumped: false,
            batch_dirty: ComponentSet::EMPTY,
            #[cfg(debug_assertions)]
            batch_base: None,
        }
    }
}

impl std::ops::Deref for Graphitti {
    type Target = SystemView;

    fn deref(&self) -> &SystemView {
        &self.view
    }
}

impl Graphitti {
    /// Create an empty system.
    pub fn new() -> Self {
        Graphitti::default()
    }

    /// The current epoch: incremented on every mutation, so two equal epochs from the
    /// same system always denote identical state.  Fresh systems start at 0.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-component epoch vector: for each [`Component`], the global epoch of the
    /// last write that dirtied it.  Equal component epochs (within this system) denote
    /// identical query-visible component state.
    pub fn component_epochs(&self) -> EpochVector {
        self.epochs
    }

    /// The epoch of one component (see [`Graphitti::component_epochs`]).
    pub fn component_epoch(&self, component: Component) -> u64 {
        self.epochs.get(component)
    }

    /// This system's lineage id: process-unique per `Graphitti` instance, carried by
    /// every snapshot.  Epoch comparisons are only meaningful within one lineage.
    pub fn system_id(&self) -> u64 {
        self.system_id
    }

    /// The shared read view (rarely needed directly — `Graphitti` derefs to it).
    pub fn view(&self) -> &SystemView {
        &self.view
    }

    /// Capture an isolated, cheaply cloneable read snapshot of the current state.
    /// Until the next mutation this is a zero-copy `Arc` clone; the first mutation
    /// afterwards copies the state out from under the snapshot, never mutating it.
    pub fn snapshot(&self) -> crate::Snapshot {
        crate::Snapshot::capture(Arc::clone(&self.view), self.epoch, self.epochs, self.system_id)
    }

    /// Replace the live view with a [`deep_copy`](SystemView::deep_copy), un-sharing
    /// every component from every outstanding snapshot at once.  This is exactly the
    /// cost model of the pre-refactor monolithic copy-on-publish (one flat
    /// `Arc::make_mut` over the whole view): benches call it before a post-snapshot
    /// write to measure the before side — the write that follows then mutates
    /// unshared state in place, paying no per-component copies on top.  Not a
    /// version change: the state is identical, so the epoch — global and per
    /// component — stays put, and epoch-vector-keyed cache entries remain valid
    /// (correctly: the state they were computed against is bit-identical).  The
    /// view's *identity* does change: a snapshot captured afterwards is not
    /// [`same_epoch`](crate::Snapshot::same_epoch)-equal to one captured before
    /// (that check includes `Arc::ptr_eq`).
    pub fn unshare_all(&mut self) {
        self.view = Arc::new(self.view.deep_copy());
    }

    /// Copy-on-publish write access: bump the epoch, record the mutation's dirty set
    /// in the per-component epoch vector, and obtain a mutable view, shallow-cloning
    /// the component tree first iff a snapshot still references it (each *component*
    /// then deep-copies lazily when a mutation touches it — see [`SystemView`]).
    ///
    /// `dirty` is the set of components the mutation may write — the same copy
    /// footprint `tests/cow_sharing.rs` pins with `Arc::ptr_eq` — and each of its
    /// components' epochs is set to the (possibly freshly bumped) global epoch.
    ///
    /// The epoch bumps even when the mutation subsequently fails.  That is
    /// deliberate: several mutations have partial effects on failure (e.g. a
    /// multi-referent annotation that fails on its third marker keeps the first two
    /// referents), so treating every write attempt as a new version is the
    /// conservative direction — downstream epoch-keyed caches may invalidate
    /// needlessly, but can never serve stale state.  The dirty set is likewise the
    /// attempt's full footprint, not the achieved one.
    ///
    /// Inside a [`CommitBatch`](crate::CommitBatch) the epoch bumps once, on the
    /// batch's first write attempt; the rest of the batch shares that version (the
    /// batch exclusively borrows the system, so no snapshot can observe the
    /// intermediate states the coalesced epoch would misname), and every write's
    /// dirty set is marked at — and accumulated under — that one coalesced epoch.
    fn view_mut(&mut self, dirty: ComponentSet) -> &mut SystemView {
        if !self.batched {
            self.epoch += 1;
        } else if !self.batch_bumped {
            self.epoch += 1;
            self.batch_bumped = true;
        }
        self.epochs.mark(dirty, self.epoch);
        if self.batched {
            self.batch_dirty |= dirty;
        }
        Arc::make_mut(&mut self.view)
    }

    /// Enter batch mode (called by [`Graphitti::batch`] via `crate::batch`): until
    /// [`end_batch`](Self::end_batch), all write attempts share one epoch bump.
    pub(crate) fn begin_batch(&mut self) {
        debug_assert!(!self.batched, "CommitBatch exclusively borrows the system");
        self.batched = true;
        self.batch_bumped = false;
        self.batch_dirty = ComponentSet::EMPTY;
        #[cfg(debug_assertions)]
        {
            // Shallow clone: one Arc bump per component, the same cost as a snapshot.
            self.batch_base = Some((*self.view).clone());
        }
    }

    /// Leave batch mode: versioning returns to one epoch bump per mutation.
    ///
    /// In debug builds this is the runtime twin of `graphitti-lint`'s
    /// dirty-set-soundness rule: the components whose storage was actually un-shared
    /// over the batch (the copy-on-write footprint) must all have been declared in
    /// the accumulated dirty set, or a downstream footprint-keyed cache would keep
    /// entries the batch invalidated.
    pub(crate) fn end_batch(&mut self) {
        #[cfg(debug_assertions)]
        if let Some(base) = self.batch_base.take() {
            let copied = ComponentSet::of(
                Component::ALL.into_iter().filter(|&c| !self.view.shares_component(&base, c)),
            );
            debug_assert!(
                self.batch_dirty.contains_all(copied),
                "batch copied {:?} but declared only {:?} dirty",
                copied,
                self.batch_dirty
            );
        }
        self.batched = false;
        self.batch_bumped = false;
        self.batch_dirty = ComponentSet::EMPTY;
    }

    /// The union of the current batch's writes' dirty sets (for
    /// [`CommitBatch::dirty_components`](crate::CommitBatch::dirty_components)).
    pub(crate) fn batch_dirty(&self) -> ComponentSet {
        self.batch_dirty
    }

    /// Mutable access to the ontology store (ontologies are loaded before annotating).
    pub fn ontology_mut(&mut self) -> &mut Ontology {
        self.view_mut(ComponentSet::of([Component::Ontology])).ontology_mut()
    }

    /// Register an ontology term node explicitly (so a query can reference terms that
    /// no annotation cites yet). Returns the node id.
    pub fn ensure_term_node(&mut self, concept: ConceptId) -> NodeId {
        self.view_mut(ComponentSet::of([Component::Agraph, Component::NodeMaps]))
            .ensure_term_node(concept)
    }

    /// Register a data object with raw metadata values (matching the type's default
    /// schema, minus the trailing `payload` blob which is supplied separately) and
    /// return its id.  `domain` is the coordinate domain / system for its substructures.
    pub fn register_object(
        &mut self,
        data_type: DataType,
        name: impl Into<String>,
        metadata: Vec<Value>,
        payload: Bytes,
        domain: impl Into<String>,
    ) -> Result<ObjectId> {
        self.view_mut(REGISTER_DIRTY).register_object(data_type, name, metadata, payload, domain)
    }

    /// Convenience: register a 1-D sequence object (DNA / RNA / protein) of a given
    /// length under a coordinate domain (e.g. its chromosome).
    pub fn register_sequence(
        &mut self,
        name: impl Into<String>,
        data_type: DataType,
        length: u64,
        domain: impl Into<String>,
    ) -> ObjectId {
        assert!(data_type.is_linear(), "register_sequence needs a linear type");
        let domain = domain.into();
        let metadata = match data_type {
            DataType::DnaSequence | DataType::RnaSequence => vec![
                Value::Int(length as i64),
                Value::text("unknown"),
                Value::Float(0.5),
                Value::text(domain.clone()),
            ],
            DataType::ProteinSequence => vec![
                Value::Int(length as i64),
                Value::text("unknown"),
                Value::text("unknown"),
                Value::text(domain.clone()),
            ],
            DataType::MultipleAlignment => {
                vec![Value::Int(length as i64), Value::Int(1), Value::text(domain.clone())]
            }
            _ => unreachable!("linear types handled above"),
        };
        self.register_object(data_type, name, metadata, Bytes::new(), domain)
            .expect("sequence registration")
    }

    /// Convenience: register a 2-D image object under a coordinate system.
    pub fn register_image(
        &mut self,
        name: impl Into<String>,
        width: u64,
        height: u64,
        modality: impl Into<String>,
        coordinate_system: impl Into<String>,
    ) -> ObjectId {
        let cs = coordinate_system.into();
        self.register_object(
            DataType::Image,
            name,
            vec![
                Value::Int(width as i64),
                Value::Int(height as i64),
                Value::text(modality.into()),
                Value::text(cs.clone()),
            ],
            Bytes::new(),
            cs,
        )
        .expect("image registration")
    }

    /// Begin building an annotation.
    pub fn annotate(&mut self) -> AnnotationBuilder<'_> {
        AnnotationBuilder::new(self)
    }

    /// Begin a batched write.  Every register / annotate staged through the returned
    /// [`CommitBatch`](crate::CommitBatch) shares **one** epoch bump, so a writer
    /// streaming many commits publishes one new version per batch — and a downstream
    /// epoch-keyed result cache (the query service's) invalidates once per batch
    /// instead of once per call.
    pub fn batch(&mut self) -> crate::CommitBatch<'_> {
        crate::CommitBatch::new(self)
    }

    /// Commit an annotation spec (called by the builder).
    pub(crate) fn commit_annotation(&mut self, spec: AnnotationSpec) -> Result<AnnotationId> {
        let dirty = annotation_dirty(&spec);
        self.view_mut(dirty).commit_annotation(spec)
    }
}

/// The dirty set of a [`register_object`](Graphitti::register_object): the catalog row,
/// the object registry entry, the object's a-graph node and node-map entries, and the
/// type index / statistics.  Notably **not** the content store, referents, annotations
/// or either marker index family — a registration creates an object with no referents
/// and an edge-less a-graph node, so it is invisible to every query until an
/// annotation links it (see the footprint rules in `graphitti_query::plan`).
pub(crate) const REGISTER_DIRTY: ComponentSet = ComponentSet::of_const(&[
    Component::Catalog,
    Component::Agraph,
    Component::Objects,
    Component::NodeMaps,
    Component::Indexes,
]);

/// The dirty set of one annotation commit, computed from its spec: the content store,
/// a-graph, node maps, annotation registry and inverted indexes always; the referent
/// registry, object→referents map and the marker's index family (interval *or*
/// spatial) only when the spec creates new referents.  This matches the `Arc::make_mut`
/// copy footprint pinned by `tests/cow_sharing.rs`, and is the *attempt's* footprint —
/// a failing commit may have partial effects, all within this set.
fn annotation_dirty(spec: &AnnotationSpec) -> ComponentSet {
    let mut dirty = ComponentSet::of([
        Component::Content,
        Component::Agraph,
        Component::NodeMaps,
        Component::Annotations,
        Component::Indexes,
    ]);
    for pending in &spec.referents {
        if let PendingReferent::New { marker, .. } = pending {
            dirty.insert(Component::Referents);
            dirty.insert(Component::ObjectReferents);
            match marker {
                Marker::Interval(_) => dirty.insert(Component::Intervals),
                Marker::Region(_) | Marker::Volume(_) => dirty.insert(Component::Spatial),
                Marker::BlockSet(_) => {}
            }
        }
    }
    dirty
}

// Snapshots are shipped across worker threads by the query service; every store in the
// view is plain owned data, so the whole read state must stay `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SystemView>();
    assert_send_sync::<Graphitti>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::RelationType;

    fn system_with_sequence() -> (Graphitti, ObjectId) {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("H5N1-seg4", DataType::DnaSequence, 1800, "chr-flu");
        (sys, seq)
    }

    #[test]
    fn register_and_lookup() {
        let (sys, seq) = system_with_sequence();
        assert_eq!(sys.object_count(), 1);
        let info = sys.object(seq).unwrap();
        assert_eq!(info.data_type, DataType::DnaSequence);
        assert_eq!(info.name, "H5N1-seg4");
        assert_eq!(info.domain, "chr-flu");
        assert!(sys.catalog().has_table("dna_sequence"));
        assert_eq!(sys.objects_of_type(DataType::DnaSequence).count(), 1);
        assert_eq!(sys.object_ids_of_type(DataType::DnaSequence), &[seq]);
    }

    #[test]
    fn annotate_with_interval_referent() {
        let (mut sys, seq) = system_with_sequence();
        let ann = sys
            .annotate()
            .title("cleavage site")
            .comment("polybasic site")
            .creator("condit")
            .mark(seq, Marker::interval(1020, 1062))
            .commit()
            .unwrap();
        assert_eq!(sys.annotation_count(), 1);
        assert_eq!(sys.referent_count(), 1);
        let a = sys.annotation(ann).unwrap();
        assert_eq!(a.title(), Some("cleavage site"));
        assert_eq!(a.referents.len(), 1);
        // the interval is indexed
        let hits = sys.overlapping_intervals("chr-flu", Interval::new(1030, 1031));
        assert_eq!(hits.len(), 1);
        assert_eq!(sys.index_structure_count(), (1, 0));
    }

    #[test]
    fn empty_annotation_rejected() {
        let mut sys = Graphitti::new();
        let err = sys.annotate().title("nothing").commit();
        assert_eq!(err, Err(CoreError::EmptyAnnotation));
    }

    #[test]
    fn marker_kind_mismatch_rejected() {
        let (mut sys, seq) = system_with_sequence();
        let err = sys.annotate().mark(seq, Marker::region(0.0, 0.0, 1.0, 1.0)).commit();
        assert!(matches!(err, Err(CoreError::MarkerKindMismatch { .. })));
    }

    #[test]
    fn unknown_object_rejected() {
        let mut sys = Graphitti::new();
        let err = sys.annotate().mark(ObjectId(99), Marker::interval(0, 10)).commit();
        assert_eq!(err, Err(CoreError::UnknownObject(ObjectId(99))));
    }

    #[test]
    fn shared_referent_relates_annotations() {
        let (mut sys, seq) = system_with_sequence();
        // Two annotations marking the *same* substructure become related.
        let marker = Marker::interval(100, 200);
        let a1 = sys.annotate().creator("x").mark(seq, marker.clone()).commit().unwrap();
        let a2 = sys.annotate().creator("y").mark(seq, marker).commit().unwrap();
        // They do not literally share a referent id (each mark creates its own), but
        // both referents overlap — relatedness is by the a-graph. We test direct sharing
        // by reusing a committed referent below. Here, check annotations_of_object sees
        // both.
        let on_obj = sys.annotations_of_object(seq);
        assert_eq!(on_obj, vec![a1, a2]);
    }

    #[test]
    fn related_annotations_through_same_referent_node() {
        // Build sharing explicitly: annotate, then inspect that a second annotation over
        // an overlapping region is discoverable as a related annotation on the object.
        let (mut sys, seq) = system_with_sequence();
        let a1 = sys.annotate().creator("x").mark(seq, Marker::interval(0, 50)).commit().unwrap();
        let _a2 = sys.annotate().creator("y").mark(seq, Marker::interval(25, 75)).commit().unwrap();
        // a1 has one referent; its related set via shared *referent* is empty (distinct
        // referents), but annotations_of_object relates them.
        assert!(sys.related_annotations(a1).is_empty());
        assert_eq!(sys.annotations_of_object(seq).len(), 2);
    }

    #[test]
    fn ontology_terms_wired_into_agraph() {
        let (mut sys, seq) = system_with_sequence();
        let cerebellum = sys.ontology_mut().add_concept("Cerebellum");
        let ann = sys
            .annotate()
            .comment("near a cerebellar landmark")
            .mark(seq, Marker::interval(0, 10))
            .cite_term(cerebellum)
            .commit()
            .unwrap();
        assert_eq!(sys.terms_of_annotation(ann), vec![cerebellum]);
        let tnode = sys.term_node(cerebellum).unwrap();
        assert_eq!(sys.entity_of(tnode), Some(Entity::Term(cerebellum)));
    }

    #[test]
    fn transitive_related_via_chain_of_shared_referents() {
        let (mut sys, seq) = system_with_sequence();
        // a1 -- r1 -- a2 -- r2 -- a3 : a chain where each adjacent pair shares a referent
        let a1 = sys.annotate().creator("x").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        let r1 = sys.annotation(a1).unwrap().referents[0];
        let a2 = sys
            .annotate()
            .creator("y")
            .mark_existing(r1)
            .mark(seq, Marker::interval(20, 30))
            .commit()
            .unwrap();
        let r2 = sys.annotation(a2).unwrap().referents[1];
        let a3 = sys.annotate().creator("z").mark_existing(r2).commit().unwrap();

        // a1 directly relates only to a2, but transitively to a2 and a3
        assert_eq!(sys.related_annotations(a1), vec![a2]);
        assert_eq!(sys.transitively_related_annotations(a1), vec![a2, a3]);
        assert_eq!(sys.transitively_related_annotations(a3), vec![a1, a2]);
    }

    #[test]
    fn transitive_related_unknown_annotation() {
        let sys = Graphitti::new();
        assert!(sys.transitively_related_annotations(AnnotationId(5)).is_empty());
    }

    #[test]
    fn connect_and_path_primitives() {
        let (mut sys, seq) = system_with_sequence();
        // two annotations sharing a referent are connected through it
        let a1 = sys.annotate().creator("x").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        let rid = sys.annotation(a1).unwrap().referents[0];
        let a2 = sys.annotate().creator("y").mark_existing(rid).commit().unwrap();
        let cs = sys.connect_annotations(&[a1, a2]).unwrap();
        assert!(cs.size() >= 3); // two contents + the shared referent
                                 // path between them goes content -> referent -> content (length 2)
        let p = sys.path_between_annotations(a1, a2).unwrap();
        assert_eq!(p.len(), 2);
        // connecting their objects: only one object here, so connect needs >= 2 and fails
        assert!(sys.connect_objects(&[seq]).is_none());
    }

    #[test]
    fn explore_annotations_of_referent() {
        let (mut sys, seq) = system_with_sequence();
        let a1 = sys.annotate().creator("x").mark(seq, Marker::interval(0, 50)).commit().unwrap();
        let rid = sys.annotation(a1).unwrap().referents[0];
        assert_eq!(sys.annotations_of_referent(rid), vec![a1]);
        assert_eq!(sys.referents_of_object(seq), vec![rid]);
    }

    #[test]
    fn index_grouping_shares_structures() {
        let mut sys = Graphitti::new();
        // two sequences on the same chromosome share one interval tree
        let s1 = sys.register_sequence("s1", DataType::DnaSequence, 100, "chr1");
        let s2 = sys.register_sequence("s2", DataType::DnaSequence, 100, "chr1");
        sys.annotate().creator("a").mark(s1, Marker::interval(0, 10)).commit().unwrap();
        sys.annotate().creator("a").mark(s2, Marker::interval(20, 30)).commit().unwrap();
        assert_eq!(sys.index_structure_count(), (1, 0)); // one domain "chr1"
    }

    #[test]
    fn integrity_holds_after_annotations() {
        let (mut sys, seq) = system_with_sequence();
        let img = sys.register_image("brain", 100, 100, "mri", "cs");
        let term = sys.ontology_mut().add_concept("T");
        sys.annotate()
            .comment("x")
            .mark(seq, Marker::interval(0, 10))
            .cite_term(term)
            .commit()
            .unwrap();
        sys.annotate().comment("y").mark(img, Marker::region(1.0, 1.0, 5.0, 5.0)).commit().unwrap();
        assert!(sys.verify_integrity().is_empty(), "{:?}", sys.verify_integrity());
    }

    #[test]
    fn image_region_indexed() {
        let mut sys = Graphitti::new();
        let img = sys.register_image("brain-1", 512, 512, "confocal", "mouse-25um");
        sys.annotate()
            .creator("martone")
            .mark(img, Marker::region(100.0, 100.0, 200.0, 200.0))
            .commit()
            .unwrap();
        let hits = sys.overlapping_regions("mouse-25um", Rect::rect2(150.0, 150.0, 160.0, 160.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(sys.index_structure_count(), (0, 1));
        assert!(sys.is_spatial_object(img));
    }

    #[test]
    fn ontology_instance_mapping_by_name() {
        let mut sys = Graphitti::new();
        let img = sys.register_image("brain-1", 10, 10, "mri", "cs");
        let c = sys.ontology_mut().add_concept("BrainImage");
        sys.ontology_mut().add_instance(c, "brain-1");
        let insts = sys.ontology_instances_for_object(img);
        assert_eq!(insts.len(), 1);
        let _ = RelationType::IsA; // keep the import meaningful across edits
    }
}
