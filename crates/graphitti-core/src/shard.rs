//! [`ShardedSystem`] — hash-partitioned scale-out over N independent [`Graphitti`]
//! shards, plus the [`ShardCut`] consistent-read handle the scatter-gather query path
//! executes against.
//!
//! The ROADMAP's first scale-out lever is **sharding**: partition the corpus so that
//! the write path, the copy-on-publish cost and the index structures are split across
//! independent systems, while the read path fans a query out to every shard and merges
//! the partial results.  The partitioning rule:
//!
//! * **Annotations, referents and annotation content are partitioned** by the hash of
//!   their *anchor object* (the first object an annotation marks, or the owning object
//!   of the first reused referent).  An annotation and all of its referents are always
//!   co-located on one shard, so every shard-local a-graph neighbourhood
//!   (content ↔ referent ↔ object) is complete.
//! * **Object metadata and the ontology are replicated** to every shard (classic
//!   catalog replication): any shard can validate markers against any object and
//!   expand ontology classes locally, and global object / concept ids are identical
//!   on every shard by construction — no translation on the hot path.
//! * **Annotation / referent ids are global**: the router assigns each committed
//!   annotation and each created referent the id the *equivalent unsharded system*
//!   would have assigned (registration order), and keeps dense two-way translation
//!   maps (global → (shard, local), local → global per shard).  Per-shard local id
//!   order equals global order (both are creation order), so a translated per-shard
//!   candidate set is already sorted — the scatter-gather merge is a k-way merge of
//!   disjoint sorted runs.
//!
//! Besides the shards, the router maintains the **global collation mirror**: a real
//! a-graph ([`MultiGraph`]) plus node ↔ entity maps over *global* ids, updated in
//! lock-step with every routed write, in exactly the node/edge creation order of
//! `system.rs` (per new referent: referent node then `part-of` edge; then the content
//! node; then one `annotates` edge per linked referent; then per cited term: the term
//! node on global first citation, then a `cites-term` edge).  Collation (page
//! building, graph constraints) runs once, over this mirror — which is why a sharded
//! query result is **byte-identical** to the same query on the equivalent unsharded
//! system, result-page node ids included.  The randomized cross-shard equivalence
//! battery (`graphitti-query/tests/sharded_equivalence.rs`) pins that contract
//! against the unsharded `ReferenceExecutor` oracle; any drift between the mirror
//! rules and `system.rs` fails it immediately.
//!
//! Writes are batched with [`ShardedBatch`] (from [`ShardedSystem::batch`]): one
//! *logical* batch opens a coalesced-epoch batch on **every** shard (each shard takes
//! its single bump lazily, only if the batch actually routes a write to it), so a
//! heterogeneous logical batch publishes at most one new version per shard.  The
//! batch exclusively borrows the system, so a [`ShardCut`] can never observe a
//! mid-batch state.
//!
//! Known limits (documented, enforced with clear errors, and listed in the ROADMAP):
//! an annotation whose *reused* referents live on two different shards is rejected
//! ([`CoreError::CrossShardReuse`], naming both shards), and the global mirror is one
//! copy-on-publish value — a
//! post-cut batch deep-copies it wholesale, the same cost class as the heavyweight
//! components an annotation batch already copies per shard.

use std::collections::HashMap;
use std::sync::Arc;

use agraph::{EdgeLabel, MultiGraph, NodeId, NodeKind};
use bytes::Bytes;
use ontology::{ConceptId, Ontology};
use relstore::Value;

use crate::annotation::{AnnotationId, AnnotationSpec, PendingReferent};
use crate::epoch::EpochVector;
use crate::error::CoreError;
use crate::marker::Marker;
use crate::referent::{Referent, ReferentId};
use crate::snapshot::Snapshot;
use crate::study::{AnnotationSnapshot, ObjectSnapshot, ReferentSnapshot, StudySnapshot};
use crate::system::{Entity, Graphitti, ObjectId};
use crate::types::DataType;
use crate::Result;

/// Where a partitioned entity lives: its shard index and its shard-local id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Home {
    /// The shard the entity is stored on.
    pub shard: usize,
    /// The entity's dense id *within* that shard.
    pub local: u64,
}

/// Global ↔ local id translation for the partitioned entity kinds.
///
/// Objects need no maps (replicated: global id == local id everywhere).  The maps are
/// dense on both sides, and both sides are in creation order, so translation preserves
/// sort order.
#[derive(Debug, Clone, Default)]
struct IdMaps {
    /// Global annotation id → home.
    annotations: Vec<Home>,
    /// Global referent id → home.
    referents: Vec<Home>,
    /// Per shard: local annotation id → global id.
    ann_l2g: Vec<Vec<u64>>,
    /// Per shard: local referent id → global id.
    ref_l2g: Vec<Vec<u64>>,
    /// Number of registered (replicated) objects.
    objects: u64,
    /// Per global object id: bitmask of the shards holding at least one of its
    /// referents (shard counts are capped at 64).  The scatter-gather executor prunes
    /// an id-pinned referent filter to exactly these shards.
    object_ref_shards: Vec<u64>,
}

/// The global node ↔ entity maps of the collation mirror (global ids throughout).
#[derive(Debug, Clone, Default)]
struct GlobalNodes {
    node_entity: HashMap<NodeId, Entity>,
    object_node: Vec<NodeId>,
    referent_node: Vec<NodeId>,
    annotation_node: Vec<NodeId>,
    term_node: HashMap<ConceptId, NodeId>,
}

/// A hash-partitioned Graphitti deployment: N independent shards (each a full
/// [`Graphitti`] with its own epoch vector and copy-on-write commit path), the id
/// router, and the global collation mirror.  See the [module docs](self) for the
/// partitioning rule and the byte-identity contract.
#[derive(Debug)]
pub struct ShardedSystem {
    shards: Vec<Graphitti>,
    /// The collation mirror's a-graph (global node / edge ids, mirroring the
    /// equivalent unsharded system exactly).
    graph: Arc<MultiGraph>,
    /// The mirror's node ↔ entity maps.
    nodes: Arc<GlobalNodes>,
    /// Global ↔ local id translation.
    ids: Arc<IdMaps>,
    /// Logical version: bumped once per [`ShardedBatch`] (lazily, on its first write
    /// attempt) or once per unbatched write attempt.  Names published cuts; per-shard
    /// epoch vectors carry the correctness story.
    version: u64,
    batching: bool,
    batch_bumped: bool,
}

impl ShardedSystem {
    /// Create an empty sharded system with `shards` partitions (1..=64).
    pub fn new(shards: usize) -> ShardedSystem {
        assert!((1..=64).contains(&shards), "shard count must be in 1..=64, got {shards}");
        ShardedSystem {
            shards: (0..shards).map(|_| Graphitti::new()).collect(),
            graph: Arc::default(),
            nodes: Arc::default(),
            ids: Arc::new(IdMaps {
                ann_l2g: vec![Vec::new(); shards],
                ref_l2g: vec![Vec::new(); shards],
                ..IdMaps::default()
            }),
            version: 0,
            batching: false,
            batch_bumped: false,
        }
    }

    /// Rebuild a sharded system from a serialisable [`StudySnapshot`], replaying in
    /// exactly the order [`Graphitti::from_study_snapshot`] uses (ontology, then all
    /// registrations, then annotations with lazy referent materialisation) — so the
    /// global ids *and mirror node ids* equal those of an unsharded replay of the same
    /// snapshot.  The whole replay is one [`ShardedBatch`]: each touched shard takes
    /// exactly one epoch bump.
    pub fn from_study_snapshot(snapshot: &StudySnapshot, shards: usize) -> Result<ShardedSystem> {
        let mut sys = ShardedSystem::new(shards);
        let mut batch = sys.batch();
        let onto = snapshot.ontology.clone();
        batch.ontology_edit(move |o| *o = onto.clone());

        let mut object_map: Vec<ObjectId> = Vec::with_capacity(snapshot.objects.len());
        for obj in &snapshot.objects {
            let id = batch.register_object(
                obj.data_type,
                obj.name.clone(),
                obj.metadata.clone(),
                Bytes::from(obj.payload.clone()),
                obj.domain.clone(),
            )?;
            object_map.push(id);
        }

        let mut referent_map: Vec<Option<ReferentId>> = vec![None; snapshot.referents.len()];
        for ann in &snapshot.annotations {
            let mut builder = batch.annotate().with_content(ann.content.clone());
            for &ref_idx in &ann.referents {
                match referent_map[ref_idx] {
                    Some(rid) => builder = builder.mark_existing(rid),
                    None => {
                        let snap = &snapshot.referents[ref_idx];
                        builder = builder.mark(object_map[snap.object], snap.marker.clone());
                    }
                }
            }
            for &term in &ann.terms {
                builder = builder.cite_term(term);
            }
            let aid = builder.commit()?;

            // The committed referent list is in mark order, matching `ann.referents`.
            let committed = batch.annotation_referents(aid).unwrap_or_default();
            for (pos, &ref_idx) in ann.referents.iter().enumerate() {
                if referent_map[ref_idx].is_none() {
                    if let Some(&new_rid) = committed.get(pos) {
                        referent_map[ref_idx] = Some(new_rid);
                    }
                }
            }
        }
        batch.commit();
        Ok(sys)
    }

    // --- topology ---

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard (its full [`SystemView`] API, via deref).
    pub fn shard(&self, index: usize) -> &Graphitti {
        &self.shards[index]
    }

    /// The shard a (hypothetical or registered) object's annotations are routed to:
    /// a deterministic hash of the global object id.
    pub fn shard_of_object(&self, object: ObjectId) -> usize {
        shard_of(object, self.shards.len())
    }

    /// The current logical version (bumped once per batch / unbatched write attempt).
    pub fn version(&self) -> u64 {
        self.version
    }

    // --- global counts and lookups ---

    /// Number of registered (replicated) objects.
    pub fn object_count(&self) -> usize {
        self.ids.objects as usize
    }

    /// Number of committed annotations across all shards.
    pub fn annotation_count(&self) -> usize {
        self.ids.annotations.len()
    }

    /// Number of referents across all shards.
    pub fn referent_count(&self) -> usize {
        self.ids.referents.len()
    }

    /// The home (shard + local id) of a global annotation id.
    pub fn annotation_home(&self, id: AnnotationId) -> Option<Home> {
        self.ids.annotations.get(id.0 as usize).copied()
    }

    /// The home (shard + local id) of a global referent id.
    pub fn referent_home(&self, id: ReferentId) -> Option<Home> {
        self.ids.referents.get(id.0 as usize).copied()
    }

    /// The global referent ids an annotation links, in link order.
    pub fn annotation_referents(&self, id: AnnotationId) -> Option<Vec<ReferentId>> {
        let home = self.annotation_home(id)?;
        let ann = self.shards[home.shard].annotation(AnnotationId(home.local))?;
        let l2g = &self.ids.ref_l2g[home.shard];
        Some(ann.referents.iter().map(|r| ReferentId(l2g[r.0 as usize])).collect())
    }

    /// The (replicated) ontology — identical on every shard; shard 0's copy.
    pub fn ontology(&self) -> &Ontology {
        self.shards[0].ontology()
    }

    /// The global collation mirror's a-graph.
    pub fn agraph(&self) -> &MultiGraph {
        &self.graph
    }

    // --- reads used by tests: cross-shard integrity ---

    /// Check internal consistency: every shard's own integrity, the id maps'
    /// bijectivity, the replicated stores' agreement, and the mirror's node maps.
    pub fn verify_integrity(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            for p in shard.verify_integrity() {
                problems.push(format!("shard {i}: {p}"));
            }
            if shard.object_count() != self.object_count() {
                problems.push(format!(
                    "shard {i}: replicated object count {} != {}",
                    shard.object_count(),
                    self.object_count()
                ));
            }
            if shard.ontology() != self.shards[0].ontology() {
                problems.push(format!("shard {i}: replicated ontology diverged"));
            }
            if shard.annotation_count() != self.ids.ann_l2g[i].len() {
                problems.push(format!("shard {i}: annotation l2g map out of sync"));
            }
            if shard.referent_count() != self.ids.ref_l2g[i].len() {
                problems.push(format!("shard {i}: referent l2g map out of sync"));
            }
        }
        for (g, home) in self.ids.annotations.iter().enumerate() {
            if self.ids.ann_l2g[home.shard].get(home.local as usize) != Some(&(g as u64)) {
                problems.push(format!("annotation {g}: g2l/l2g mismatch at {home:?}"));
            }
        }
        for (g, home) in self.ids.referents.iter().enumerate() {
            if self.ids.ref_l2g[home.shard].get(home.local as usize) != Some(&(g as u64)) {
                problems.push(format!("referent {g}: g2l/l2g mismatch at {home:?}"));
            }
        }
        if self.nodes.object_node.len() != self.object_count() {
            problems.push("mirror object-node map out of sync".into());
        }
        if self.nodes.referent_node.len() != self.referent_count() {
            problems.push("mirror referent-node map out of sync".into());
        }
        problems
    }

    // --- the consistent cut ---

    /// Capture a [`ShardCut`]: one snapshot per shard plus the mirror, all taken
    /// atomically (the exclusive borrow means no write can interleave), each an O(1)
    /// `Arc` clone.  Hand the cut to the sharded query service's `publish`, which
    /// installs it under its snapshot write lock — readers then observe either the
    /// whole previous cut or the whole new one, never a torn mix.
    pub fn capture_cut(&self) -> ShardCut {
        ShardCut {
            shards: Arc::from(
                self.shards.iter().map(Graphitti::snapshot).collect::<Vec<Snapshot>>(),
            ),
            graph: Arc::clone(&self.graph),
            nodes: Arc::clone(&self.nodes),
            ids: Arc::clone(&self.ids),
            version: self.version,
        }
    }

    /// Export the global state as a replayable [`StudySnapshot`] — the same flat
    /// global-id-ordered form [`Graphitti::study_snapshot`] produces, so the export
    /// replays into an unsharded system or any shard count with identical global
    /// ids.  This is the durability layer's checkpoint body
    /// ([`crate::wal::Checkpoint`]).
    pub fn study_snapshot(&self) -> StudySnapshot {
        // The catalog and ontology are replicated: shard 0 sees every object.
        let reference = self.shard(0);
        let objects = reference
            .objects()
            .iter()
            .map(|info| {
                let (metadata, payload) = reference
                    .object_metadata(info.id)
                    .unwrap_or_else(|| (Vec::new(), Bytes::new()));
                ObjectSnapshot {
                    data_type: info.data_type,
                    name: info.name.clone(),
                    domain: info.domain.clone(),
                    metadata,
                    payload: payload.to_vec(),
                }
            })
            .collect();

        // Global referent/annotation ids are dense and in commit order, so walking
        // them in order reproduces the oracle's snapshot layout exactly.
        let referents = (0..self.referent_count() as u64)
            .map(|grid| {
                let home = self.referent_home(ReferentId(grid)).expect("dense global id");
                let r = self
                    .shard(home.shard)
                    .referent(ReferentId(home.local))
                    .expect("referent on its home shard");
                ReferentSnapshot { object: r.object.0 as usize, marker: r.marker.clone() }
            })
            .collect();

        let annotations = (0..self.annotation_count() as u64)
            .map(|gaid| {
                let home = self.annotation_home(AnnotationId(gaid)).expect("dense global id");
                let a = self
                    .shard(home.shard)
                    .annotation(AnnotationId(home.local))
                    .expect("annotation on its home shard");
                let referents = self
                    .annotation_referents(AnnotationId(gaid))
                    .expect("link list for a committed annotation")
                    .iter()
                    .map(|r| r.0 as usize)
                    .collect();
                AnnotationSnapshot { content: a.content.clone(), referents, terms: a.terms.clone() }
            })
            .collect();

        StudySnapshot { objects, referents, annotations, ontology: self.ontology().clone() }
    }

    // --- writes ---

    /// Bump the logical version for a write attempt (once per batch when batching).
    fn touch_version(&mut self) {
        if !self.batching {
            self.version += 1;
        } else if !self.batch_bumped {
            self.version += 1;
            self.batch_bumped = true;
        }
    }

    /// Register a data object on **every** shard (object metadata is replicated), and
    /// mirror its a-graph node.  The returned id is global *and* local everywhere.
    pub fn register_object(
        &mut self,
        data_type: DataType,
        name: impl Into<String>,
        metadata: Vec<Value>,
        payload: Bytes,
        domain: impl Into<String>,
    ) -> Result<ObjectId> {
        self.touch_version();
        let name = name.into();
        let domain = domain.into();
        let mut result: Option<Result<ObjectId>> = None;
        for shard in &mut self.shards {
            let r = shard.register_object(
                data_type,
                name.clone(),
                metadata.clone(),
                payload.clone(),
                domain.clone(),
            );
            if let Some(prev) = &result {
                debug_assert_eq!(prev, &r, "replicated registration diverged across shards");
            }
            result = Some(r);
        }
        let id = result.expect("at least one shard")?;
        debug_assert_eq!(id.0, self.ids.objects, "replicated object ids must stay global");
        let node =
            Arc::make_mut(&mut self.graph).add_node(NodeKind::Object, format!("obj:{}", id.0));
        let nodes = Arc::make_mut(&mut self.nodes);
        nodes.node_entity.insert(node, Entity::Object(id));
        nodes.object_node.push(node);
        let ids = Arc::make_mut(&mut self.ids);
        ids.objects += 1;
        ids.object_ref_shards.push(0);
        Ok(id)
    }

    /// Register a 1-D sequence object (see [`Graphitti::register_sequence`]).
    pub fn register_sequence(
        &mut self,
        name: impl Into<String>,
        data_type: DataType,
        length: u64,
        domain: impl Into<String>,
    ) -> ObjectId {
        assert!(data_type.is_linear(), "register_sequence needs a linear type");
        let domain = domain.into();
        let metadata = sequence_metadata(data_type, length, &domain);
        self.register_object(data_type, name, metadata, Bytes::new(), domain)
            .expect("sequence registration")
    }

    /// Register a 2-D image object (see [`Graphitti::register_image`]).
    pub fn register_image(
        &mut self,
        name: impl Into<String>,
        width: u64,
        height: u64,
        modality: impl Into<String>,
        coordinate_system: impl Into<String>,
    ) -> ObjectId {
        let cs = coordinate_system.into();
        self.register_object(
            DataType::Image,
            name,
            vec![
                Value::Int(width as i64),
                Value::Int(height as i64),
                Value::text(modality.into()),
                Value::text(cs.clone()),
            ],
            Bytes::new(),
            cs,
        )
        .expect("image registration")
    }

    /// Apply an edit to the (replicated) ontology on **every** shard.  The closure
    /// must be deterministic — it runs once per shard and the replicas must stay
    /// identical (freshly assigned [`ConceptId`]s then agree globally, because every
    /// shard applies the same edit sequence).
    pub fn ontology_edit(&mut self, edit: impl Fn(&mut Ontology)) {
        self.touch_version();
        for shard in &mut self.shards {
            edit(shard.ontology_mut());
        }
    }

    /// Begin building an annotation (global ids in, global ids out).
    pub fn annotate(&mut self) -> ShardedAnnotationBuilder<'_> {
        ShardedAnnotationBuilder { system: self, spec: AnnotationSpec::default() }
    }

    /// Begin a logical write batch: one coalesced epoch bump per *touched* shard, one
    /// logical version bump, and (via the exclusive borrow) no cut capture until the
    /// batch ends.
    pub fn batch(&mut self) -> ShardedBatch<'_> {
        for shard in &mut self.shards {
            shard.begin_batch();
        }
        self.batching = true;
        self.batch_bumped = false;
        ShardedBatch { system: self, staged: 0 }
    }

    fn end_batch(&mut self) {
        for shard in &mut self.shards {
            shard.end_batch();
        }
        self.batching = false;
        self.batch_bumped = false;
    }

    /// Route and commit one annotation spec carrying **global** ids.
    ///
    /// Routing: the home shard of the first *reused* referent when there is one, else
    /// the hash shard of the first newly marked object, else (a terms-only
    /// annotation) `next_global_annotation_id % shards`.  Every reused referent must
    /// be co-located on the route shard — a cross-shard reuse is rejected with
    /// [`CoreError::CrossShardReuse`] before anything is written (the documented sharding
    /// limit).  An *unknown* reused referent id is forwarded to the shard as an
    /// unknown local id, so the failure point (and any partial effects of earlier
    /// marks) matches the unsharded system exactly.
    fn commit_annotation_global(&mut self, spec: AnnotationSpec) -> Result<AnnotationId> {
        self.touch_version();
        let shard_idx = self.route_annotation(&spec)?;

        // Translate the spec to the route shard's local ids.  Objects are replicated
        // (global == local); only reused referent ids need translation.
        let local_spec = AnnotationSpec {
            content: spec.content,
            terms: spec.terms,
            referents: spec
                .referents
                .into_iter()
                .map(|p| match p {
                    new @ PendingReferent::New { .. } => new,
                    PendingReferent::Existing(grid) => {
                        let local = self
                            .ids
                            .referents
                            .get(grid.0 as usize)
                            .map(|h| h.local)
                            // Unknown global id: forward an id unknown to the shard
                            // too, preserving the unsharded failure behaviour.
                            .unwrap_or(u64::MAX);
                        PendingReferent::Existing(ReferentId(local))
                    }
                })
                .collect(),
        };

        let refs_before = self.shards[shard_idx].referent_count() as u64;
        let result = self.shards[shard_idx].commit_annotation(local_spec);
        self.mirror_new_referents(shard_idx, refs_before);

        let local_aid = result?;
        let ids = Arc::make_mut(&mut self.ids);
        let gaid = ids.annotations.len() as u64;
        debug_assert_eq!(local_aid.0, ids.ann_l2g[shard_idx].len() as u64);
        ids.annotations.push(Home { shard: shard_idx, local: local_aid.0 });
        ids.ann_l2g[shard_idx].push(gaid);

        // Mirror: content node, annotates edges (link order), then term nodes (lazily,
        // on global first citation) and cites-term edges — the `system.rs` order.
        let ann = self.shards[shard_idx]
            .annotation(local_aid)
            .expect("committed annotation present on its shard");
        let linked: Vec<u64> =
            ann.referents.iter().map(|r| self.ids.ref_l2g[shard_idx][r.0 as usize]).collect();
        let terms = ann.terms.clone();
        let graph = Arc::make_mut(&mut self.graph);
        let nodes = Arc::make_mut(&mut self.nodes);
        let cnode = graph.add_node(NodeKind::Content, format!("ann:{gaid}"));
        nodes.node_entity.insert(cnode, Entity::Annotation(AnnotationId(gaid)));
        debug_assert_eq!(nodes.annotation_node.len() as u64, gaid);
        nodes.annotation_node.push(cnode);
        for grid in linked {
            let rnode = nodes.referent_node[grid as usize];
            graph
                .add_edge(cnode, rnode, EdgeLabel::annotates())
                .map_err(|e| CoreError::Graph(e.to_string()))?;
        }
        for term in terms {
            let tnode = match nodes.term_node.get(&term) {
                Some(&n) => n,
                None => {
                    let n = graph.add_node(NodeKind::OntologyTerm, format!("onto:{}", term.0));
                    nodes.node_entity.insert(n, Entity::Term(term));
                    nodes.term_node.insert(term, n);
                    n
                }
            };
            graph
                .add_edge(cnode, tnode, EdgeLabel::cites_term())
                .map_err(|e| CoreError::Graph(e.to_string()))?;
        }
        Ok(AnnotationId(gaid))
    }

    /// Decide an annotation spec's route shard and enforce reuse co-location.
    fn route_annotation(&self, spec: &AnnotationSpec) -> Result<usize> {
        let mut route: Option<usize> = None;
        for pending in &spec.referents {
            if let PendingReferent::Existing(grid) = pending {
                if let Some(home) = self.ids.referents.get(grid.0 as usize) {
                    match route {
                        None => route = Some(home.shard),
                        Some(r) if r != home.shard => {
                            return Err(CoreError::CrossShardReuse { home: r, reused: home.shard });
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        if let Some(r) = route {
            return Ok(r);
        }
        for pending in &spec.referents {
            if let PendingReferent::New { object, .. } = pending {
                return Ok(self.shard_of_object(*object));
            }
            // An unknown reused referent with no route: fall through to the default
            // shard, whose local lookup will fail exactly like the unsharded system.
        }
        Ok(self.ids.annotations.len() % self.shards.len())
    }

    /// Record (ledger + mirror) every referent the route shard created since
    /// `refs_before` — including the partial effects of a failed commit, which the
    /// unsharded system keeps too.  Per referent, in creation order: the global id,
    /// the mirror node, then its `part-of` edge — matching `add_referent`.
    fn mirror_new_referents(&mut self, shard_idx: usize, refs_before: u64) {
        let refs_after = self.shards[shard_idx].referent_count() as u64;
        for local in refs_before..refs_after {
            let (object, marker, ref_domain) = {
                let r = self.shards[shard_idx]
                    .referent(ReferentId(local))
                    .expect("created referent present");
                (r.object, r.marker.clone(), r.domain.clone())
            };
            let ids = Arc::make_mut(&mut self.ids);
            let grid = ids.referents.len() as u64;
            ids.referents.push(Home { shard: shard_idx, local });
            ids.ref_l2g[shard_idx].push(grid);
            ids.object_ref_shards[object.0 as usize] |= 1 << shard_idx;
            let graph = Arc::make_mut(&mut self.graph);
            let nodes = Arc::make_mut(&mut self.nodes);
            let key = Referent::new(ReferentId(grid), object, marker, ref_domain).node_key();
            let rnode = graph.add_node(NodeKind::Referent, key);
            nodes.node_entity.insert(rnode, Entity::Referent(ReferentId(grid)));
            nodes.referent_node.push(rnode);
            let onode = nodes.object_node[object.0 as usize];
            graph
                .add_edge(rnode, onode, EdgeLabel::part_of())
                .expect("mirror part-of edge between live nodes");
        }
    }
}

/// Derive the metadata row [`Graphitti::register_sequence`] builds, so the sharded
/// convenience wrapper registers byte-identical rows on every shard.
fn sequence_metadata(data_type: DataType, length: u64, domain: &str) -> Vec<Value> {
    match data_type {
        DataType::DnaSequence | DataType::RnaSequence => vec![
            Value::Int(length as i64),
            Value::text("unknown"),
            Value::Float(0.5),
            Value::text(domain),
        ],
        DataType::ProteinSequence => vec![
            Value::Int(length as i64),
            Value::text("unknown"),
            Value::text("unknown"),
            Value::text(domain),
        ],
        DataType::MultipleAlignment => {
            vec![Value::Int(length as i64), Value::Int(1), Value::text(domain)]
        }
        _ => unreachable!("register_sequence only takes linear types"),
    }
}

/// The deterministic object → shard hash (splitmix64 finalizer over the global id).
/// A pure function of `(object, shards)`, so routing never depends on arrival order.
pub fn shard_of(object: ObjectId, shards: usize) -> usize {
    let mut z = object.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// A fluent builder for one sharded annotation, mirroring
/// [`AnnotationBuilder`](crate::AnnotationBuilder) but speaking **global** ids.
pub struct ShardedAnnotationBuilder<'a> {
    system: &'a mut ShardedSystem,
    spec: AnnotationSpec,
}

impl ShardedAnnotationBuilder<'_> {
    /// Set the annotation title (`dc:title`).
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).title(title);
        self
    }

    /// Set the annotation comment body (`dc:description`).
    pub fn comment(mut self, comment: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).description(comment);
        self
    }

    /// Set the annotation creator (`dc:creator`).
    pub fn creator(mut self, creator: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).creator(creator);
        self
    }

    /// Add a `dc:subject` keyword.
    pub fn subject(mut self, subject: impl Into<String>) -> Self {
        self.spec.content = std::mem::take(&mut self.spec.content).subject(subject);
        self
    }

    /// Replace the content document wholesale (used by study replay).
    pub fn with_content(mut self, content: xmlstore::DublinCore) -> Self {
        self.spec.content = content;
        self
    }

    /// Mark a substructure of a (global) object as a referent.
    pub fn mark(mut self, object: ObjectId, marker: Marker) -> Self {
        self.spec.referents.push(PendingReferent::New { object, marker });
        self
    }

    /// Attach to an existing referent by its **global** id.  All reused referents of
    /// one annotation must be co-located on one shard.
    pub fn mark_existing(mut self, referent: ReferentId) -> Self {
        self.spec.referents.push(PendingReferent::Existing(referent));
        self
    }

    /// Add an ontology-term reference.
    pub fn cite_term(mut self, concept: ConceptId) -> Self {
        self.spec.terms.push(concept);
        self
    }

    /// Route and commit the annotation, returning its **global** id.
    pub fn commit(self) -> Result<AnnotationId> {
        let ShardedAnnotationBuilder { system, spec } = self;
        system.commit_annotation_global(spec)
    }
}

/// A logical write batch over a [`ShardedSystem`]: splits into per-shard coalesced
/// sub-batches (each touched shard takes exactly one epoch bump), under one logical
/// version bump.  Ending the batch (commit or drop) returns every shard to
/// per-mutation versioning; the exclusive borrow makes mid-batch cut capture
/// impossible.
#[derive(Debug)]
pub struct ShardedBatch<'a> {
    system: &'a mut ShardedSystem,
    staged: u64,
}

impl ShardedBatch<'_> {
    /// Register a data object on every shard (see [`ShardedSystem::register_object`]).
    pub fn register_object(
        &mut self,
        data_type: DataType,
        name: impl Into<String>,
        metadata: Vec<Value>,
        payload: Bytes,
        domain: impl Into<String>,
    ) -> Result<ObjectId> {
        self.staged += 1;
        self.system.register_object(data_type, name, metadata, payload, domain)
    }

    /// Register a 1-D sequence object.
    pub fn register_sequence(
        &mut self,
        name: impl Into<String>,
        data_type: DataType,
        length: u64,
        domain: impl Into<String>,
    ) -> ObjectId {
        self.staged += 1;
        self.system.register_sequence(name, data_type, length, domain)
    }

    /// Register a 2-D image object.
    pub fn register_image(
        &mut self,
        name: impl Into<String>,
        width: u64,
        height: u64,
        modality: impl Into<String>,
        coordinate_system: impl Into<String>,
    ) -> ObjectId {
        self.staged += 1;
        self.system.register_image(name, width, height, modality, coordinate_system)
    }

    /// Apply a deterministic edit to the replicated ontology on every shard.
    pub fn ontology_edit(&mut self, edit: impl Fn(&mut Ontology)) {
        self.staged += 1;
        self.system.ontology_edit(edit);
    }

    /// Begin building an annotation inside the batch.
    pub fn annotate(&mut self) -> ShardedAnnotationBuilder<'_> {
        self.staged += 1;
        self.system.annotate()
    }

    /// The global referent ids an annotation links (readable mid-batch).
    pub fn annotation_referents(&self, id: AnnotationId) -> Option<Vec<ReferentId>> {
        self.system.annotation_referents(id)
    }

    /// Number of writes staged so far (staging calls, not successful commits).
    pub fn staged(&self) -> u64 {
        self.staged
    }

    /// Finish the batch, returning the number of staged writes.
    pub fn commit(mut self) -> u64 {
        std::mem::take(&mut self.staged)
        // Drop runs next and ends batch mode on every shard.
    }
}

impl Drop for ShardedBatch<'_> {
    fn drop(&mut self) {
        self.system.end_batch();
    }
}

/// A consistent cross-shard read handle: one [`Snapshot`] per shard plus the global
/// collation mirror, captured atomically by [`ShardedSystem::capture_cut`].  Clone is
/// a handful of `Arc` bumps — hand one to every scatter-gather worker.
///
/// A reader holding a cut observes one frozen state of *every* shard: no shard can
/// appear "ahead" of the cut, because the cut's snapshots are immutable for their
/// whole life (per-shard copy-on-publish).  Per-shard epoch vectors carry the
/// footprint-agreement validity test a cut-level result cache uses
/// ([`ShardCut::agrees_on`]).
#[derive(Debug, Clone)]
pub struct ShardCut {
    shards: Arc<[Snapshot]>,
    graph: Arc<MultiGraph>,
    nodes: Arc<GlobalNodes>,
    ids: Arc<IdMaps>,
    version: u64,
}

impl ShardCut {
    /// Number of shards in the cut.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The snapshot of one shard.
    pub fn shard(&self, index: usize) -> &Snapshot {
        &self.shards[index]
    }

    /// All per-shard snapshots, in shard order.
    pub fn shards(&self) -> &[Snapshot] {
        &self.shards
    }

    /// The logical version this cut was captured at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether two cuts are views of the same published state (same version and the
    /// identical snapshot on every shard).
    pub fn same_cut(&self, other: &ShardCut) -> bool {
        self.version == other.version
            && self.shards.len() == other.shards.len()
            && self.shards.iter().zip(other.shards.iter()).all(|(a, b)| a.same_epoch(b))
    }

    /// Whether the two cuts observe identical query-visible state through every
    /// component of `footprint` **on every shard** — the cut-level result-cache
    /// validity test (each shard's lineage and footprint epochs must agree).
    pub fn agrees_on(&self, other: &ShardCut, footprint: crate::ComponentSet) -> bool {
        self.shards.len() == other.shards.len()
            && self.shards.iter().zip(other.shards.iter()).all(|(a, b)| a.agrees_on(b, footprint))
    }

    /// Per-shard lineage ids and epoch vectors — the lightweight version tag a
    /// cut-level cache entry stores instead of pinning whole snapshots alive.
    pub fn version_vector(&self) -> Vec<(u64, EpochVector)> {
        self.shards.iter().map(|s| (s.system_id(), s.component_epochs())).collect()
    }

    // --- global reads (collation + translation) ---

    /// Number of committed annotations across the cut.
    pub fn annotation_count(&self) -> usize {
        self.ids.annotations.len()
    }

    /// Number of referents across the cut.
    pub fn referent_count(&self) -> usize {
        self.ids.referents.len()
    }

    /// Number of registered objects.
    pub fn object_count(&self) -> usize {
        self.ids.objects as usize
    }

    /// The global collation mirror's a-graph.
    pub fn agraph(&self) -> &MultiGraph {
        &self.graph
    }

    /// Translate a shard's local annotation id to its global id.
    pub fn annotation_global(&self, shard: usize, local: AnnotationId) -> AnnotationId {
        AnnotationId(self.ids.ann_l2g[shard][local.0 as usize])
    }

    /// Translate a shard's local referent id to its global id.
    pub fn referent_global(&self, shard: usize, local: ReferentId) -> ReferentId {
        ReferentId(self.ids.ref_l2g[shard][local.0 as usize])
    }

    /// The bitmask of shards holding referents of an object (pruning an id-pinned
    /// referent filter).  Unknown objects hold none.
    pub fn object_referent_shards(&self, object: ObjectId) -> u64 {
        self.ids.object_ref_shards.get(object.0 as usize).copied().unwrap_or(0)
    }

    /// The global referent ids an annotation links, in link order.
    pub fn annotation_referents(&self, id: AnnotationId) -> Option<Vec<ReferentId>> {
        let home = self.ids.annotations.get(id.0 as usize)?;
        let ann = self.shards[home.shard].annotation(AnnotationId(home.local))?;
        let l2g = &self.ids.ref_l2g[home.shard];
        Some(ann.referents.iter().map(|r| ReferentId(l2g[r.0 as usize])).collect())
    }

    /// The terms an annotation cites (concept ids are global already).
    pub fn annotation_terms(&self, id: AnnotationId) -> Option<Vec<ConceptId>> {
        let home = self.ids.annotations.get(id.0 as usize)?;
        self.shards[home.shard].annotation(AnnotationId(home.local)).map(|a| a.terms.clone())
    }

    /// The (global) object a referent marks.
    pub fn referent_object(&self, id: ReferentId) -> Option<ObjectId> {
        let home = self.ids.referents.get(id.0 as usize)?;
        self.shards[home.shard].referent(ReferentId(home.local)).map(|r| r.object)
    }

    /// The marker of a referent.
    pub fn referent_marker(&self, id: ReferentId) -> Option<Marker> {
        let home = self.ids.referents.get(id.0 as usize)?;
        self.shards[home.shard].referent(ReferentId(home.local)).map(|r| r.marker.clone())
    }

    /// Every (global) referent of an object, across all shards, in ascending global
    /// id order — which is creation order, matching the unsharded
    /// `referents_of_object`.
    pub fn referents_of_object(&self, object: ObjectId) -> Vec<ReferentId> {
        let mask = self.object_referent_shards(object);
        let mut out: Vec<ReferentId> = Vec::new();
        for shard in 0..self.shards.len() {
            if mask & (1 << shard) == 0 {
                continue;
            }
            let l2g = &self.ids.ref_l2g[shard];
            out.extend(
                self.shards[shard]
                    .referents_of_object(object)
                    .iter()
                    .map(|r| ReferentId(l2g[r.0 as usize])),
            );
        }
        out.sort_unstable();
        out
    }

    /// The (global) annotations linking a referent, ascending — a referent and all
    /// its annotations are co-located, so this is one shard lookup plus translation.
    pub fn annotations_of_referent(&self, id: ReferentId) -> Vec<AnnotationId> {
        let Some(home) = self.ids.referents.get(id.0 as usize) else { return Vec::new() };
        let l2g = &self.ids.ann_l2g[home.shard];
        self.shards[home.shard]
            .annotations_of_referent(ReferentId(home.local))
            .into_iter()
            .map(|a| AnnotationId(l2g[a.0 as usize]))
            .collect()
    }

    /// The mirror node of an object.
    pub fn object_node(&self, id: ObjectId) -> Option<NodeId> {
        self.nodes.object_node.get(id.0 as usize).copied()
    }

    /// The mirror node of a referent.
    pub fn referent_node(&self, id: ReferentId) -> Option<NodeId> {
        self.nodes.referent_node.get(id.0 as usize).copied()
    }

    /// The mirror node of an annotation.
    pub fn annotation_node(&self, id: AnnotationId) -> Option<NodeId> {
        self.nodes.annotation_node.get(id.0 as usize).copied()
    }

    /// The mirror node of an ontology term, if cited.
    pub fn term_node(&self, concept: ConceptId) -> Option<NodeId> {
        self.nodes.term_node.get(&concept).copied()
    }

    /// The (global) entity a mirror node refers to.
    pub fn entity_of(&self, node: NodeId) -> Option<Entity> {
        self.nodes.node_entity.get(&node).copied()
    }
}

// Cuts cross thread boundaries in the scatter-gather executor.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardCut>();
    assert_send_sync::<ShardedSystem>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Component;

    /// Interleaved registers + annotations applied identically to an unsharded oracle
    /// and a sharded system; returns both.
    fn parallel_build(shards: usize) -> (Graphitti, ShardedSystem) {
        let mut oracle = Graphitti::new();
        let mut sharded = ShardedSystem::new(shards);
        let term = oracle.ontology_mut().add_concept("Motif");
        sharded.ontology_edit(|o| {
            o.add_concept("Motif");
        });
        for i in 0..6u64 {
            let name = format!("seq-{i}");
            let a = oracle.register_sequence(name.clone(), DataType::DnaSequence, 2_000, "chr1");
            let b = sharded.register_sequence(name, DataType::DnaSequence, 2_000, "chr1");
            assert_eq!(a, b, "replicated registration must assign the global id");
        }
        for i in 0..12u64 {
            let obj = ObjectId(i % 6);
            let marker = Marker::interval(i * 50, i * 50 + 25);
            let ga = oracle
                .annotate()
                .comment(format!("note {i}"))
                .mark(obj, marker.clone())
                .cite_term(term)
                .commit()
                .unwrap();
            let gb = sharded
                .annotate()
                .comment(format!("note {i}"))
                .mark(obj, marker)
                .cite_term(term)
                .commit()
                .unwrap();
            assert_eq!(ga, gb, "router must assign the oracle's annotation id");
        }
        (oracle, sharded)
    }

    #[test]
    fn mirror_matches_oracle_graph_exactly() {
        for shards in [1, 2, 3, 5] {
            let (oracle, sharded) = parallel_build(shards);
            assert!(sharded.verify_integrity().is_empty(), "{:?}", sharded.verify_integrity());
            assert_eq!(sharded.agraph().node_count(), oracle.agraph().node_count());
            assert_eq!(sharded.agraph().edge_count(), oracle.agraph().edge_count());
            // Same adjacency, node by node, edge record by edge record.
            for node in oracle.agraph().nodes() {
                assert_eq!(
                    sharded.agraph().out_edges(node),
                    oracle.agraph().out_edges(node),
                    "out-edges diverge at {node:?} with {shards} shards"
                );
                for &e in oracle.agraph().out_edges(node) {
                    let a = oracle.agraph().edge(e).unwrap();
                    let b = sharded.agraph().edge(e).unwrap();
                    assert_eq!((a.from, a.to), (b.from, b.to));
                }
            }
            // Entity decoding matches too.
            let cut = sharded.capture_cut();
            for node in oracle.agraph().nodes() {
                assert_eq!(cut.entity_of(node), oracle.entity_of(node));
            }
        }
    }

    #[test]
    fn ids_partition_and_translate_round_trip() {
        let (_oracle, sharded) = parallel_build(3);
        let cut = sharded.capture_cut();
        assert_eq!(cut.annotation_count(), 12);
        for g in 0..cut.annotation_count() as u64 {
            let home = sharded.annotation_home(AnnotationId(g)).unwrap();
            assert_eq!(
                cut.annotation_global(home.shard, AnnotationId(home.local)),
                AnnotationId(g)
            );
        }
        for g in 0..cut.referent_count() as u64 {
            let home = sharded.referent_home(ReferentId(g)).unwrap();
            assert_eq!(cut.referent_global(home.shard, ReferentId(home.local)), ReferentId(g));
        }
        // Every annotation landed on its anchor object's hash shard.
        for g in 0..cut.annotation_count() as u64 {
            let refs = sharded.annotation_referents(AnnotationId(g)).unwrap();
            let obj = cut.referent_object(refs[0]).unwrap();
            assert_eq!(
                sharded.annotation_home(AnnotationId(g)).unwrap().shard,
                sharded.shard_of_object(obj)
            );
        }
    }

    #[test]
    fn referents_of_object_merges_in_global_order() {
        let (oracle, sharded) = parallel_build(4);
        let cut = sharded.capture_cut();
        for o in 0..oracle.object_count() as u64 {
            assert_eq!(
                cut.referents_of_object(ObjectId(o)),
                oracle.referents_of_object(ObjectId(o)).to_vec(),
            );
        }
    }

    #[test]
    fn sharded_batch_bumps_each_touched_shard_once() {
        let mut sharded = ShardedSystem::new(3);
        let seq = sharded.register_sequence("s", DataType::DnaSequence, 2_000, "chr1");
        let target = sharded.shard_of_object(seq);
        let epochs_before: Vec<u64> = (0..3).map(|i| sharded.shard(i).epoch()).collect();
        let version_before = sharded.version();

        let mut batch = sharded.batch();
        for i in 0..5u64 {
            batch
                .annotate()
                .comment(format!("burst {i}"))
                .mark(seq, Marker::interval(i * 10, i * 10 + 5))
                .commit()
                .unwrap();
        }
        assert_eq!(batch.commit(), 5);

        assert_eq!(sharded.version(), version_before + 1, "one logical version per batch");
        for (i, &before) in epochs_before.iter().enumerate() {
            let expected = before + u64::from(i == target);
            assert_eq!(sharded.shard(i).epoch(), expected, "shard {i} epoch");
        }
    }

    #[test]
    fn ingest_batch_leaves_annotation_components_clean_on_every_shard() {
        let mut sharded = ShardedSystem::new(2);
        sharded.register_sequence("seed", DataType::DnaSequence, 1_000, "chr1");
        let cut_before = sharded.capture_cut();
        let mut batch = sharded.batch();
        for i in 0..4 {
            batch.register_sequence(format!("late-{i}"), DataType::DnaSequence, 500, "chr2");
        }
        batch.commit();
        let cut_after = sharded.capture_cut();
        let content_fp = crate::ComponentSet::of([
            Component::Content,
            Component::Annotations,
            Component::Referents,
        ]);
        assert!(
            cut_after.agrees_on(&cut_before, content_fp),
            "a replicated ingest batch must not move any shard's annotation-path epochs"
        );
        assert!(!cut_after.same_cut(&cut_before));
    }

    #[test]
    fn cross_shard_referent_reuse_is_rejected() {
        let mut sharded = ShardedSystem::new(2);
        // Find two objects hashed to different shards.
        let mut objs = Vec::new();
        for i in 0..8u64 {
            objs.push(sharded.register_sequence(
                format!("s{i}"),
                DataType::DnaSequence,
                1_000,
                "chr1",
            ));
        }
        let a = *objs.iter().find(|o| sharded.shard_of_object(**o) == 0).expect("shard-0 object");
        let b = *objs.iter().find(|o| sharded.shard_of_object(**o) == 1).expect("shard-1 object");
        let ann_a =
            sharded.annotate().comment("a").mark(a, Marker::interval(0, 10)).commit().unwrap();
        let ann_b =
            sharded.annotate().comment("b").mark(b, Marker::interval(0, 10)).commit().unwrap();
        let ra = sharded.annotation_referents(ann_a).unwrap()[0];
        let rb = sharded.annotation_referents(ann_b).unwrap()[0];
        let err = sharded.annotate().comment("x").mark_existing(ra).mark_existing(rb).commit();
        assert!(
            matches!(err, Err(CoreError::CrossShardReuse { home: 0, reused: 1 })),
            "cross-shard reuse must be rejected with the shard pair: {err:?}"
        );
        // Co-located reuse still works, and a cross-shard *new* mark is fine (objects
        // are replicated; the annotation follows its first reused referent's home).
        sharded.annotate().comment("ok").mark_existing(ra).commit().unwrap();
        sharded
            .annotate()
            .comment("ok2")
            .mark_existing(ra)
            .mark(b, Marker::interval(50, 60))
            .commit()
            .unwrap();
        assert!(sharded.verify_integrity().is_empty());
    }

    #[test]
    fn failed_commit_keeps_oracle_partial_effects() {
        let (mut oracle, mut sharded) = parallel_build(3);
        // A multi-mark annotation whose second mark references an unknown reused
        // referent: both systems keep the first mark's referent and fail identically.
        let obj = ObjectId(0);
        let before = (oracle.referent_count(), sharded.referent_count());
        assert_eq!(before.0, before.1);
        let ea = oracle
            .annotate()
            .comment("partial")
            .mark(obj, Marker::interval(900, 950))
            .mark_existing(ReferentId(9_999))
            .commit();
        let eb = sharded
            .annotate()
            .comment("partial")
            .mark(obj, Marker::interval(900, 950))
            .mark_existing(ReferentId(9_999))
            .commit();
        assert!(ea.is_err() && eb.is_err());
        assert_eq!(oracle.referent_count(), before.0 + 1, "oracle keeps the partial referent");
        assert_eq!(sharded.referent_count(), before.1 + 1, "sharded must match");
        assert_eq!(sharded.agraph().node_count(), oracle.agraph().node_count());
        assert_eq!(sharded.agraph().edge_count(), oracle.agraph().edge_count());
        // And both systems keep assigning identical ids afterwards.
        let ga =
            oracle.annotate().comment("after").mark(obj, Marker::interval(0, 5)).commit().unwrap();
        let gb =
            sharded.annotate().comment("after").mark(obj, Marker::interval(0, 5)).commit().unwrap();
        assert_eq!(ga, gb);
    }

    #[test]
    fn study_replay_matches_unsharded_replay() {
        let (oracle, _) = parallel_build(1);
        let study = oracle.study_snapshot();
        let replayed = Graphitti::from_study_snapshot(&study).unwrap();
        for shards in [1, 2, 3] {
            let sharded = ShardedSystem::from_study_snapshot(&study, shards).unwrap();
            assert_eq!(sharded.annotation_count(), replayed.annotation_count());
            assert_eq!(sharded.referent_count(), replayed.referent_count());
            assert_eq!(sharded.object_count(), replayed.object_count());
            assert_eq!(sharded.agraph().node_count(), replayed.agraph().node_count());
            assert_eq!(sharded.agraph().edge_count(), replayed.agraph().edge_count());
            for node in replayed.agraph().nodes() {
                assert_eq!(sharded.agraph().out_edges(node), replayed.agraph().out_edges(node));
            }
            // Each touched shard replayed as one version (ontology broadcast touches
            // every shard, so every shard bumped exactly once).
            for i in 0..shards {
                assert_eq!(sharded.shard(i).epoch(), 1, "shard {i} must replay as one batch");
            }
            assert!(sharded.verify_integrity().is_empty());
        }
    }

    #[test]
    fn cut_is_isolated_from_later_writes() {
        let (_, mut sharded) = parallel_build(2);
        let cut = sharded.capture_cut();
        let (anns, refs) = (cut.annotation_count(), cut.referent_count());
        sharded
            .annotate()
            .comment("late")
            .mark(ObjectId(0), Marker::interval(0, 9))
            .commit()
            .unwrap();
        sharded.register_sequence("late", DataType::DnaSequence, 100, "chr9");
        assert_eq!(cut.annotation_count(), anns, "cut must not observe later commits");
        assert_eq!(cut.referent_count(), refs);
        let newer = sharded.capture_cut();
        assert_eq!(newer.annotation_count(), anns + 1);
        assert!(!newer.same_cut(&cut));
        // No shard in the old cut is ahead of the shard's state at capture time.
        for (i, snap) in cut.shards().iter().enumerate() {
            assert!(snap.epoch() <= sharded.shard(i).epoch());
        }
    }

    #[test]
    fn shard_hash_is_deterministic_and_total() {
        for shards in [1usize, 2, 3, 8, 64] {
            for id in 0..200u64 {
                let s = shard_of(ObjectId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(ObjectId(id), shards), "routing must be deterministic");
            }
        }
    }
}
