//! Substructure markers and the `SubX` abstraction.
//!
//! The annotation tab offers "a number of menus for marking the substructures of
//! different structures": a *linear interval marker* for sequences, region markers for
//! images, volume markers for 3-D models, and *block-set markers* for relational
//! records.  A [`Marker`] is one such marked substructure.
//!
//! [`SubX`] is the paper's `SUB-X` abstraction — the set of all substructures on which
//! the operators `ifOverlap`, `next` and `intersect` are defined.  We implement it over
//! the marker enum, dispatching to the interval or rectangle algebra per kind.

use interval_index::Interval;
use serde::{Deserialize, Serialize};
use spatial_index::Rect;

/// A marked substructure of a data object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Marker {
    /// A half-open interval on a 1-D sequence / alignment.
    Interval(Interval),
    /// A 2-D image region.
    Region(Rect),
    /// A 3-D sub-volume.
    Volume(Rect),
    /// A block-set of discrete identifiers (relation row ids, graph node ids, tree
    /// clade ids), kept sorted and deduplicated.
    BlockSet(Vec<u64>),
}

impl Marker {
    /// Create an interval marker.
    pub fn interval(start: u64, end: u64) -> Marker {
        Marker::Interval(Interval::new(start, end))
    }

    /// Create a 2-D region marker.
    pub fn region(x0: f64, y0: f64, x1: f64, y1: f64) -> Marker {
        Marker::Region(Rect::rect2(x0, y0, x1, y1))
    }

    /// Create a 3-D volume marker.
    pub fn volume(x0: f64, y0: f64, z0: f64, x1: f64, y1: f64, z1: f64) -> Marker {
        Marker::Volume(Rect::box3(x0, y0, z0, x1, y1, z1))
    }

    /// Create a block-set marker (ids are sorted and deduplicated).
    pub fn block_set(ids: impl IntoIterator<Item = u64>) -> Marker {
        let mut v: Vec<u64> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Marker::BlockSet(v)
    }

    /// The marker's dimensionality, used to validate it against an object's data type.
    pub fn dimensionality(&self) -> crate::types::Dimensionality {
        use crate::types::Dimensionality;
        match self {
            Marker::Interval(_) => Dimensionality::Linear,
            Marker::Region(_) => Dimensionality::Planar,
            Marker::Volume(_) => Dimensionality::Volumetric,
            Marker::BlockSet(_) => Dimensionality::Discrete,
        }
    }

    /// A compact textual key describing the marked substructure (used in a-graph node
    /// keys and display).
    pub fn key(&self) -> String {
        match self {
            Marker::Interval(i) => format!("ivl:{}-{}", i.start, i.end),
            Marker::Region(r) => format!("reg:{},{}-{},{}", r.min[0], r.min[1], r.max[0], r.max[1]),
            Marker::Volume(r) => format!(
                "vol:{},{},{}-{},{},{}",
                r.min[0], r.min[1], r.min[2], r.max[0], r.max[1], r.max[2]
            ),
            Marker::BlockSet(ids) => {
                let parts: Vec<String> = ids.iter().map(u64::to_string).collect();
                format!("blk:{}", parts.join("."))
            }
        }
    }
}

/// The paper's `SUB-X` substructure abstraction: the operators defined on all
/// substructures (`ifOverlap`), and those defined only on suitable ones (`next` on
/// ordered types, `intersect` on convex types).
pub trait SubX: Sized {
    /// `ifOverlap : SUB-X × SUB-X → {0,1}` — whether two substructures overlap. Two
    /// substructures of different kinds never overlap.
    fn if_overlap(&self, other: &Self) -> bool;

    /// `intersect : SUB-X × SUB-X → SUB-X` — the intersection of two substructures,
    /// when defined for the (convex) type, else `None`.
    fn intersect(&self, other: &Self) -> Option<Self>;

    /// `next : SUB-X → SUB-X` over an explicit ordered population: the substructure
    /// immediately following `self` in the given collection, for ordered types. Returns
    /// `None` for unordered types or when nothing follows.
    fn next_in<'a>(&self, population: &'a [Self]) -> Option<&'a Self>;
}

impl SubX for Marker {
    fn if_overlap(&self, other: &Marker) -> bool {
        match (self, other) {
            (Marker::Interval(a), Marker::Interval(b)) => a.if_overlap(b),
            (Marker::Region(a), Marker::Region(b)) => a.if_overlap(b),
            (Marker::Volume(a), Marker::Volume(b)) => a.if_overlap(b),
            (Marker::BlockSet(a), Marker::BlockSet(b)) => {
                // sorted sets: overlap iff they share an id
                let mut i = 0;
                let mut j = 0;
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => return true,
                    }
                }
                false
            }
            _ => false,
        }
    }

    fn intersect(&self, other: &Marker) -> Option<Marker> {
        match (self, other) {
            (Marker::Interval(a), Marker::Interval(b)) => {
                let i = a.intersect(b);
                if i.is_empty() {
                    None
                } else {
                    Some(Marker::Interval(i))
                }
            }
            (Marker::Region(a), Marker::Region(b)) => a.intersect(b).map(Marker::Region),
            (Marker::Volume(a), Marker::Volume(b)) => a.intersect(b).map(Marker::Volume),
            (Marker::BlockSet(a), Marker::BlockSet(b)) => {
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                if out.is_empty() {
                    None
                } else {
                    Some(Marker::BlockSet(out))
                }
            }
            _ => None,
        }
    }

    fn next_in<'a>(&self, population: &'a [Marker]) -> Option<&'a Marker> {
        match self {
            Marker::Interval(a) => population
                .iter()
                .filter_map(|m| match m {
                    Marker::Interval(b) if b.start >= a.end => Some((b.start, b.end, m)),
                    _ => None,
                })
                .min_by_key(|&(s, e, _)| (s, e))
                .map(|(_, _, m)| m),
            // spatial and discrete substructures have no canonical linear ordering
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Dimensionality;

    #[test]
    fn marker_dimensionality() {
        assert_eq!(Marker::interval(0, 10).dimensionality(), Dimensionality::Linear);
        assert_eq!(Marker::region(0.0, 0.0, 1.0, 1.0).dimensionality(), Dimensionality::Planar);
        assert_eq!(
            Marker::volume(0.0, 0.0, 0.0, 1.0, 1.0, 1.0).dimensionality(),
            Dimensionality::Volumetric
        );
        assert_eq!(Marker::block_set([1, 2]).dimensionality(), Dimensionality::Discrete);
    }

    #[test]
    fn block_set_normalizes() {
        let m = Marker::block_set([3, 1, 2, 1]);
        assert_eq!(m, Marker::BlockSet(vec![1, 2, 3]));
    }

    #[test]
    fn marker_keys() {
        assert_eq!(Marker::interval(10, 50).key(), "ivl:10-50");
        assert_eq!(Marker::block_set([1, 2, 3]).key(), "blk:1.2.3");
        assert!(Marker::region(0.0, 0.0, 1.0, 2.0).key().starts_with("reg:"));
    }

    #[test]
    fn overlap_same_kind() {
        assert!(Marker::interval(0, 10).if_overlap(&Marker::interval(5, 15)));
        assert!(!Marker::interval(0, 10).if_overlap(&Marker::interval(10, 20)));
        assert!(
            Marker::region(0.0, 0.0, 10.0, 10.0).if_overlap(&Marker::region(5.0, 5.0, 15.0, 15.0))
        );
        assert!(Marker::block_set([1, 2, 3]).if_overlap(&Marker::block_set([3, 4, 5])));
        assert!(!Marker::block_set([1, 2]).if_overlap(&Marker::block_set([3, 4])));
    }

    #[test]
    fn overlap_different_kinds_is_false() {
        assert!(!Marker::interval(0, 10).if_overlap(&Marker::region(0.0, 0.0, 1.0, 1.0)));
        assert!(!Marker::block_set([1]).if_overlap(&Marker::interval(0, 10)));
    }

    #[test]
    fn intersect_dispatch() {
        assert_eq!(
            Marker::interval(0, 10).intersect(&Marker::interval(5, 20)),
            Some(Marker::interval(5, 10))
        );
        assert_eq!(Marker::interval(0, 5).intersect(&Marker::interval(5, 10)), None);
        assert_eq!(
            Marker::block_set([1, 2, 3]).intersect(&Marker::block_set([2, 3, 4])),
            Some(Marker::BlockSet(vec![2, 3]))
        );
        assert_eq!(Marker::block_set([1]).intersect(&Marker::block_set([2])), None);
        assert_eq!(
            Marker::region(0.0, 0.0, 10.0, 10.0).intersect(&Marker::region(5.0, 5.0, 15.0, 15.0)),
            Some(Marker::region(5.0, 5.0, 10.0, 10.0))
        );
        assert!(Marker::interval(0, 10).intersect(&Marker::block_set([1])).is_none());
    }

    #[test]
    fn next_on_intervals() {
        let pop = vec![Marker::interval(0, 10), Marker::interval(12, 20), Marker::interval(30, 40)];
        let n = Marker::interval(0, 10).next_in(&pop).unwrap();
        assert_eq!(*n, Marker::interval(12, 20));
        assert!(Marker::interval(30, 40).next_in(&pop).is_none());
        // non-interval markers have no "next"
        assert!(Marker::block_set([1]).next_in(&pop).is_none());
    }
}
