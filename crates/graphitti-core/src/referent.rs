//! Annotation referents: marked substructures of specific objects.
//!
//! A referent is the paper's "marked portion of data object": a [`Marker`] applied to a
//! particular registered object.  Every referent becomes a `Referent` node in the
//! a-graph, and (for spatial / linear markers) an entry in the appropriate index.

use serde::{Deserialize, Serialize};

use crate::marker::Marker;
use crate::system::ObjectId;

/// Identifier of a referent within a [`Graphitti`](crate::Graphitti) system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReferentId(pub u64);

/// A marked substructure of a specific object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Referent {
    /// Identifier of the referent.
    pub id: ReferentId,
    /// The object whose substructure is marked.
    pub object: ObjectId,
    /// The marker describing the substructure.
    pub marker: Marker,
    /// The coordinate domain / system this referent was indexed under (e.g. the
    /// chromosome for a sequence interval or the coordinate system for an image region).
    pub domain: String,
}

impl Referent {
    /// Create a referent.
    pub fn new(
        id: ReferentId,
        object: ObjectId,
        marker: Marker,
        domain: impl Into<String>,
    ) -> Self {
        Referent { id, object, marker, domain: domain.into() }
    }

    /// The a-graph node key for this referent.
    pub fn node_key(&self) -> String {
        format!("ref:{}:{}", self.id.0, self.marker.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referent_node_key() {
        let r = Referent::new(ReferentId(7), ObjectId(3), Marker::interval(10, 50), "chr7");
        assert_eq!(r.node_key(), "ref:7:ivl:10-50");
        assert_eq!(r.object, ObjectId(3));
        assert_eq!(r.domain, "chr7");
    }
}
