//! # graphitti-core — the annotation model and system facade
//!
//! This crate is the paper's primary contribution: an annotation platform where a
//! scientist creates and searches annotations on *heterogeneous* data.  It treats an
//! annotation as a "linker object" connecting annotation content (the comment) to one
//! or more annotation referents (marked substructures of data objects) and to ontology
//! terms, inducing the **a-graph** — the connection structure that associates
//! substructures of all other data types.
//!
//! The module layout:
//!
//! * [`types`] — the heterogeneous data-type taxonomy and per-type schemas;
//! * [`marker`] — the substructure markers (interval, region, volume, block-set) the
//!   annotation tab uses, and the `SubX` substructure abstraction with the paper's
//!   `ifOverlap` / `next` / `intersect` operators;
//! * [`referent`] — a referent: a marked substructure of a specific object;
//! * [`annotation`] — the annotation content model and the fluent annotation builder;
//! * [`indexes`] — the inverted secondary indexes (term postings, doc → annotation,
//!   type → objects / referents, block → referents) and workload [`Stats`], maintained
//!   incrementally so the query planner and executor never scan the registries;
//! * [`system`] — [`SystemView`], the complete read state, and [`Graphitti`], the
//!   mutation facade over an `Arc`-shared view that implements register / annotate /
//!   explore with copy-on-publish semantics;
//! * [`snapshot`] — [`Snapshot`], the isolated read handle concurrent query workers
//!   execute against (readers never block writers, never see torn state);
//! * [`batch`] — [`CommitBatch`], the batched write API: many registers / annotates
//!   coalesced into one epoch bump, so a writer streaming commits publishes (and
//!   invalidates downstream caches) once per batch;
//! * [`epoch`] — per-component versioning: [`ComponentSet`] dirty sets / read
//!   footprints and the [`EpochVector`] every snapshot carries, so downstream caches
//!   can invalidate per dirtied component instead of wholesale;
//! * [`shard`] — [`ShardedSystem`], hash-partitioned scale-out: N independent shards
//!   (annotations / referents / content partitioned by anchor-object hash, object
//!   metadata and the ontology replicated), a global-id router, the global collation
//!   mirror, and [`ShardCut`], the consistent cross-shard read handle;
//! * [`study`] — [`StudySnapshot`], the serialisable export / import format for saving
//!   and reloading a study.
//!
//! See the crate `README` and `examples/` for end-to-end usage.

pub mod annotation;
pub mod batch;
pub mod epoch;
pub mod error;
pub mod indexes;
pub mod marker;
pub mod recovery;
pub mod referent;
pub mod shard;
pub mod snapshot;
pub mod study;
pub mod system;
pub mod types;
pub mod wal;

pub use annotation::{Annotation, AnnotationBuilder, AnnotationId};
pub use batch::CommitBatch;
pub use epoch::{ComponentSet, EpochVector};
pub use error::CoreError;
pub use indexes::{Indexes, Stats};
pub use marker::{Marker, SubX};
pub use recovery::{recover_sharded, recover_unsharded, RecoveryReport};
pub use referent::{Referent, ReferentId};
pub use shard::{ShardCut, ShardedBatch, ShardedSystem};
pub use snapshot::Snapshot;
pub use study::{AnnotationSnapshot, ObjectSnapshot, ReferentSnapshot, StudySnapshot};
pub use system::{Component, Entity, Graphitti, ObjectId, ObjectInfo, SystemView};
pub use types::{DataType, Dimensionality};
pub use wal::{
    Checkpoint, CrashImage, CrashPoint, DurabilityMode, DurableShardedSystem, DurableSystem,
    FaultHandle, FaultStorage, FileStorage, LogOp, LogReferent, MemStorage, Wal, WalRecord,
    WalStats, WalStorage,
};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

// Re-export the substrate crates so downstream code can name their types through core.
pub use agraph;
pub use interval_index;
pub use ontology;
pub use relstore;
pub use spatial_index;
pub use xmlstore;
