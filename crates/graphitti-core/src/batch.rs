//! [`CommitBatch`] — the batched write API.
//!
//! The annotation workload is read-dominated but never read-only: curators keep
//! registering objects and attaching annotations while queries are served.  Committing
//! each write as its own version makes every downstream consumer pay per call — one
//! epoch bump per mutation means one result-cache invalidation per `publish`, and a
//! register/annotate *stream* would force a publish storm to stay fresh.
//!
//! A [`CommitBatch`] coalesces that: obtained from [`Graphitti::batch`], it stages any
//! number of registers / annotates and takes **one** epoch bump for the whole batch
//! (lazily, on the first write attempt).  The writer then publishes the post-batch
//! snapshot once, and the query service's epoch-keyed result cache is invalidated once
//! per batch rather than once per call.
//!
//! Epoch coherence is preserved by the borrow checker, not by convention: the batch
//! exclusively borrows the [`Graphitti`], so no [`Snapshot`](crate::Snapshot) can be
//! captured between the batch's intermediate states — the coalesced epoch only ever
//! names the final, post-batch state.  (The batch itself derefs to [`SystemView`], so
//! reads — lookups, counts, integrity checks — remain available while staging.)
//!
//! ```
//! use graphitti_core::{DataType, Graphitti, Marker};
//!
//! let mut sys = Graphitti::new();
//! let seq = sys.register_sequence("s", DataType::DnaSequence, 10_000, "chr1");
//! let epoch_before = sys.epoch();
//!
//! let mut batch = sys.batch();
//! for i in 0..100u64 {
//!     batch
//!         .annotate()
//!         .comment(format!("site {i}"))
//!         .mark(seq, Marker::interval(i * 10, i * 10 + 5))
//!         .commit()
//!         .unwrap();
//! }
//! let staged = batch.commit();
//! assert_eq!(staged, 100);
//! assert_eq!(sys.epoch(), epoch_before + 1); // one version for the whole batch
//! ```

use bytes::Bytes;
use relstore::Value;

use crate::annotation::AnnotationBuilder;
use crate::epoch::ComponentSet;
use crate::system::{Graphitti, ObjectId, SystemView};
use crate::types::DataType;
use crate::Result;

/// A batched write in progress: registers and annotates staged through it share a
/// single epoch bump, taken on the first write attempt.  Ending the batch (via
/// [`commit`](CommitBatch::commit) or drop) returns the system to per-mutation
/// versioning.
///
/// Derefs to [`SystemView`] for reads; there is deliberately **no** way to capture a
/// [`Snapshot`](crate::Snapshot) mid-batch (see the [module docs](self)).
#[derive(Debug)]
pub struct CommitBatch<'a> {
    system: &'a mut Graphitti,
    staged: u64,
}

impl std::ops::Deref for CommitBatch<'_> {
    type Target = SystemView;

    fn deref(&self) -> &SystemView {
        self.system.view()
    }
}

impl<'a> CommitBatch<'a> {
    pub(crate) fn new(system: &'a mut Graphitti) -> Self {
        system.begin_batch();
        CommitBatch { system, staged: 0 }
    }

    /// Register a data object (see [`Graphitti::register_object`]).
    pub fn register_object(
        &mut self,
        data_type: DataType,
        name: impl Into<String>,
        metadata: Vec<Value>,
        payload: Bytes,
        domain: impl Into<String>,
    ) -> Result<ObjectId> {
        self.staged += 1;
        self.system.register_object(data_type, name, metadata, payload, domain)
    }

    /// Register a 1-D sequence object (see [`Graphitti::register_sequence`]).
    pub fn register_sequence(
        &mut self,
        name: impl Into<String>,
        data_type: DataType,
        length: u64,
        domain: impl Into<String>,
    ) -> ObjectId {
        self.staged += 1;
        self.system.register_sequence(name, data_type, length, domain)
    }

    /// Register a 2-D image object (see [`Graphitti::register_image`]).
    pub fn register_image(
        &mut self,
        name: impl Into<String>,
        width: u64,
        height: u64,
        modality: impl Into<String>,
        coordinate_system: impl Into<String>,
    ) -> ObjectId {
        self.staged += 1;
        self.system.register_image(name, width, height, modality, coordinate_system)
    }

    /// Begin building an annotation inside the batch.  Committing the builder counts
    /// as one staged write.
    pub fn annotate(&mut self) -> AnnotationBuilder<'_> {
        self.staged += 1;
        self.system.annotate()
    }

    /// Mutable access to the ontology (see [`Graphitti::ontology_mut`]); the write
    /// shares the batch's single epoch bump and counts as one staged write.
    pub fn ontology_mut(&mut self) -> &mut ontology::Ontology {
        self.staged += 1;
        self.system.ontology_mut()
    }

    /// Number of writes staged so far (builder drops without commit still count —
    /// the figure reports staging calls, not successful commits).
    pub fn staged(&self) -> u64 {
        self.staged
    }

    /// The union of the staged writes' dirty sets: every [`Component`] this batch has
    /// written so far.  At publish time this is exactly the set whose per-component
    /// epochs the batch bumped — a homogeneous ingest batch (registers only) reports
    /// the registration path and nothing else, which is what lets a downstream
    /// footprint-keyed cache keep entries whose plans never read those components.
    pub fn dirty_components(&self) -> ComponentSet {
        self.system.batch_dirty()
    }

    /// Finish the batch, returning the number of staged writes.  Equivalent to
    /// dropping it, but reads as a commit point at call sites.
    pub fn commit(mut self) -> u64 {
        std::mem::take(&mut self.staged)
        // Drop runs next and ends batch mode on the system.
    }
}

impl Drop for CommitBatch<'_> {
    fn drop(&mut self) {
        self.system.end_batch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marker::Marker;
    use crate::system::Component;

    fn seeded() -> (Graphitti, ObjectId) {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 100_000, "chr1");
        (sys, seq)
    }

    #[test]
    fn batch_bumps_epoch_once() {
        let (mut sys, seq) = seeded();
        let before = sys.epoch();
        let mut batch = sys.batch();
        for i in 0..10u64 {
            batch
                .annotate()
                .comment("batched")
                .mark(seq, Marker::interval(i * 10, i * 10 + 5))
                .commit()
                .unwrap();
        }
        assert_eq!(batch.staged(), 10);
        assert_eq!(batch.commit(), 10);
        assert_eq!(sys.epoch(), before + 1);
        assert_eq!(sys.annotation_count(), 10);
    }

    #[test]
    fn empty_batch_leaves_epoch_unchanged() {
        let (mut sys, _) = seeded();
        let before = sys.epoch();
        let batch = sys.batch();
        assert_eq!(batch.staged(), 0);
        drop(batch);
        assert_eq!(sys.epoch(), before);
        // versioning returns to per-mutation afterwards
        sys.register_sequence("t", DataType::DnaSequence, 10, "chr2");
        assert_eq!(sys.epoch(), before + 1);
    }

    #[test]
    fn batch_mixes_registers_and_annotates() {
        let (mut sys, seq) = seeded();
        let before = sys.epoch();
        let mut batch = sys.batch();
        let img = batch.register_image("brain", 64, 64, "mri", "cs");
        batch
            .annotate()
            .comment("cross-type")
            .mark(seq, Marker::interval(0, 10))
            .mark(img, Marker::region(1.0, 1.0, 5.0, 5.0))
            .commit()
            .unwrap();
        let seq2 = batch.register_sequence("s2", DataType::ProteinSequence, 500, "chr1");
        batch.annotate().comment("p").mark(seq2, Marker::interval(5, 9)).commit().unwrap();
        assert_eq!(batch.commit(), 4);
        assert_eq!(sys.epoch(), before + 1);
        assert_eq!(sys.object_count(), 3);
        assert_eq!(sys.annotation_count(), 2);
        assert!(sys.verify_integrity().is_empty());
    }

    #[test]
    fn batch_reads_observe_staged_writes() {
        let (mut sys, seq) = seeded();
        let mut batch = sys.batch();
        batch.annotate().comment("x").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        // Deref to SystemView: staged state is readable mid-batch.
        assert_eq!(batch.annotation_count(), 1);
        let rid = batch.annotation(crate::AnnotationId(0)).unwrap().referents[0];
        batch.annotate().comment("y").mark_existing(rid).commit().unwrap();
        drop(batch);
        assert_eq!(sys.related_annotations(crate::AnnotationId(0)), vec![crate::AnnotationId(1)]);
    }

    #[test]
    fn drop_without_commit_still_ends_batch_mode() {
        let (mut sys, seq) = seeded();
        let before = sys.epoch();
        {
            let mut batch = sys.batch();
            batch.annotate().comment("z").mark(seq, Marker::interval(0, 5)).commit().unwrap();
        } // dropped, not committed — the writes stay (batching coalesces versions, it
          // is not transactional rollback)
        assert_eq!(sys.annotation_count(), 1);
        assert_eq!(sys.epoch(), before + 1);
        sys.register_image("i", 8, 8, "mri", "cs");
        assert_eq!(sys.epoch(), before + 2);
    }

    #[test]
    fn failed_writes_in_batch_still_take_the_single_bump() {
        let (mut sys, _) = seeded();
        let before = sys.epoch();
        let mut batch = sys.batch();
        // Unknown object: the commit fails, but the write attempt versioned the state
        // (conservative, matching the non-batched epoch policy).
        let err =
            batch.annotate().comment("bad").mark(ObjectId(99), Marker::interval(0, 1)).commit();
        assert!(err.is_err());
        drop(batch);
        assert_eq!(sys.epoch(), before + 1);
    }

    #[test]
    fn batch_accumulates_its_dirty_set() {
        let (mut sys, seq) = seeded();
        let snap = sys.snapshot();
        let epochs_before = snap.component_epochs();

        // An ingest-only batch dirties exactly the registration path...
        let mut batch = sys.batch();
        batch.register_sequence("a", DataType::DnaSequence, 100, "chr1");
        batch.register_sequence("b", DataType::ProteinSequence, 100, "chr2");
        let ingest_dirty = batch.dirty_components();
        batch.commit();
        assert_eq!(
            ingest_dirty,
            ComponentSet::of([
                Component::Catalog,
                Component::Agraph,
                Component::Objects,
                Component::NodeMaps,
                Component::Indexes,
            ])
        );
        // ...and the epoch vector moved on exactly that set, at the coalesced epoch.
        let after = sys.snapshot();
        assert_eq!(after.component_epochs().changed(epochs_before), ingest_dirty);
        for c in ingest_dirty.iter() {
            assert_eq!(after.component_epoch(c), sys.epoch());
        }
        // The dirty set matches the structural-sharing footprint: a component is
        // un-shared with the pre-batch snapshot iff the batch declared it dirty.
        for c in Component::ALL {
            assert_eq!(
                !sys.view().shares_component(snap.view(), c),
                ingest_dirty.contains(c),
                "{c:?}: dirty-set / copy-footprint mismatch"
            );
        }

        // A mixed batch accumulates the union across write kinds; outside a batch the
        // accumulator is empty again.
        let mut batch = sys.batch();
        batch.register_image("img", 8, 8, "mri", "cs");
        batch.annotate().comment("x").mark(seq, Marker::interval(0, 5)).commit().unwrap();
        let mixed_dirty = batch.dirty_components();
        batch.commit();
        assert!(mixed_dirty.contains(Component::Catalog));
        assert!(mixed_dirty.contains(Component::Content));
        assert!(mixed_dirty.contains(Component::Intervals));
        assert!(!mixed_dirty.contains(Component::Spatial));
        assert!(!mixed_dirty.contains(Component::Ontology));
    }

    #[test]
    fn snapshot_isolation_across_a_batch() {
        let (mut sys, seq) = seeded();
        let snap = sys.snapshot();
        let mut batch = sys.batch();
        for i in 0..5u64 {
            batch
                .annotate()
                .comment("late")
                .mark(seq, Marker::interval(i * 100, i * 100 + 50))
                .commit()
                .unwrap();
        }
        drop(batch);
        assert_eq!(snap.annotation_count(), 0);
        assert_eq!(sys.annotation_count(), 5);
        assert!(sys.epoch() > snap.epoch());
    }
}
