//! The [`Interval`] type and the paper's 1-D substructure operators.
//!
//! Intervals are half-open `[start, end)` over `u64` coordinates, which matches the
//! usual genomic convention and makes "consecutive, non-overlapping" constraints (used
//! by the protease example query) easy to express.

use serde::{Deserialize, Serialize};

/// How two intervals relate to each other on the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverlapRelation {
    /// `self` ends at or before the other starts.
    Before,
    /// `self` starts at or after the other ends.
    After,
    /// The intervals share at least one coordinate but neither contains the other.
    PartialOverlap,
    /// `self` fully contains the other (they may be equal).
    Contains,
    /// The other fully contains `self` and they are not equal.
    ContainedIn,
}

/// A half-open interval `[start, end)` on a 1-D coordinate domain.
///
/// `start < end` is required for non-empty intervals; `start == end` denotes an empty
/// (point-free) interval, which is permitted so that `intersect` is closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start coordinate.
    pub start: u64,
    /// Exclusive end coordinate.
    pub end: u64,
}

impl Interval {
    /// Create an interval; panics if `start > end` (an inverted interval is a bug in
    /// the caller, not recoverable state).
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "inverted interval [{start}, {end})");
        Interval { start, end }
    }

    /// Create an interval, returning `None` if inverted.
    pub fn checked(start: u64, end: u64) -> Option<Self> {
        if start <= end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// A single-point interval `[p, p+1)`.
    pub fn point(p: u64) -> Self {
        Interval { start: p, end: p + 1 }
    }

    /// Interval length.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the interval covers no coordinates.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The paper's `ifOverlap : SUB-X × SUB-X → {0,1}`: true when the two substructures
    /// share at least one coordinate.
    pub fn if_overlap(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// The paper's `intersect : SUB-X × SUB-X → SUB-X` for convex 1-D types: the common
    /// sub-interval, which may be empty.
    pub fn intersect(&self, other: &Interval) -> Interval {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start >= end {
            Interval { start, end: start }
        } else {
            Interval { start, end }
        }
    }

    /// The smallest interval containing both inputs (the convex hull on the line).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// True when `self` fully contains `other`.
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end && !other.is_empty()
    }

    /// True when the coordinate `p` falls inside the interval.
    pub fn contains_point(&self, p: u64) -> bool {
        self.start <= p && p < self.end
    }

    /// True when `self` lies strictly before `other` with no shared coordinate.
    pub fn precedes(&self, other: &Interval) -> bool {
        self.end <= other.start
    }

    /// True when `self` and `other` are consecutive and disjoint (they touch but do not
    /// overlap) — the constraint used by the paper's "4 consecutive non-overlapping
    /// intervals" example query, allowing a configurable gap tolerance.
    pub fn consecutive_with(&self, other: &Interval, max_gap: u64) -> bool {
        self.precedes(other) && other.start - self.end <= max_gap
    }

    /// Classify the relation of `self` to `other`.
    pub fn relation(&self, other: &Interval) -> OverlapRelation {
        if self.precedes(other) {
            OverlapRelation::Before
        } else if other.precedes(self) {
            OverlapRelation::After
        } else if self.contains(other) {
            OverlapRelation::Contains
        } else if other.contains(self) {
            OverlapRelation::ContainedIn
        } else {
            OverlapRelation::PartialOverlap
        }
    }

    /// Gap between two disjoint intervals (0 when they touch or overlap).
    pub fn gap_to(&self, other: &Interval) -> u64 {
        if self.precedes(other) {
            other.start - self.end
        } else if other.precedes(self) {
            self.start - other.end
        } else {
            0
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Merge a set of intervals into the minimal set of disjoint intervals covering the same
/// coordinates (the union as a normalized interval set). Empty intervals are dropped.
pub fn merge_overlapping(intervals: &[Interval]) -> Vec<Interval> {
    let mut sorted: Vec<Interval> = intervals.iter().copied().filter(|i| !i.is_empty()).collect();
    sorted.sort_by_key(|i| (i.start, i.end));
    let mut out: Vec<Interval> = Vec::new();
    for iv in sorted {
        match out.last_mut() {
            Some(last) if iv.start <= last.end => {
                last.end = last.end.max(iv.end);
            }
            _ => out.push(iv),
        }
    }
    out
}

/// Total number of coordinates covered by a set of intervals (the length of their union,
/// double-counting removed).
pub fn coverage(intervals: &[Interval]) -> u64 {
    merge_overlapping(intervals).iter().map(Interval::len).sum()
}

/// Verify that a sequence of intervals is consecutive and pairwise non-overlapping
/// (each one ends before the next begins, within `max_gap`).  Used by the query engine
/// to evaluate the graph constraint of the protease example query.
pub fn are_consecutive_disjoint(intervals: &[Interval], max_gap: u64) -> bool {
    intervals.windows(2).all(|w| w[0].consecutive_with(&w[1], max_gap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let i = Interval::new(10, 20);
        assert_eq!(i.len(), 10);
        assert!(!i.is_empty());
        assert!(Interval::new(5, 5).is_empty());
        assert_eq!(Interval::point(7), Interval::new(7, 8));
        assert_eq!(Interval::checked(3, 1), None);
        assert_eq!(Interval::checked(1, 3), Some(Interval::new(1, 3)));
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_panics() {
        let _ = Interval::new(10, 5);
    }

    #[test]
    fn if_overlap_cases() {
        let a = Interval::new(10, 20);
        assert!(a.if_overlap(&Interval::new(15, 25)));
        assert!(a.if_overlap(&Interval::new(0, 11)));
        assert!(a.if_overlap(&Interval::new(12, 13)));
        assert!(!a.if_overlap(&Interval::new(20, 30))); // touching is not overlapping
        assert!(!a.if_overlap(&Interval::new(0, 10)));
        assert!(!a.if_overlap(&Interval::new(15, 15))); // empty never overlaps
    }

    #[test]
    fn intersect_is_commutative_and_clipped() {
        let a = Interval::new(10, 20);
        let b = Interval::new(15, 30);
        assert_eq!(a.intersect(&b), Interval::new(15, 20));
        assert_eq!(b.intersect(&a), Interval::new(15, 20));
        let disjoint = a.intersect(&Interval::new(40, 50));
        assert!(disjoint.is_empty());
    }

    #[test]
    fn hull_covers_both() {
        let a = Interval::new(10, 20);
        let b = Interval::new(30, 40);
        assert_eq!(a.hull(&b), Interval::new(10, 40));
    }

    #[test]
    fn containment() {
        let a = Interval::new(10, 100);
        assert!(a.contains(&Interval::new(10, 100)));
        assert!(a.contains(&Interval::new(50, 60)));
        assert!(!a.contains(&Interval::new(5, 60)));
        assert!(!a.contains(&Interval::new(50, 50)));
        assert!(a.contains_point(10));
        assert!(a.contains_point(99));
        assert!(!a.contains_point(100));
    }

    #[test]
    fn relation_classification() {
        let a = Interval::new(10, 20);
        assert_eq!(a.relation(&Interval::new(20, 30)), OverlapRelation::Before);
        assert_eq!(a.relation(&Interval::new(0, 10)), OverlapRelation::After);
        assert_eq!(a.relation(&Interval::new(12, 18)), OverlapRelation::Contains);
        assert_eq!(a.relation(&Interval::new(5, 25)), OverlapRelation::ContainedIn);
        assert_eq!(a.relation(&Interval::new(15, 25)), OverlapRelation::PartialOverlap);
    }

    #[test]
    fn consecutive_and_gap() {
        let a = Interval::new(10, 20);
        let b = Interval::new(20, 30);
        let c = Interval::new(25, 35);
        assert!(a.consecutive_with(&b, 0));
        assert!(!b.consecutive_with(&a, 0));
        assert!(!a.consecutive_with(&c, 4));
        assert!(a.consecutive_with(&Interval::new(23, 30), 3));
        assert_eq!(a.gap_to(&Interval::new(25, 30)), 5);
        assert_eq!(a.gap_to(&Interval::new(15, 30)), 0);
        assert_eq!(Interval::new(25, 30).gap_to(&a), 5);
    }

    #[test]
    fn consecutive_disjoint_chain() {
        let chain = vec![
            Interval::new(0, 10),
            Interval::new(10, 25),
            Interval::new(27, 30),
            Interval::new(30, 31),
        ];
        assert!(are_consecutive_disjoint(&chain, 2));
        assert!(!are_consecutive_disjoint(&chain, 1));
        let overlapping = vec![Interval::new(0, 10), Interval::new(5, 15)];
        assert!(!are_consecutive_disjoint(&overlapping, 100));
        assert!(are_consecutive_disjoint(&[Interval::new(1, 2)], 0));
        assert!(are_consecutive_disjoint(&[], 0));
    }

    #[test]
    fn display_format() {
        assert_eq!(Interval::new(3, 9).to_string(), "[3, 9)");
    }

    #[test]
    fn merge_overlapping_normalizes() {
        let ivs = vec![
            Interval::new(0, 10),
            Interval::new(5, 15),
            Interval::new(20, 30),
            Interval::new(30, 40), // touching -> merges
            Interval::new(50, 50), // empty -> dropped
        ];
        let merged = merge_overlapping(&ivs);
        assert_eq!(merged, vec![Interval::new(0, 15), Interval::new(20, 40)]);
    }

    #[test]
    fn coverage_counts_union() {
        let ivs = vec![Interval::new(0, 10), Interval::new(5, 15), Interval::new(20, 25)];
        assert_eq!(coverage(&ivs), 15 + 5); // [0,15) + [20,25)
        assert_eq!(coverage(&[]), 0);
        assert_eq!(coverage(&[Interval::new(0, 100)]), 100);
    }
}
