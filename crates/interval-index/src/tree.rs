//! An augmented interval tree.
//!
//! The tree is a randomized balanced BST (a treap keyed on interval start, with a
//! deterministic pseudo-random priority derived from insertion order) where every node
//! is augmented with the maximum `end` in its subtree.  This gives `O(log n + k)`
//! overlap queries without requiring rebuilds, which matters because annotations arrive
//! incrementally in Graphitti.
//!
//! Each stored entry carries an opaque `u64` payload — Graphitti core stores the
//! referent id there.

use serde::{Deserialize, Serialize};

use crate::interval::Interval;

/// One stored entry: an interval plus its opaque payload (referent id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Entry {
    /// The indexed interval.
    pub interval: Interval,
    /// Caller-supplied payload (Graphitti referent id).
    pub payload: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    entry: Entry,
    priority: u64,
    max_end: u64,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn leaf(entry: Entry, priority: u64) -> Box<Node> {
        Box::new(Node { entry, priority, max_end: entry.interval.end, left: None, right: None })
    }

    fn update(&mut self) {
        self.max_end = self.entry.interval.end;
        if let Some(l) = &self.left {
            self.max_end = self.max_end.max(l.max_end);
        }
        if let Some(r) = &self.right {
            self.max_end = self.max_end.max(r.max_end);
        }
    }
}

/// An augmented interval tree over one coordinate domain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IntervalTree {
    root: Option<Box<Node>>,
    len: usize,
    insert_counter: u64,
}

/// A simple SplitMix64 step used to derive treap priorities deterministically from the
/// insertion counter (no external RNG dependency, fully reproducible builds).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl IntervalTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        IntervalTree::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an interval with its payload. Duplicate intervals and payloads are
    /// allowed (two annotations may mark the same subsequence).
    pub fn insert(&mut self, interval: Interval, payload: u64) {
        self.insert_counter += 1;
        let priority = splitmix64(self.insert_counter);
        let node = Node::leaf(Entry { interval, payload }, priority);
        self.root = Some(Self::insert_node(self.root.take(), node));
        self.len += 1;
    }

    fn insert_node(root: Option<Box<Node>>, node: Box<Node>) -> Box<Node> {
        match root {
            None => node,
            Some(mut r) => {
                if node.priority > r.priority {
                    // node becomes the new root of this subtree: split r around it
                    let (left, right) = Self::split(Some(r), node.entry.interval.start);
                    let mut node = node;
                    node.left = left;
                    node.right = right;
                    node.update();
                    node
                } else {
                    if node.entry.interval.start < r.entry.interval.start {
                        r.left = Some(Self::insert_node(r.left.take(), node));
                    } else {
                        r.right = Some(Self::insert_node(r.right.take(), node));
                    }
                    r.update();
                    r
                }
            }
        }
    }

    /// Split a subtree into (< key, >= key) by interval start.
    fn split(root: Option<Box<Node>>, key: u64) -> (Option<Box<Node>>, Option<Box<Node>>) {
        match root {
            None => (None, None),
            Some(mut r) => {
                if r.entry.interval.start < key {
                    let (l, rest) = Self::split(r.right.take(), key);
                    r.right = l;
                    r.update();
                    (Some(r), rest)
                } else {
                    let (rest, right) = Self::split(r.left.take(), key);
                    r.left = right;
                    r.update();
                    (rest, Some(r))
                }
            }
        }
    }

    /// Remove one entry exactly matching `(interval, payload)`. Returns true when an
    /// entry was removed.
    pub fn remove(&mut self, interval: Interval, payload: u64) -> bool {
        let mut removed = false;
        self.root = Self::remove_node(self.root.take(), interval, payload, &mut removed);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_node(
        root: Option<Box<Node>>,
        interval: Interval,
        payload: u64,
        removed: &mut bool,
    ) -> Option<Box<Node>> {
        let mut r = root?;
        if !*removed && r.entry.interval == interval && r.entry.payload == payload {
            *removed = true;
            return Self::merge(r.left.take(), r.right.take());
        }
        if interval.start < r.entry.interval.start {
            r.left = Self::remove_node(r.left.take(), interval, payload, removed);
        } else if interval.start > r.entry.interval.start {
            r.right = Self::remove_node(r.right.take(), interval, payload, removed);
        } else {
            // equal start: the match could be on either side (duplicates)
            r.left = Self::remove_node(r.left.take(), interval, payload, removed);
            if !*removed {
                r.right = Self::remove_node(r.right.take(), interval, payload, removed);
            }
        }
        r.update();
        Some(r)
    }

    fn merge(left: Option<Box<Node>>, right: Option<Box<Node>>) -> Option<Box<Node>> {
        match (left, right) {
            (None, r) => r,
            (l, None) => l,
            (Some(mut l), Some(mut r)) => {
                if l.priority > r.priority {
                    l.right = Self::merge(l.right.take(), Some(r));
                    l.update();
                    Some(l)
                } else {
                    r.left = Self::merge(Some(l), r.left.take());
                    r.update();
                    Some(r)
                }
            }
        }
    }

    /// All entries whose interval overlaps `query` (shares at least one coordinate),
    /// in ascending `(start, end, payload)` order.
    pub fn overlapping(&self, query: Interval) -> Vec<Entry> {
        let mut out = Vec::new();
        Self::collect_overlaps(&self.root, query, &mut out);
        out.sort_by_key(|e| (e.interval.start, e.interval.end, e.payload));
        out
    }

    fn collect_overlaps(node: &Option<Box<Node>>, query: Interval, out: &mut Vec<Entry>) {
        let Some(n) = node else { return };
        // prune: nothing in this subtree ends after the query starts
        if n.max_end <= query.start {
            return;
        }
        Self::collect_overlaps(&n.left, query, out);
        if n.entry.interval.if_overlap(&query) {
            out.push(n.entry);
        }
        // right subtree only useful if its starts can still be before query.end
        if n.entry.interval.start < query.end {
            Self::collect_overlaps(&n.right, query, out);
        }
    }

    /// All entries containing the point `p`.
    pub fn stabbing(&self, p: u64) -> Vec<Entry> {
        self.overlapping(Interval::point(p))
    }

    /// All entries fully contained in `query`.
    pub fn contained_in(&self, query: Interval) -> Vec<Entry> {
        self.overlapping(query).into_iter().filter(|e| query.contains(&e.interval)).collect()
    }

    /// The paper's `next : SUB-X → SUB-X` operator for ordered domains: the entry that
    /// starts soonest at or after `after.end` (ties broken by smaller end, then
    /// payload). Returns `None` when nothing follows.
    pub fn next_after(&self, after: Interval) -> Option<Entry> {
        let mut best: Option<Entry> = None;
        Self::find_next(&self.root, after.end, &mut best);
        best
    }

    fn find_next(node: &Option<Box<Node>>, from: u64, best: &mut Option<Entry>) {
        let Some(n) = node else { return };
        if n.entry.interval.start >= from {
            let better = match best {
                None => true,
                Some(b) => {
                    (n.entry.interval.start, n.entry.interval.end, n.entry.payload)
                        < (b.interval.start, b.interval.end, b.payload)
                }
            };
            if better {
                *best = Some(n.entry);
            }
            // a smaller start can only be in the left subtree ...
            Self::find_next(&n.left, from, best);
            // ... but the right subtree may hold entries tying on start with a smaller
            // (end, payload), since equal starts are inserted to the right.
            if let Some(b) = *best {
                if b.interval.start == n.entry.interval.start {
                    Self::find_next(&n.right, from, best);
                }
            }
        } else {
            Self::find_next(&n.right, from, best);
        }
    }

    /// Every stored entry in ascending order.
    pub fn entries(&self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.len);
        Self::collect_all(&self.root, &mut out);
        out.sort_by_key(|e| (e.interval.start, e.interval.end, e.payload));
        out
    }

    fn collect_all(node: &Option<Box<Node>>, out: &mut Vec<Entry>) {
        if let Some(n) = node {
            Self::collect_all(&n.left, out);
            out.push(n.entry);
            Self::collect_all(&n.right, out);
        }
    }

    /// The tree height (for diagnostics / ablation reporting).
    pub fn height(&self) -> usize {
        fn h(n: &Option<Box<Node>>) -> usize {
            n.as_ref().map(|n| 1 + h(&n.left).max(h(&n.right))).unwrap_or(0)
        }
        h(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(spans: &[(u64, u64)]) -> IntervalTree {
        let mut t = IntervalTree::new();
        for (i, &(s, e)) in spans.iter().enumerate() {
            t.insert(Interval::new(s, e), i as u64);
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t = IntervalTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.overlapping(Interval::new(0, 100)).is_empty());
        assert!(t.next_after(Interval::new(0, 1)).is_none());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn overlap_query_basic() {
        let t = tree_of(&[(0, 10), (5, 15), (20, 30), (25, 40), (100, 110)]);
        let hits = t.overlapping(Interval::new(8, 22));
        let payloads: Vec<u64> = hits.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![0, 1, 2]);
        assert!(t.overlapping(Interval::new(50, 60)).is_empty());
        assert_eq!(t.overlapping(Interval::new(0, 200)).len(), 5);
    }

    #[test]
    fn stabbing_query() {
        let t = tree_of(&[(0, 10), (5, 15), (20, 30)]);
        assert_eq!(t.stabbing(7).len(), 2);
        assert_eq!(t.stabbing(15).len(), 0); // half-open: 15 not in [5,15)
        assert_eq!(t.stabbing(29).len(), 1);
    }

    #[test]
    fn contained_in_query() {
        let t = tree_of(&[(0, 10), (5, 15), (6, 9), (20, 30)]);
        let hits = t.contained_in(Interval::new(4, 16));
        let payloads: Vec<u64> = hits.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![1, 2]);
    }

    #[test]
    fn next_after_operator() {
        let t = tree_of(&[(0, 10), (12, 20), (12, 14), (30, 40)]);
        let n = t.next_after(Interval::new(0, 10)).unwrap();
        assert_eq!(n.interval, Interval::new(12, 14)); // ties by smaller end
        let n2 = t.next_after(Interval::new(12, 21)).unwrap();
        assert_eq!(n2.interval, Interval::new(30, 40));
        assert!(t.next_after(Interval::new(30, 41)).is_none());
        // an interval ending exactly at a start is "next"-eligible
        let n3 = t.next_after(Interval::new(0, 12)).unwrap();
        assert_eq!(n3.interval.start, 12);
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = IntervalTree::new();
        t.insert(Interval::new(5, 10), 1);
        t.insert(Interval::new(5, 10), 2);
        t.insert(Interval::new(5, 10), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.stabbing(6).len(), 3);
    }

    #[test]
    fn remove_specific_entry() {
        let mut t = tree_of(&[(0, 10), (5, 15), (20, 30)]);
        assert!(t.remove(Interval::new(5, 15), 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.stabbing(7).len(), 1);
        assert!(!t.remove(Interval::new(5, 15), 1));
        assert!(!t.remove(Interval::new(999, 1000), 0));
    }

    #[test]
    fn remove_one_of_duplicates() {
        let mut t = IntervalTree::new();
        t.insert(Interval::new(5, 10), 7);
        t.insert(Interval::new(5, 10), 8);
        assert!(t.remove(Interval::new(5, 10), 8));
        assert_eq!(t.len(), 1);
        assert_eq!(t.stabbing(6)[0].payload, 7);
    }

    #[test]
    fn entries_sorted() {
        let t = tree_of(&[(20, 30), (0, 10), (5, 15)]);
        let starts: Vec<u64> = t.entries().iter().map(|e| e.interval.start).collect();
        assert_eq!(starts, vec![0, 5, 20]);
    }

    #[test]
    fn large_tree_stays_balanced_enough() {
        let mut t = IntervalTree::new();
        // adversarial sorted insertion order
        for i in 0..4096u64 {
            t.insert(Interval::new(i * 10, i * 10 + 5), i);
        }
        assert_eq!(t.len(), 4096);
        // a treap's expected height is O(log n); allow generous slack
        assert!(t.height() < 64, "height {} too large", t.height());
        assert_eq!(t.overlapping(Interval::new(0, 50)).len(), 5);
        assert_eq!(t.stabbing(40_953).len(), 1);
    }
}
