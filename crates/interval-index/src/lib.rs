//! # interval-index — 1-D substructure indexes for Graphitti
//!
//! The paper stores the annotated substructures of 1-D data (DNA / RNA / protein
//! sequences, alignment columns, …) in *a collection of interval trees*, keeping the
//! number of index structures small by sharing one tree per coordinate domain (e.g. a
//! single tree per chromosome rather than one per annotated sequence).
//!
//! This crate provides:
//!
//! * [`Interval`] — a half-open 1-D interval plus the paper's substructure operators
//!   `ifOverlap`, `intersect` and (over an index) `next`;
//! * [`IntervalTree`] — an augmented balanced interval tree with overlap / stabbing /
//!   containment / nearest-successor queries;
//! * [`DomainIntervals`] — the "collection of interval trees" keyed by domain name,
//!   which is what Graphitti core registers referents into.
//!
//! ```
//! use interval_index::{DomainIntervals, Interval};
//!
//! let mut idx = DomainIntervals::new();
//! idx.insert("chr7", Interval::new(100, 250), 1);
//! idx.insert("chr7", Interval::new(240, 400), 2);
//! idx.insert("chr8", Interval::new(100, 250), 3);
//! let hits = idx.overlapping("chr7", Interval::new(245, 246));
//! assert_eq!(hits.len(), 2);
//! ```

pub mod collection;
pub mod interval;
pub mod tree;

pub use collection::{DomainIntervals, DomainStats};
pub use interval::{
    are_consecutive_disjoint, coverage, merge_overlapping, Interval, OverlapRelation,
};
pub use tree::{Entry, IntervalTree};
