//! The "collection of interval trees" keyed by coordinate domain.
//!
//! The paper keeps the number of index structures small by sharing one interval tree
//! per coordinate domain — "a single interval tree is created per chromosome instead of
//! per annotated DNA sequence".  [`DomainIntervals`] is that collection; Graphitti core
//! maps every 1-D data object to a domain name (its chromosome, its alignment id, …)
//! when the object is registered.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::interval::Interval;
use crate::tree::{Entry, IntervalTree};

/// Summary statistics for one domain's tree (used by the index-grouping ablation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainStats {
    /// Domain name (e.g. `chr7`).
    pub domain: String,
    /// Number of stored intervals.
    pub entries: usize,
    /// Height of the underlying tree.
    pub height: usize,
}

/// A collection of interval trees, one per named coordinate domain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainIntervals {
    domains: BTreeMap<String, IntervalTree>,
}

impl DomainIntervals {
    /// Create an empty collection.
    pub fn new() -> Self {
        DomainIntervals::default()
    }

    /// Number of domains with at least one interval.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Total number of stored intervals across all domains.
    pub fn len(&self) -> usize {
        self.domains.values().map(|t| t.len()).sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert an interval with payload into a domain, creating the domain on first use.
    pub fn insert(&mut self, domain: &str, interval: Interval, payload: u64) {
        self.domains.entry(domain.to_string()).or_default().insert(interval, payload);
    }

    /// Remove an exact `(interval, payload)` entry from a domain. Empty domains are
    /// dropped so that `domain_count` reflects live domains only.
    pub fn remove(&mut self, domain: &str, interval: Interval, payload: u64) -> bool {
        let Some(tree) = self.domains.get_mut(domain) else { return false };
        let removed = tree.remove(interval, payload);
        if tree.is_empty() {
            self.domains.remove(domain);
        }
        removed
    }

    /// Entries overlapping `query` within one domain.
    pub fn overlapping(&self, domain: &str, query: Interval) -> Vec<Entry> {
        self.domains.get(domain).map(|t| t.overlapping(query)).unwrap_or_default()
    }

    /// Entries containing point `p` within one domain.
    pub fn stabbing(&self, domain: &str, p: u64) -> Vec<Entry> {
        self.domains.get(domain).map(|t| t.stabbing(p)).unwrap_or_default()
    }

    /// Entries fully contained in `query` within one domain.
    pub fn contained_in(&self, domain: &str, query: Interval) -> Vec<Entry> {
        self.domains.get(domain).map(|t| t.contained_in(query)).unwrap_or_default()
    }

    /// The `next` substructure after `after` within one domain.
    pub fn next_after(&self, domain: &str, after: Interval) -> Option<Entry> {
        self.domains.get(domain).and_then(|t| t.next_after(after))
    }

    /// All entries of a domain in ascending order.
    pub fn entries(&self, domain: &str) -> Vec<Entry> {
        self.domains.get(domain).map(|t| t.entries()).unwrap_or_default()
    }

    /// The registered domain names, sorted.
    pub fn domains(&self) -> Vec<&str> {
        self.domains.keys().map(String::as_str).collect()
    }

    /// Whether a domain exists.
    pub fn has_domain(&self, domain: &str) -> bool {
        self.domains.contains_key(domain)
    }

    /// Per-domain statistics, sorted by domain name.
    pub fn stats(&self) -> Vec<DomainStats> {
        self.domains
            .iter()
            .map(|(name, tree)| DomainStats {
                domain: name.clone(),
                entries: tree.len(),
                height: tree.height(),
            })
            .collect()
    }

    /// Search every domain for entries overlapping `query`; returns `(domain, entry)`
    /// pairs. Used when a query does not pin down the coordinate domain.
    pub fn overlapping_all_domains(&self, query: Interval) -> Vec<(String, Entry)> {
        let mut out = Vec::new();
        for (name, tree) in &self.domains {
            for e in tree.overlapping(query) {
                out.push((name.clone(), e));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DomainIntervals {
        let mut d = DomainIntervals::new();
        d.insert("chr1", Interval::new(0, 100), 1);
        d.insert("chr1", Interval::new(50, 150), 2);
        d.insert("chr2", Interval::new(0, 100), 3);
        d
    }

    #[test]
    fn insert_and_count() {
        let d = sample();
        assert_eq!(d.domain_count(), 2);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.domains(), vec!["chr1", "chr2"]);
        assert!(d.has_domain("chr1"));
        assert!(!d.has_domain("chrX"));
    }

    #[test]
    fn queries_are_domain_scoped() {
        let d = sample();
        assert_eq!(d.overlapping("chr1", Interval::new(60, 70)).len(), 2);
        assert_eq!(d.overlapping("chr2", Interval::new(60, 70)).len(), 1);
        assert_eq!(d.overlapping("chrX", Interval::new(60, 70)).len(), 0);
        assert_eq!(d.stabbing("chr1", 120).len(), 1);
        assert_eq!(d.contained_in("chr1", Interval::new(0, 120)).len(), 1);
        assert!(d.next_after("chr2", Interval::new(0, 100)).is_none());
    }

    #[test]
    fn cross_domain_search() {
        let d = sample();
        let hits = d.overlapping_all_domains(Interval::new(0, 10));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, "chr1");
        assert_eq!(hits[1].0, "chr2");
    }

    #[test]
    fn remove_drops_empty_domains() {
        let mut d = sample();
        assert!(d.remove("chr2", Interval::new(0, 100), 3));
        assert_eq!(d.domain_count(), 1);
        assert!(!d.has_domain("chr2"));
        assert!(!d.remove("chr2", Interval::new(0, 100), 3));
        assert!(!d.remove("chr1", Interval::new(0, 100), 999));
    }

    #[test]
    fn stats_report_per_domain() {
        let d = sample();
        let stats = d.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].domain, "chr1");
        assert_eq!(stats[0].entries, 2);
        assert!(stats[0].height >= 1);
    }

    #[test]
    fn entries_listing() {
        let d = sample();
        let e = d.entries("chr1");
        assert_eq!(e.len(), 2);
        assert!(d.entries("nope").is_empty());
    }
}
