//! Property tests: the interval tree must agree with a brute-force scan, and the
//! algebraic operators must satisfy their invariants.

use interval_index::{Interval, IntervalTree};
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0u64..1000, 1u64..50).prop_map(|(s, len)| Interval::new(s, s + len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn overlap_is_symmetric(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(a.if_overlap(&b), b.if_overlap(&a));
    }

    #[test]
    fn intersect_is_contained_and_consistent(a in arb_interval(), b in arb_interval()) {
        let i = a.intersect(&b);
        prop_assert_eq!(!i.is_empty(), a.if_overlap(&b));
        if !i.is_empty() {
            prop_assert!(a.contains(&i) || a == i);
            prop_assert!(b.contains(&i) || b == i);
            prop_assert!(i.len() <= a.len() && i.len() <= b.len());
        }
    }

    #[test]
    fn hull_contains_both(a in arb_interval(), b in arb_interval()) {
        let h = a.hull(&b);
        prop_assert!(h.contains(&a));
        prop_assert!(h.contains(&b));
    }

    #[test]
    fn tree_overlap_matches_bruteforce(
        spans in prop::collection::vec(arb_interval(), 0..200),
        query in arb_interval(),
    ) {
        let mut tree = IntervalTree::new();
        for (i, iv) in spans.iter().enumerate() {
            tree.insert(*iv, i as u64);
        }
        let mut expected: Vec<u64> = spans
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.if_overlap(&query))
            .map(|(i, _)| i as u64)
            .collect();
        let mut got: Vec<u64> = tree.overlapping(query).iter().map(|e| e.payload).collect();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn tree_next_matches_bruteforce(
        spans in prop::collection::vec(arb_interval(), 1..150),
        after in arb_interval(),
    ) {
        let mut tree = IntervalTree::new();
        for (i, iv) in spans.iter().enumerate() {
            tree.insert(*iv, i as u64);
        }
        let expected = spans
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.start >= after.end)
            .map(|(i, iv)| (iv.start, iv.end, i as u64))
            .min();
        let got = tree.next_after(after).map(|e| (e.interval.start, e.interval.end, e.payload));
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn tree_remove_then_query_consistent(
        spans in prop::collection::vec(arb_interval(), 1..100),
        remove_idx in 0usize..100,
        query in arb_interval(),
    ) {
        let mut tree = IntervalTree::new();
        for (i, iv) in spans.iter().enumerate() {
            tree.insert(*iv, i as u64);
        }
        let idx = remove_idx % spans.len();
        prop_assert!(tree.remove(spans[idx], idx as u64));
        prop_assert_eq!(tree.len(), spans.len() - 1);
        let mut expected: Vec<u64> = spans
            .iter()
            .enumerate()
            .filter(|(i, iv)| *i != idx && iv.if_overlap(&query))
            .map(|(i, _)| i as u64)
            .collect();
        let mut got: Vec<u64> = tree.overlapping(query).iter().map(|e| e.payload).collect();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }
}
