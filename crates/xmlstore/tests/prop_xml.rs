//! Property tests: serialize → parse must round-trip arbitrary element trees, and the
//! keyword index must agree with a direct text scan.

use proptest::prelude::*;
use xmlstore::{parse_document, ContentStore, Document, DublinCore, Element};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}(:[a-z][a-z0-9]{0,6})?"
}

fn arb_text() -> impl Strategy<Value = String> {
    // printable text including characters that require escaping
    "[ -~]{0,24}".prop_map(|s| s.replace(']', " "))
}

fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf = (arb_name(), arb_text(), prop::collection::vec((arb_name(), arb_text()), 0..3))
        .prop_map(|(name, text, attrs)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                // attribute names must be unique to round-trip deterministically
                if e.attr(&k).is_none() {
                    e.set_attr(k, v);
                }
            }
            if !text.trim().is_empty() {
                e.push_text(text);
            }
            e
        });
    if depth == 0 {
        leaf.boxed()
    } else {
        (leaf, prop::collection::vec(arb_element(depth - 1), 0..3))
            .prop_map(|(mut e, children)| {
                for c in children {
                    e.children.push(xmlstore::XmlNode::Element(c));
                }
                e
            })
            .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_parse_roundtrip(root in arb_element(3)) {
        let doc = Document::new(root);
        let xml = doc.to_xml();
        let parsed = parse_document(&xml).expect("own output must parse");
        prop_assert_eq!(parsed, doc);
    }

    #[test]
    fn keyword_index_matches_scan(
        descriptions in prop::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,5}", 1..20),
        probe in "[a-z]{1,8}",
    ) {
        let mut store = ContentStore::new();
        let mut docs = Vec::new();
        for d in &descriptions {
            let doc = DublinCore::new().description(d.clone()).to_document();
            let id = store.insert(doc.clone());
            docs.push((id, doc));
        }
        let mut expected: Vec<_> = docs
            .iter()
            .filter(|(_, doc)| {
                doc.root
                    .deep_text()
                    .split_whitespace()
                    .any(|w| w == probe)
            })
            .map(|(id, _)| *id)
            .collect();
        let mut got = store.with_keyword(&probe);
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn dublin_core_roundtrip(
        title in "[A-Za-z0-9][A-Za-z0-9 ]{0,29}",
        desc in "([A-Za-z0-9][A-Za-z0-9 .,]{0,59})?",
        subjects in prop::collection::vec("[a-z]{1,12}", 0..4),
    ) {
        let mut dc = DublinCore::new().title(title).description(desc);
        for s in subjects {
            dc = dc.subject(s);
        }
        let xml = dc.to_document().to_xml();
        let parsed = parse_document(&xml).unwrap();
        prop_assert_eq!(DublinCore::from_document(&parsed), dc);
    }
}
