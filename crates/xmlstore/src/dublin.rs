//! Dublin Core support.
//!
//! The paper specifies that annotation contents are XML documents "whose elements
//! consist of Dublin core attributes and other user-defined tags".  [`DublinCore`] is a
//! typed builder for the fifteen DCMES elements plus free-form user tags; it produces
//! (and can be recovered from) the [`Element`] tree the content store persists.

use serde::{Deserialize, Serialize};

use crate::model::{Document, Element};

/// The fifteen elements of the Dublin Core Metadata Element Set, in canonical order.
pub const DC_ELEMENTS: [&str; 15] = [
    "title",
    "creator",
    "subject",
    "description",
    "publisher",
    "contributor",
    "date",
    "type",
    "format",
    "identifier",
    "source",
    "language",
    "relation",
    "coverage",
    "rights",
];

/// A typed Dublin Core record plus user-defined tags, convertible to and from the XML
/// annotation document layout used by Graphitti.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DublinCore {
    /// `dc:*` fields as `(element, value)` pairs in insertion order; an element may
    /// repeat (e.g. several subjects).
    pub fields: Vec<(String, String)>,
    /// User-defined tags as `(tag, value)` pairs.
    pub user_tags: Vec<(String, String)>,
}

impl DublinCore {
    /// An empty record.
    pub fn new() -> Self {
        DublinCore::default()
    }

    /// Add a Dublin Core field. Unknown element names are accepted but flagged by
    /// [`is_core_element`].
    pub fn field(mut self, element: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.push((element.into(), value.into()));
        self
    }

    /// Add a user-defined tag.
    pub fn user_tag(mut self, tag: impl Into<String>, value: impl Into<String>) -> Self {
        self.user_tags.push((tag.into(), value.into()));
        self
    }

    /// Convenience: set `dc:title`.
    pub fn title(self, value: impl Into<String>) -> Self {
        self.field("title", value)
    }

    /// Convenience: set `dc:creator`.
    pub fn creator(self, value: impl Into<String>) -> Self {
        self.field("creator", value)
    }

    /// Convenience: set `dc:description` (the annotation comment body).
    pub fn description(self, value: impl Into<String>) -> Self {
        self.field("description", value)
    }

    /// Convenience: add a `dc:subject` keyword.
    pub fn subject(self, value: impl Into<String>) -> Self {
        self.field("subject", value)
    }

    /// Convenience: set `dc:date` (ISO-8601 string; Graphitti does not interpret it).
    pub fn date(self, value: impl Into<String>) -> Self {
        self.field("date", value)
    }

    /// First value of a Dublin Core element, if present.
    pub fn get(&self, element: &str) -> Option<&str> {
        self.fields.iter().find(|(e, _)| e == element).map(|(_, v)| v.as_str())
    }

    /// All values of a Dublin Core element.
    pub fn get_all(&self, element: &str) -> Vec<&str> {
        self.fields.iter().filter(|(e, _)| e == element).map(|(_, v)| v.as_str()).collect()
    }

    /// Whether an element name belongs to the DCMES fifteen.
    pub fn is_core_element(element: &str) -> bool {
        DC_ELEMENTS.contains(&element)
    }

    /// Render as the `<annotation>` document layout Graphitti stores:
    /// `dc:*` children first, then a `<tags>` section of user-defined tags.
    pub fn to_document(&self) -> Document {
        let mut root = Element::new("annotation");
        for (e, v) in &self.fields {
            root.children.push(crate::model::XmlNode::Element(
                Element::new(format!("dc:{e}")).with_text(v.clone()),
            ));
        }
        if !self.user_tags.is_empty() {
            let mut tags = Element::new("tags");
            for (t, v) in &self.user_tags {
                tags.children.push(crate::model::XmlNode::Element(
                    Element::new(t.clone()).with_text(v.clone()),
                ));
            }
            root.children.push(crate::model::XmlNode::Element(tags));
        }
        Document::new(root)
    }

    /// Recover a record from a stored annotation document (inverse of
    /// [`to_document`](Self::to_document); unknown children are treated as user tags).
    pub fn from_document(doc: &Document) -> DublinCore {
        let mut dc = DublinCore::new();
        for child in doc.root.child_elements() {
            if let Some(stripped) = child.name.strip_prefix("dc:") {
                dc.fields.push((stripped.to_string(), child.text()));
            } else if child.name == "tags" {
                for tag in child.child_elements() {
                    dc.user_tags.push((tag.name.clone(), tag.text()));
                }
            } else {
                dc.user_tags.push((child.name.clone(), child.text()));
            }
        }
        dc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DublinCore {
        DublinCore::new()
            .title("Cleavage site in HA")
            .creator("sandeep")
            .description("polybasic cleavage site suggests high pathogenicity")
            .subject("protease")
            .subject("influenza")
            .date("2008-02-11")
            .user_tag("confidence", "high")
            .user_tag("lab", "SDSC")
    }

    #[test]
    fn builder_and_getters() {
        let dc = sample();
        assert_eq!(dc.get("title"), Some("Cleavage site in HA"));
        assert_eq!(dc.get("subject"), Some("protease"));
        assert_eq!(dc.get_all("subject"), vec!["protease", "influenza"]);
        assert_eq!(dc.get("missing"), None);
        assert_eq!(dc.user_tags.len(), 2);
    }

    #[test]
    fn core_element_membership() {
        assert!(DublinCore::is_core_element("title"));
        assert!(DublinCore::is_core_element("rights"));
        assert!(!DublinCore::is_core_element("confidence"));
        assert_eq!(DC_ELEMENTS.len(), 15);
    }

    #[test]
    fn document_roundtrip() {
        let dc = sample();
        let doc = dc.to_document();
        assert_eq!(doc.root.name, "annotation");
        assert_eq!(doc.root.child("dc:title").unwrap().text(), "Cleavage site in HA");
        assert_eq!(doc.root.child("tags").unwrap().child_elements().count(), 2);
        let back = DublinCore::from_document(&doc);
        assert_eq!(back, dc);
    }

    #[test]
    fn roundtrip_through_xml_text() {
        let dc = sample();
        let xml = dc.to_document().to_xml();
        let parsed = crate::parse::parse_document(&xml).unwrap();
        let back = DublinCore::from_document(&parsed);
        assert_eq!(back, dc);
    }

    #[test]
    fn unknown_children_become_user_tags() {
        let doc = crate::parse::parse_document(
            "<annotation><dc:title>t</dc:title><extra>v</extra></annotation>",
        )
        .unwrap();
        let dc = DublinCore::from_document(&doc);
        assert_eq!(dc.get("title"), Some("t"));
        assert_eq!(dc.user_tags, vec![("extra".to_string(), "v".to_string())]);
    }

    #[test]
    fn empty_record_document() {
        let dc = DublinCore::new();
        let doc = dc.to_document();
        assert_eq!(doc.root.child_elements().count(), 0);
        assert_eq!(DublinCore::from_document(&doc), dc);
    }
}
