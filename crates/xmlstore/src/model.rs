//! The XML element tree used for annotation contents.
//!
//! The model is deliberately simple: a [`Document`] wraps a root [`Element`]; an element
//! has a name, ordered attributes and ordered child [`XmlNode`]s (elements, text or
//! comments).  Namespaces are carried as literal prefixes in names (`dc:creator`), which
//! is exactly how the paper's annotation documents use Dublin Core.

use serde::{Deserialize, Serialize};

/// Split text into the tokens the keyword index stores: maximal runs of alphanumerics
/// plus `.` `_` `-`.  Every consumer of the keyword index (document indexing, phrase
/// search, per-document probes, the query planner's document-frequency estimates) must
/// tokenize through this one function so their notions of "keyword" can never drift
/// apart.  Lowercasing is the caller's concern.
pub fn keyword_tokens(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_alphanumeric() && c != '.' && c != '_' && c != '-')
        .filter(|t| !t.is_empty())
}

/// A node in an element's child list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum XmlNode {
    /// A nested element.
    Element(Element),
    /// A text run (entity references already resolved).
    Text(String),
    /// A comment (`<!-- ... -->`), preserved for round-tripping.
    Comment(String),
}

impl XmlNode {
    /// The nested element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            XmlNode::Element(e) => Some(e),
            _ => None,
        }
    }

    /// The text content, if this node is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            XmlNode::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: name, attributes and children.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Element {
    /// Element name, possibly prefixed (`dc:title`).
    pub name: String,
    /// Attributes in document order as `(name, value)` pairs.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl Element {
    /// Create an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new() }
    }

    /// Builder-style: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Builder-style: add a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Builder-style: add an element child.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Add an element child in place and return a mutable reference to it.
    pub fn push_child(&mut self, child: Element) -> &mut Element {
        self.children.push(XmlNode::Element(child));
        match self.children.last_mut() {
            Some(XmlNode::Element(e)) => e,
            _ => unreachable!("just pushed an element"),
        }
    }

    /// Add a text child in place.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(XmlNode::Text(text.into()));
    }

    /// Value of an attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Set (or replace) an attribute value.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Direct element children.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(XmlNode::as_element)
    }

    /// First direct child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All direct child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// The concatenated text of this element's direct text children (not descendants).
    pub fn text(&self) -> String {
        self.children.iter().filter_map(XmlNode::as_text).collect::<Vec<_>>().join("")
    }

    /// The concatenated text of this element and all descendants, in document order.
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for child in &self.children {
            match child {
                XmlNode::Text(t) => out.push_str(t),
                XmlNode::Element(e) => e.collect_text(out),
                XmlNode::Comment(_) => {}
            }
        }
    }

    /// Depth-first iterator over this element and every descendant element.
    pub fn descendants(&self) -> Vec<&Element> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Element, out: &mut Vec<&'a Element>) {
            out.push(e);
            for c in e.child_elements() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Number of elements in the subtree rooted here (including `self`).
    pub fn element_count(&self) -> usize {
        1 + self.child_elements().map(Element::element_count).sum::<usize>()
    }

    /// Serialize this element (and its subtree) to a string.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out);
        out
    }

    fn write_xml(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for child in &self.children {
            match child {
                XmlNode::Element(e) => e.write_xml(out),
                XmlNode::Text(t) => out.push_str(&escape(t)),
                XmlNode::Comment(c) => {
                    out.push_str("<!--");
                    out.push_str(c);
                    out.push_str("-->");
                }
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

/// A parsed annotation document: the root element (a prolog, if present, is discarded).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// The root element.
    pub root: Element,
}

impl Document {
    /// Wrap a root element into a document.
    pub fn new(root: Element) -> Self {
        Document { root }
    }

    /// Serialize to an XML string with a standard prolog.
    pub fn to_xml(&self) -> String {
        format!("<?xml version=\"1.0\" encoding=\"UTF-8\"?>{}", self.root.to_xml())
    }

    /// All text anywhere in the document, lowercased and split into keywords — feeds
    /// the content store's keyword index.  Tokens are extracted per text node so that
    /// words from adjacent elements never merge into one keyword.
    pub fn keywords(&self) -> Vec<String> {
        fn walk(element: &Element, words: &mut Vec<String>) {
            for child in &element.children {
                match child {
                    XmlNode::Text(t) => {
                        for w in keyword_tokens(&t.to_lowercase()) {
                            words.push(w.to_string());
                        }
                    }
                    XmlNode::Element(e) => walk(e, words),
                    XmlNode::Comment(_) => {}
                }
            }
        }
        let mut words = Vec::new();
        walk(&self.root, &mut words);
        words.sort();
        words.dedup();
        words
    }
}

/// Escape the five predefined XML entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("annotation")
            .with_attr("id", "ann-1")
            .with_child(Element::new("dc:title").with_text("cleavage site"))
            .with_child(Element::new("dc:creator").with_text("condit"))
            .with_child(
                Element::new("body")
                    .with_attr("lang", "en")
                    .with_text("polybasic cleavage site in HA ")
                    .with_child(Element::new("em").with_text("protease")),
            )
    }

    #[test]
    fn builders_and_accessors() {
        let e = sample();
        assert_eq!(e.name, "annotation");
        assert_eq!(e.attr("id"), Some("ann-1"));
        assert_eq!(e.attr("missing"), None);
        assert_eq!(e.child("dc:title").unwrap().text(), "cleavage site");
        assert_eq!(e.children_named("dc:creator").count(), 1);
        assert_eq!(e.child_elements().count(), 3);
        assert_eq!(e.element_count(), 5);
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("x").with_attr("a", "1");
        e.set_attr("a", "2");
        e.set_attr("b", "3");
        assert_eq!(e.attr("a"), Some("2"));
        assert_eq!(e.attr("b"), Some("3"));
        assert_eq!(e.attributes.len(), 2);
    }

    #[test]
    fn text_vs_deep_text() {
        let e = sample();
        let body = e.child("body").unwrap();
        assert_eq!(body.text(), "polybasic cleavage site in HA ");
        assert_eq!(body.deep_text(), "polybasic cleavage site in HA protease");
        assert!(e.deep_text().contains("condit"));
    }

    #[test]
    fn descendants_walk() {
        let e = sample();
        let names: Vec<&str> = e.descendants().iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["annotation", "dc:title", "dc:creator", "body", "em"]);
    }

    #[test]
    fn serialization_escapes() {
        let e = Element::new("note").with_attr("q", "a<b & \"c\"").with_text("x < y & z");
        let xml = e.to_xml();
        assert_eq!(xml, "<note q=\"a&lt;b &amp; &quot;c&quot;\">x &lt; y &amp; z</note>");
    }

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(Element::new("br").to_xml(), "<br/>");
    }

    #[test]
    fn document_keywords() {
        let doc = Document::new(sample());
        let kw = doc.keywords();
        assert!(kw.contains(&"protease".to_string()));
        assert!(kw.contains(&"cleavage".to_string()));
        assert!(kw.contains(&"condit".to_string()));
        // deduplicated and lowercased
        assert!(kw.iter().all(|w| w.chars().all(|c| !c.is_uppercase())));
        let mut sorted = kw.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(kw, sorted);
    }

    #[test]
    fn document_to_xml_has_prolog() {
        let doc = Document::new(Element::new("a"));
        assert!(doc.to_xml().starts_with("<?xml"));
        assert!(doc.to_xml().ends_with("<a/>"));
    }

    #[test]
    fn push_child_returns_mutable_handle() {
        let mut e = Element::new("root");
        {
            let child = e.push_child(Element::new("k"));
            child.push_text("v");
        }
        assert_eq!(e.child("k").unwrap().text(), "v");
    }
}
