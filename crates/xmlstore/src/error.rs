//! Error type for XML parsing and path evaluation.

use std::fmt;

/// Errors raised while parsing XML or evaluating path expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The document ended unexpectedly.
    UnexpectedEof {
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// A close tag did not match the open tag.
    MismatchedTag {
        /// Name of the element being closed.
        open: String,
        /// Name found in the close tag.
        close: String,
    },
    /// A syntax error at a byte offset.
    Syntax {
        /// Byte offset into the input.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// An unknown entity reference such as `&foo;`.
    UnknownEntity(String),
    /// The document had no root element.
    NoRootElement,
    /// Trailing non-whitespace content after the root element.
    TrailingContent,
    /// A path expression could not be parsed.
    BadPathExpression(String),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of document while looking for {expected}")
            }
            XmlError::MismatchedTag { open, close } => {
                write!(f, "mismatched tags: <{open}> closed by </{close}>")
            }
            XmlError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XmlError::UnknownEntity(e) => write!(f, "unknown entity reference &{e};"),
            XmlError::NoRootElement => write!(f, "document has no root element"),
            XmlError::TrailingContent => write!(f, "content found after the root element"),
            XmlError::BadPathExpression(p) => write!(f, "cannot parse path expression: {p}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(XmlError::UnexpectedEof { expected: "close tag" }
            .to_string()
            .contains("close tag"));
        assert!(XmlError::MismatchedTag { open: "a".into(), close: "b".into() }
            .to_string()
            .contains("<a>"));
        assert!(XmlError::Syntax { offset: 4, message: "oops".into() }
            .to_string()
            .contains("byte 4"));
        assert!(XmlError::UnknownEntity("x".into()).to_string().contains("&x;"));
        assert!(XmlError::BadPathExpression("//".into()).to_string().contains("path"));
    }
}
