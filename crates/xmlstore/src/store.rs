//! The annotation-content collection store.
//!
//! "The collection of all annotations constitutes a database of XML documents" — this
//! module is that database.  Documents are stored by dense id with two inverted
//! indexes:
//!
//! * a **keyword index** over every text token in a document (supports the substring /
//!   keyword conditions of queries such as *annotations containing "protein TP53"*), and
//! * an **element-path index** mapping `element-name → documents containing it`, which
//!   prunes path-expression evaluation across the collection.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::model::Document;
use crate::path::PathExpr;

/// Identifier of a stored annotation document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u64);

/// The XML document collection with its inverted indexes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ContentStore {
    docs: BTreeMap<DocId, Document>,
    keyword_index: HashMap<String, BTreeSet<DocId>>,
    element_index: HashMap<String, BTreeSet<DocId>>,
    /// Lowercased full text of every document, maintained on insert / remove /
    /// update.  Phrase search verifies keyword-index candidates by substring
    /// probe; without this cache every probe re-walks the document tree and
    /// re-lowercases its text — the dominant allocation cost of the
    /// seed-content phase on phrase-heavy query mixes.
    lowered_text: BTreeMap<DocId, String>,
    next_id: u64,
}

impl ContentStore {
    /// Create an empty store.
    pub fn new() -> Self {
        ContentStore::default()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Insert a document and return its id.
    pub fn insert(&mut self, doc: Document) -> DocId {
        let id = DocId(self.next_id);
        self.next_id += 1;
        for kw in doc.keywords() {
            self.keyword_index.entry(kw).or_default().insert(id);
        }
        for element in doc.root.descendants() {
            self.element_index.entry(element.name.clone()).or_default().insert(id);
        }
        self.lowered_text.insert(id, doc.root.deep_text().to_lowercase());
        self.docs.insert(id, doc);
        id
    }

    /// Remove a document; returns it if it existed.
    pub fn remove(&mut self, id: DocId) -> Option<Document> {
        let doc = self.docs.remove(&id)?;
        for kw in doc.keywords() {
            if let Some(set) = self.keyword_index.get_mut(&kw) {
                set.remove(&id);
                if set.is_empty() {
                    self.keyword_index.remove(&kw);
                }
            }
        }
        for element in doc.root.descendants() {
            if let Some(set) = self.element_index.get_mut(&element.name) {
                set.remove(&id);
                if set.is_empty() {
                    self.element_index.remove(&element.name);
                }
            }
        }
        self.lowered_text.remove(&id);
        Some(doc)
    }

    /// Fetch a document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(&id)
    }

    /// Replace a document in place (re-indexing it). Returns false when the id is
    /// unknown.
    pub fn update(&mut self, id: DocId, doc: Document) -> bool {
        if !self.docs.contains_key(&id) {
            return false;
        }
        self.remove(id);
        // re-insert under the same id
        for kw in doc.keywords() {
            self.keyword_index.entry(kw).or_default().insert(id);
        }
        for element in doc.root.descendants() {
            self.element_index.entry(element.name.clone()).or_default().insert(id);
        }
        self.lowered_text.insert(id, doc.root.deep_text().to_lowercase());
        self.docs.insert(id, doc);
        true
    }

    /// All stored document ids in ascending order.
    pub fn ids(&self) -> Vec<DocId> {
        self.docs.keys().copied().collect()
    }

    /// Documents whose text contains the keyword (single lowercase token, exact match
    /// against the keyword index).
    pub fn with_keyword(&self, keyword: &str) -> Vec<DocId> {
        self.keyword_index
            .get(&keyword.to_lowercase())
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Documents containing **all** the given keywords.
    pub fn with_all_keywords(&self, keywords: &[&str]) -> Vec<DocId> {
        if keywords.is_empty() {
            return self.ids();
        }
        let mut sets: Vec<&BTreeSet<DocId>> = Vec::with_capacity(keywords.len());
        for kw in keywords {
            match self.keyword_index.get(&kw.to_lowercase()) {
                Some(s) => sets.push(s),
                None => return Vec::new(),
            }
        }
        // intersect starting from the smallest set
        sets.sort_by_key(|s| s.len());
        let (first, rest) = sets.split_first().expect("non-empty");
        first.iter().copied().filter(|id| rest.iter().all(|s| s.contains(id))).collect()
    }

    /// Documents whose full text contains `phrase` as a (case-insensitive) substring.
    /// The keyword index narrows the candidates first; documents are then verified.
    pub fn containing_phrase(&self, phrase: &str) -> Vec<DocId> {
        let lowered = phrase.to_lowercase();
        let tokens: Vec<&str> = crate::keyword_tokens(&lowered).collect();
        let candidates =
            if tokens.is_empty() { self.ids() } else { self.with_all_keywords(&tokens) };
        candidates
            .into_iter()
            .filter(|id| self.lowered_text.get(id).is_some_and(|t| t.contains(&lowered)))
            .collect()
    }

    /// Documents containing at least one element with the given name.
    pub fn with_element(&self, element_name: &str) -> Vec<DocId> {
        self.element_index
            .get(element_name)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Evaluate a path expression across the collection, returning matching document
    /// ids.  When the expression's last step names an element, the element-path index
    /// prunes the candidate set before evaluation.
    pub fn select(&self, expr: &PathExpr) -> Vec<DocId> {
        let candidates: Vec<DocId> = match expr.steps.last().map(|s| &s.name) {
            Some(crate::path::NameTest::Named(name)) => self.with_element(name),
            _ => self.ids(),
        };
        candidates.into_iter().filter(|id| expr.matches(&self.docs[id])).collect()
    }

    /// Evaluate a path expression and return `(doc, values)` for every matching
    /// document — the "XQuery fragment retrieval" operation of the query processor.
    pub fn select_values(&self, expr: &PathExpr) -> Vec<(DocId, Vec<String>)> {
        self.select(expr).into_iter().map(|id| (id, expr.eval_strings(&self.docs[&id]))).collect()
    }

    /// Number of documents matching a path expression (the XQuery `count()` of a
    /// collection query).
    pub fn count_matching(&self, expr: &PathExpr) -> usize {
        self.select(expr).len()
    }

    /// Evaluate a *union* of path expressions across the collection: documents matching
    /// any of the expressions (deduplicated, ascending id order).
    pub fn select_union(&self, exprs: &[PathExpr]) -> Vec<DocId> {
        let mut set: BTreeSet<DocId> = BTreeSet::new();
        for expr in exprs {
            set.extend(self.select(expr));
        }
        set.into_iter().collect()
    }

    /// Number of distinct indexed keywords (diagnostics).
    pub fn keyword_count(&self) -> usize {
        self.keyword_index.len()
    }

    // --- membership probes and document frequencies ---
    //
    // The pipelined query executor verifies *candidate* documents against later
    // subqueries instead of recomputing full matching sets, and the planner estimates
    // selectivity from document frequencies. Both need per-document probes that cost
    // O(log n) index lookups, not collection scans.

    /// Document frequency of a keyword: how many documents contain the token.
    pub fn keyword_df(&self, keyword: &str) -> usize {
        self.keyword_index.get(&keyword.to_lowercase()).map_or(0, BTreeSet::len)
    }

    /// Document frequency of an element name: how many documents contain the element.
    pub fn element_df(&self, element_name: &str) -> usize {
        self.element_index.get(element_name).map_or(0, BTreeSet::len)
    }

    /// Whether document `id` contains the keyword (single index probe).
    pub fn doc_has_keyword(&self, id: DocId, keyword: &str) -> bool {
        self.keyword_index.get(&keyword.to_lowercase()).is_some_and(|set| set.contains(&id))
    }

    /// Whether document `id` contains **all** the given keywords.
    pub fn doc_has_all_keywords(&self, id: DocId, keywords: &[&str]) -> bool {
        keywords.iter().all(|kw| self.doc_has_keyword(id, kw))
    }

    /// Whether document `id`'s full text contains `phrase` as a case-insensitive
    /// substring. Token probes against the keyword index short-circuit before the
    /// substring check, mirroring [`containing_phrase`](Self::containing_phrase).
    pub fn doc_contains_phrase(&self, id: DocId, phrase: &str) -> bool {
        let lowered = phrase.to_lowercase();
        let tokens: Vec<&str> = crate::keyword_tokens(&lowered).collect();
        if !tokens.iter().all(|t| self.doc_has_keyword(id, t)) {
            return false;
        }
        self.lowered_text.get(&id).is_some_and(|t| t.contains(&lowered))
    }

    /// Whether document `id` matches a path expression.
    pub fn doc_matches(&self, id: DocId, expr: &PathExpr) -> bool {
        self.docs.get(&id).is_some_and(|doc| expr.matches(doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dublin::DublinCore;
    use crate::parse::parse_document;

    fn store() -> (ContentStore, DocId, DocId, DocId) {
        let mut s = ContentStore::new();
        let a = s.insert(
            DublinCore::new()
                .title("TP53 expression in cerebellum")
                .description("strong staining for protein TP53 in the Deep Cerebellar nuclei")
                .creator("martone")
                .to_document(),
        );
        let b = s.insert(
            DublinCore::new()
                .title("protease motif")
                .description("protease cleavage site found in segment 4")
                .creator("gupta")
                .to_document(),
        );
        let c = s.insert(
            parse_document(
                "<annotation><note priority=\"low\">routine follow-up</note></annotation>",
            )
            .unwrap(),
        );
        (s, a, b, c)
    }

    #[test]
    fn insert_get_remove() {
        let (mut s, a, b, c) = store();
        assert_eq!(s.len(), 3);
        assert!(s.get(a).is_some());
        assert!(s.remove(b).is_some());
        assert_eq!(s.len(), 2);
        assert!(s.get(b).is_none());
        assert!(s.remove(b).is_none());
        assert!(!s.is_empty());
        assert_eq!(s.ids(), vec![a, c]);
    }

    #[test]
    fn keyword_search() {
        let (s, a, b, _) = store();
        assert_eq!(s.with_keyword("tp53"), vec![a]);
        assert_eq!(s.with_keyword("TP53"), vec![a]);
        assert_eq!(s.with_keyword("protease"), vec![b]);
        assert!(s.with_keyword("nonexistent").is_empty());
        assert_eq!(s.with_all_keywords(&["protein", "tp53"]), vec![a]);
        assert!(s.with_all_keywords(&["protein", "protease"]).is_empty());
        assert_eq!(s.with_all_keywords(&[]).len(), 3);
    }

    #[test]
    fn phrase_search_requires_adjacency() {
        let (s, a, _, _) = store();
        assert_eq!(s.containing_phrase("protein TP53"), vec![a]);
        assert_eq!(s.containing_phrase("Deep Cerebellar nuclei"), vec![a]);
        assert!(s.containing_phrase("TP53 protein").is_empty());
    }

    #[test]
    fn element_index() {
        let (s, _, _, c) = store();
        assert_eq!(s.with_element("note"), vec![c]);
        assert_eq!(s.with_element("dc:title").len(), 2);
        assert!(s.with_element("missing").is_empty());
    }

    #[test]
    fn select_by_path_expression() {
        let (s, a, b, c) = store();
        let expr = PathExpr::parse("//dc:description[contains(text(), 'protease')]").unwrap();
        assert_eq!(s.select(&expr), vec![b]);
        let expr2 = PathExpr::parse("//note[@priority='low']").unwrap();
        assert_eq!(s.select(&expr2), vec![c]);
        let expr3 = PathExpr::parse("//dc:creator").unwrap();
        assert_eq!(s.select(&expr3), vec![a, b]);
    }

    #[test]
    fn select_values_returns_fragments() {
        let (s, a, _, _) = store();
        let expr = PathExpr::parse("//dc:title/text()").unwrap();
        let values = s.select_values(&expr);
        assert_eq!(values.len(), 2);
        let (id, texts) = &values[0];
        assert_eq!(*id, a);
        assert_eq!(texts[0], "TP53 expression in cerebellum");
    }

    #[test]
    fn remove_cleans_indexes() {
        let (mut s, a, _, _) = store();
        assert!(!s.with_keyword("tp53").is_empty());
        s.remove(a);
        assert!(s.with_keyword("tp53").is_empty());
        assert!(s.with_keyword("cerebellum").is_empty());
    }

    #[test]
    fn update_reindexes() {
        let (mut s, a, _, _) = store();
        let new_doc = DublinCore::new().title("replaced title about kinases").to_document();
        assert!(s.update(a, new_doc));
        assert!(s.with_keyword("tp53").is_empty());
        assert_eq!(s.with_keyword("kinases"), vec![a]);
        assert!(!s.update(DocId(999), DublinCore::new().to_document()));
    }

    #[test]
    fn phrase_cache_tracks_update_and_remove() {
        let (mut s, a, b, _) = store();
        assert_eq!(s.containing_phrase("protein TP53"), vec![a]);
        assert!(s.doc_contains_phrase(a, "protein TP53"));
        // Update replaces the cached lowered text along with the indexes.
        let new_doc =
            DublinCore::new().title("now about protein TP53 binding kinetics").to_document();
        assert!(s.update(b, new_doc));
        assert_eq!(s.containing_phrase("protein TP53"), vec![a, b]);
        assert!(s.doc_contains_phrase(b, "protein tp53 binding"));
        assert!(!s.doc_contains_phrase(b, "protease cleavage"));
        // Remove drops the cache entry: the doc stops matching any phrase.
        s.remove(a);
        assert_eq!(s.containing_phrase("protein TP53"), vec![b]);
        assert!(!s.doc_contains_phrase(a, "protein TP53"));
    }

    #[test]
    fn keyword_count_diagnostic() {
        let (s, ..) = store();
        assert!(s.keyword_count() > 10);
    }

    #[test]
    fn count_and_union() {
        let (s, a, b, _) = store();
        let creators = PathExpr::parse("//dc:creator").unwrap();
        assert_eq!(s.count_matching(&creators), 2);
        let titles = PathExpr::parse("//dc:title").unwrap();
        let notes = PathExpr::parse("//note").unwrap();
        let union = s.select_union(&[titles, notes]);
        assert_eq!(union.len(), 3); // two titled docs + one note doc
        let protease = PathExpr::parse("//dc:description[contains(text(), 'protease')]").unwrap();
        assert_eq!(s.select_union(&[protease]), vec![b]);
        let _ = a;
    }
}
