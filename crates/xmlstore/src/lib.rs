//! # xmlstore — the annotation-content store
//!
//! In Graphitti every annotation content is an XML document "whose elements consist of
//! Dublin Core attributes and other user-defined tags"; the collection of all
//! annotations constitutes a database of XML documents searched with XQuery.
//!
//! This crate provides the pieces of that story, built from scratch:
//!
//! * [`model`] — an XML element tree ([`Element`], [`XmlNode`]) with a serializer;
//! * [`parse`] — a small, strict XML parser (elements, attributes, text, comments,
//!   CDATA, entity references) sufficient for annotation documents;
//! * [`dublin`] — the Dublin Core element set and a typed builder for annotation
//!   documents;
//! * [`path`] — an XPath/XQuery-lite path-expression engine (child / descendant steps,
//!   wildcards, attribute and text tests, positional and `contains()` predicates);
//! * [`store`] — the document collection with keyword and element-path inverted
//!   indexes, which is what Graphitti core commits annotation contents into.

pub mod dublin;
pub mod error;
pub mod model;
pub mod parse;
pub mod path;
pub mod store;

pub use dublin::{DublinCore, DC_ELEMENTS};
pub use error::XmlError;
pub use model::{keyword_tokens, Document, Element, XmlNode};
pub use parse::parse_document;
pub use path::{NameTest, PathExpr, Predicate, Selector, Step};
pub use store::{ContentStore, DocId};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, XmlError>;
