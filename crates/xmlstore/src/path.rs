//! An XPath/XQuery-lite path-expression engine.
//!
//! Graphitti's query processor embeds "XQuery fragments to retrieve fragments of
//! annotation" and substring conditions on annotation contents.  This module implements
//! the required subset:
//!
//! * absolute paths with child (`/name`) and descendant-or-self (`//name`) steps,
//! * the wildcard step `*`,
//! * predicates: positional (`[2]`), attribute equality (`[@id='a1']`),
//!   `contains(text(), 'word')` and `contains(., 'word')` (deep text),
//! * terminal value selectors `text()` and `@attr`.
//!
//! ```
//! use xmlstore::{parse_document, PathExpr};
//!
//! let doc = parse_document("<annotation><dc:subject>protease</dc:subject></annotation>").unwrap();
//! let expr = PathExpr::parse("/annotation/dc:subject/text()").unwrap();
//! assert_eq!(expr.eval_strings(&doc), vec!["protease"]);
//! ```

use serde::{Deserialize, Serialize};

use crate::error::XmlError;
use crate::model::{Document, Element};
use crate::Result;

/// A name test in a step: a literal name or the wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NameTest {
    /// Match any element name.
    Any,
    /// Match a specific element name (including any prefix, e.g. `dc:subject`).
    Named(String),
}

impl NameTest {
    fn matches(&self, element: &Element) -> bool {
        match self {
            NameTest::Any => true,
            NameTest::Named(n) => &element.name == n,
        }
    }
}

/// A predicate attached to a step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// `[n]` — keep only the n-th match (1-based, per XPath convention).
    Position(usize),
    /// `[last()]` — keep only the final match.
    Last,
    /// `[@name='value']` — attribute equality.
    AttrEquals {
        /// Attribute name.
        name: String,
        /// Required value.
        value: String,
    },
    /// `[@name]` — attribute existence.
    HasAttr(String),
    /// `[contains(text(), 'needle')]` — substring of the element's direct text.
    ContainsText(String),
    /// `[contains(., 'needle')]` — substring of the element's deep text.
    ContainsDeep(String),
    /// `[starts-with(text(), 'prefix')]`.
    StartsWith(String),
    /// `[ends-with(text(), 'suffix')]`.
    EndsWith(String),
}

impl Predicate {
    fn keep(&self, element: &Element, position: usize, total: usize) -> bool {
        match self {
            Predicate::Position(n) => position == *n,
            Predicate::Last => position == total,
            Predicate::AttrEquals { name, value } => element.attr(name) == Some(value.as_str()),
            Predicate::HasAttr(name) => element.attr(name).is_some(),
            Predicate::ContainsText(needle) => element.text().contains(needle),
            Predicate::ContainsDeep(needle) => element.deep_text().contains(needle),
            Predicate::StartsWith(prefix) => element.text().starts_with(prefix.as_str()),
            Predicate::EndsWith(suffix) => element.text().ends_with(suffix.as_str()),
        }
    }
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// True when the step is a descendant-or-self step (`//name`).
    pub descendant: bool,
    /// The name test.
    pub name: NameTest,
    /// Predicates applied in order.
    pub predicates: Vec<Predicate>,
}

/// What the expression finally selects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selector {
    /// The matched elements themselves.
    Elements,
    /// Their direct text (`.../text()`).
    Text,
    /// An attribute value (`.../@name`).
    Attribute(String),
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathExpr {
    /// The location steps, applied from the document root.
    pub steps: Vec<Step>,
    /// The terminal selector.
    pub selector: Selector,
}

impl PathExpr {
    /// Parse an expression such as `//dc:subject[contains(text(), 'nuclei')]/text()`.
    pub fn parse(input: &str) -> Result<PathExpr> {
        let input = input.trim();
        if input.is_empty() || !input.starts_with('/') {
            return Err(XmlError::BadPathExpression(input.to_string()));
        }
        let mut steps = Vec::new();
        let mut selector = Selector::Elements;
        let mut rest = input;

        while !rest.is_empty() {
            let descendant = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                true
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                false
            } else {
                return Err(XmlError::BadPathExpression(input.to_string()));
            };
            if rest.is_empty() {
                return Err(XmlError::BadPathExpression(input.to_string()));
            }
            // terminal selectors
            if let Some(r) = rest.strip_prefix("text()") {
                if !r.is_empty() || steps.is_empty() {
                    return Err(XmlError::BadPathExpression(input.to_string()));
                }
                selector = Selector::Text;
                break;
            }
            if let Some(r) = rest.strip_prefix('@') {
                let name: String = r
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == ':' || *c == '_' || *c == '-')
                    .collect();
                let remainder = &r[name.len()..];
                if name.is_empty() || !remainder.is_empty() || steps.is_empty() {
                    return Err(XmlError::BadPathExpression(input.to_string()));
                }
                selector = Selector::Attribute(name);
                break;
            }
            // a normal step: name test then predicates
            let name_len = rest
                .char_indices()
                .take_while(|(_, c)| {
                    c.is_alphanumeric()
                        || *c == ':'
                        || *c == '_'
                        || *c == '-'
                        || *c == '.'
                        || *c == '*'
                })
                .map(|(i, c)| i + c.len_utf8())
                .last()
                .unwrap_or(0);
            if name_len == 0 {
                return Err(XmlError::BadPathExpression(input.to_string()));
            }
            let raw_name = &rest[..name_len];
            rest = &rest[name_len..];
            let name = if raw_name == "*" {
                NameTest::Any
            } else if raw_name.contains('*') {
                return Err(XmlError::BadPathExpression(input.to_string()));
            } else {
                NameTest::Named(raw_name.to_string())
            };

            let mut predicates = Vec::new();
            while rest.starts_with('[') {
                let end =
                    rest.find(']').ok_or_else(|| XmlError::BadPathExpression(input.to_string()))?;
                let body = &rest[1..end];
                predicates.push(Self::parse_predicate(body, input)?);
                rest = &rest[end + 1..];
            }
            steps.push(Step { descendant, name, predicates });
        }

        if steps.is_empty() {
            return Err(XmlError::BadPathExpression(input.to_string()));
        }
        Ok(PathExpr { steps, selector })
    }

    fn parse_predicate(body: &str, whole: &str) -> Result<Predicate> {
        let body = body.trim();
        if body == "last()" {
            return Ok(Predicate::Last);
        }
        if let Ok(n) = body.parse::<usize>() {
            if n == 0 {
                return Err(XmlError::BadPathExpression(whole.to_string()));
            }
            return Ok(Predicate::Position(n));
        }
        if let Some(attr) = body.strip_prefix('@') {
            if let Some((name, value)) = attr.split_once('=') {
                let value = value.trim().trim_matches('\'').trim_matches('"');
                return Ok(Predicate::AttrEquals {
                    name: name.trim().to_string(),
                    value: value.to_string(),
                });
            }
            return Ok(Predicate::HasAttr(attr.trim().to_string()));
        }
        if let Some(inner) = body.strip_prefix("contains(").and_then(|b| b.strip_suffix(')')) {
            let (target, needle) = inner
                .split_once(',')
                .ok_or_else(|| XmlError::BadPathExpression(whole.to_string()))?;
            let needle = needle.trim().trim_matches('\'').trim_matches('"').to_string();
            return match target.trim() {
                "text()" => Ok(Predicate::ContainsText(needle)),
                "." => Ok(Predicate::ContainsDeep(needle)),
                _ => Err(XmlError::BadPathExpression(whole.to_string())),
            };
        }
        if let Some(inner) = body.strip_prefix("starts-with(").and_then(|b| b.strip_suffix(')')) {
            let (target, prefix) = inner
                .split_once(',')
                .ok_or_else(|| XmlError::BadPathExpression(whole.to_string()))?;
            if target.trim() != "text()" {
                return Err(XmlError::BadPathExpression(whole.to_string()));
            }
            let prefix = prefix.trim().trim_matches('\'').trim_matches('"').to_string();
            return Ok(Predicate::StartsWith(prefix));
        }
        if let Some(inner) = body.strip_prefix("ends-with(").and_then(|b| b.strip_suffix(')')) {
            let (target, suffix) = inner
                .split_once(',')
                .ok_or_else(|| XmlError::BadPathExpression(whole.to_string()))?;
            if target.trim() != "text()" {
                return Err(XmlError::BadPathExpression(whole.to_string()));
            }
            let suffix = suffix.trim().trim_matches('\'').trim_matches('"').to_string();
            return Ok(Predicate::EndsWith(suffix));
        }
        Err(XmlError::BadPathExpression(whole.to_string()))
    }

    /// Evaluate the expression, returning the matched elements (regardless of the
    /// terminal selector).
    pub fn eval_elements<'a>(&self, doc: &'a Document) -> Vec<&'a Element> {
        // The virtual root has the document root as its only child.
        let mut current: Vec<&Element> = vec![&doc.root];
        for (i, step) in self.steps.iter().enumerate() {
            let candidates: Vec<&Element> = if i == 0 {
                // First step matches against the root element itself (child of the
                // virtual document node), or any descendant for `//`.
                if step.descendant {
                    doc.root.descendants()
                } else {
                    vec![&doc.root]
                }
            } else {
                let mut next = Vec::new();
                for element in &current {
                    if step.descendant {
                        for d in element.descendants() {
                            if !std::ptr::eq(d, *element) {
                                next.push(d);
                            }
                        }
                    } else {
                        next.extend(element.child_elements());
                    }
                }
                next
            };
            // First restrict to name-matching candidates so positional predicates
            // (including `last()`) see the right total.
            let named: Vec<&Element> =
                candidates.into_iter().filter(|e| step.name.matches(e)).collect();
            let total = named.len();
            let mut matched: Vec<&Element> = Vec::new();
            for (i, candidate) in named.into_iter().enumerate() {
                let position = i + 1;
                if step.predicates.iter().all(|p| p.keep(candidate, position, total)) {
                    matched.push(candidate);
                }
            }
            current = matched;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Evaluate the expression, returning string values according to the terminal
    /// selector (element XML for [`Selector::Elements`], direct text for
    /// [`Selector::Text`], attribute values for [`Selector::Attribute`]).
    pub fn eval_strings(&self, doc: &Document) -> Vec<String> {
        let elements = self.eval_elements(doc);
        match &self.selector {
            Selector::Elements => elements.iter().map(|e| e.to_xml()).collect(),
            Selector::Text => elements.iter().map(|e| e.text()).collect(),
            Selector::Attribute(name) => {
                elements.iter().filter_map(|e| e.attr(name).map(str::to_string)).collect()
            }
        }
    }

    /// True when the expression matches at least one node of the document.
    pub fn matches(&self, doc: &Document) -> bool {
        !self.eval_elements(doc).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn doc() -> Document {
        parse_document(
            r#"<annotation id="a1">
                 <dc:title>Cleavage site</dc:title>
                 <dc:subject>protease</dc:subject>
                 <dc:subject>influenza</dc:subject>
                 <body lang="en">observed <em>protease</em> motif near residue 340</body>
                 <tags><confidence>high</confidence></tags>
               </annotation>"#,
        )
        .unwrap()
    }

    #[test]
    fn absolute_child_path() {
        let e = PathExpr::parse("/annotation/dc:title/text()").unwrap();
        assert_eq!(e.eval_strings(&doc()), vec!["Cleavage site"]);
    }

    #[test]
    fn descendant_step() {
        let e = PathExpr::parse("//confidence/text()").unwrap();
        assert_eq!(e.eval_strings(&doc()), vec!["high"]);
        let e2 = PathExpr::parse("//dc:subject").unwrap();
        assert_eq!(e2.eval_elements(&doc()).len(), 2);
    }

    #[test]
    fn wildcard_step() {
        let e = PathExpr::parse("/annotation/*").unwrap();
        assert_eq!(e.eval_elements(&doc()).len(), 5);
    }

    #[test]
    fn positional_predicate() {
        let e = PathExpr::parse("/annotation/dc:subject[2]/text()").unwrap();
        assert_eq!(e.eval_strings(&doc()), vec!["influenza"]);
        let e1 = PathExpr::parse("/annotation/dc:subject[1]/text()").unwrap();
        assert_eq!(e1.eval_strings(&doc()), vec!["protease"]);
    }

    #[test]
    fn last_predicate() {
        let e = PathExpr::parse("/annotation/dc:subject[last()]/text()").unwrap();
        assert_eq!(e.eval_strings(&doc()), vec!["influenza"]);
        // with a single match, last() == the only one
        let single = PathExpr::parse("/annotation/dc:title[last()]/text()").unwrap();
        assert_eq!(single.eval_strings(&doc()), vec!["Cleavage site"]);
    }

    #[test]
    fn attribute_predicates_and_selector() {
        let e = PathExpr::parse("/annotation[@id='a1']/body/@lang").unwrap();
        assert_eq!(e.eval_strings(&doc()), vec!["en"]);
        let missing = PathExpr::parse("/annotation[@id='zzz']").unwrap();
        assert!(!missing.matches(&doc()));
        let has = PathExpr::parse("//body[@lang]").unwrap();
        assert!(has.matches(&doc()));
        let hasnt = PathExpr::parse("//body[@dir]").unwrap();
        assert!(!hasnt.matches(&doc()));
    }

    #[test]
    fn contains_predicates() {
        let direct = PathExpr::parse("//dc:subject[contains(text(), 'prote')]").unwrap();
        assert_eq!(direct.eval_elements(&doc()).len(), 1);
        // body's direct text does not include the <em> child, deep text does
        let shallow = PathExpr::parse("//body[contains(text(), 'protease')]").unwrap();
        assert!(!shallow.matches(&doc()));
        let deep = PathExpr::parse("//body[contains(., 'protease')]").unwrap();
        assert!(deep.matches(&doc()));
    }

    #[test]
    fn element_selector_returns_xml() {
        let e = PathExpr::parse("/annotation/tags").unwrap();
        let strings = e.eval_strings(&doc());
        assert_eq!(strings.len(), 1);
        assert!(strings[0].starts_with("<tags>"));
    }

    #[test]
    fn no_match_returns_empty() {
        let e = PathExpr::parse("/nothing/here").unwrap();
        assert!(e.eval_elements(&doc()).is_empty());
        assert!(e.eval_strings(&doc()).is_empty());
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "annotation",
            "/",
            "//",
            "/a/[1]",
            "/a[contains(foo, 'x')]",
            "/a[unclosed",
            "/a[0]",
            "/text()",
            "/@id",
            "/a*b",
        ] {
            assert!(PathExpr::parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn starts_and_ends_with() {
        let starts = PathExpr::parse("//dc:title[starts-with(text(), 'Cleav')]").unwrap();
        assert!(starts.matches(&doc()));
        let not_starts = PathExpr::parse("//dc:title[starts-with(text(), 'zzz')]").unwrap();
        assert!(!not_starts.matches(&doc()));
        let ends = PathExpr::parse("//dc:subject[ends-with(text(), 'ase')]/text()").unwrap();
        assert_eq!(ends.eval_strings(&doc()), vec!["protease"]);
        // ends-with on a non-text() target is rejected
        assert!(PathExpr::parse("//dc:title[ends-with(., 'x')]").is_err());
    }

    #[test]
    fn combined_descendant_with_predicate_and_text() {
        let e = PathExpr::parse("//dc:subject[contains(text(), 'influenza')]/text()").unwrap();
        assert_eq!(e.eval_strings(&doc()), vec!["influenza"]);
    }

    #[test]
    fn first_step_must_match_root_name() {
        let e = PathExpr::parse("/wrongroot/dc:title").unwrap();
        assert!(!e.matches(&doc()));
        let any = PathExpr::parse("/*/dc:title").unwrap();
        assert!(any.matches(&doc()));
    }
}
