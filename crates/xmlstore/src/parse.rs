//! A small, strict XML parser.
//!
//! Supports the subset needed for annotation documents: prolog, elements, attributes
//! (single- or double-quoted), text with the five predefined entities plus numeric
//! character references, comments and CDATA sections.  DTDs and processing instructions
//! other than the prolog are rejected — annotation contents are machine-produced, so a
//! strict parser surfaces corruption early rather than guessing.

use crate::error::XmlError;
use crate::model::{Document, Element, XmlNode};
use crate::Result;

/// Parse a complete XML document.
pub fn parse_document(input: &str) -> Result<Document> {
    let mut p = Parser { input: input.as_bytes(), pos: 0 };
    p.skip_prolog_and_misc()?;
    let root = p.parse_element()?;
    p.skip_whitespace_and_comments();
    if p.pos < p.input.len() {
        return Err(XmlError::TrailingContent);
    }
    Ok(Document::new(root))
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                if let Some(end) = self.find("-->") {
                    self.pos = end + 3;
                    continue;
                }
            }
            break;
        }
    }

    fn find(&self, needle: &str) -> Option<usize> {
        let bytes = needle.as_bytes();
        (self.pos..=self.input.len().saturating_sub(bytes.len()))
            .find(|&i| &self.input[i..i + bytes.len()] == bytes)
    }

    fn skip_prolog_and_misc(&mut self) -> Result<()> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            match self.find("?>") {
                Some(end) => self.pos = end + 2,
                None => return Err(XmlError::UnexpectedEof { expected: "?> of the prolog" }),
            }
        }
        self.skip_whitespace_and_comments();
        if self.starts_with("<!DOCTYPE") {
            return Err(XmlError::Syntax {
                offset: self.pos,
                message: "DTDs are not supported in annotation documents".into(),
            });
        }
        if self.peek().is_none() {
            return Err(XmlError::NoRootElement);
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let c = c as char;
            if c.is_alphanumeric() || c == ':' || c == '_' || c == '-' || c == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::Syntax { offset: start, message: "expected a name".into() });
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element> {
        if self.peek() != Some(b'<') {
            return Err(XmlError::Syntax {
                offset: self.pos,
                message: "expected '<' to open an element".into(),
            });
        }
        self.bump(1);
        let name = self.parse_name()?;
        let mut element = Element::new(name.clone());

        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(XmlError::Syntax {
                            offset: self.pos,
                            message: "expected '/>'".into(),
                        });
                    }
                    self.bump(2);
                    return Ok(element);
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(XmlError::Syntax {
                            offset: self.pos,
                            message: format!("expected '=' after attribute {attr_name}"),
                        });
                    }
                    self.bump(1);
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    element.attributes.push((attr_name, value));
                }
                None => return Err(XmlError::UnexpectedEof { expected: "end of open tag" }),
            }
        }

        // children until the matching close tag
        loop {
            if self.pos >= self.input.len() {
                return Err(XmlError::UnexpectedEof { expected: "close tag" });
            }
            if self.starts_with("</") {
                self.bump(2);
                let close = self.parse_name()?;
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(XmlError::Syntax {
                        offset: self.pos,
                        message: "expected '>' in close tag".into(),
                    });
                }
                self.bump(1);
                if close != name {
                    return Err(XmlError::MismatchedTag { open: name, close });
                }
                return Ok(element);
            } else if self.starts_with("<!--") {
                let Some(end) = self.find("-->") else {
                    return Err(XmlError::UnexpectedEof { expected: "-->" });
                };
                let text = String::from_utf8_lossy(&self.input[self.pos + 4..end]).into_owned();
                element.children.push(XmlNode::Comment(text));
                self.pos = end + 3;
            } else if self.starts_with("<![CDATA[") {
                let Some(end) = self.find("]]>") else {
                    return Err(XmlError::UnexpectedEof { expected: "]]>" });
                };
                let text = String::from_utf8_lossy(&self.input[self.pos + 9..end]).into_owned();
                element.children.push(XmlNode::Text(text));
                self.pos = end + 3;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(XmlNode::Element(child));
            } else {
                let text = self.parse_text()?;
                if !text.is_empty() {
                    element.children.push(XmlNode::Text(text));
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => {
                return Err(XmlError::Syntax {
                    offset: self.pos,
                    message: "expected a quoted attribute value".into(),
                })
            }
        };
        self.bump(1);
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.bump(1);
                return unescape(&raw);
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof { expected: "closing quote of attribute value" })
    }

    fn parse_text(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        // Whitespace-only runs between elements are not significant for annotations.
        if raw.trim().is_empty() {
            return Ok(String::new());
        }
        unescape(&raw)
    }
}

/// Resolve the predefined entities and numeric character references in a text run.
fn unescape(raw: &str) -> Result<String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.char_indices();
    while let Some((_, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        // collect until ';'
        let mut entity = String::new();
        loop {
            match chars.next() {
                Some((_, ';')) => break,
                Some((_, ch)) if entity.len() < 12 => entity.push(ch),
                _ => return Err(XmlError::UnknownEntity(entity)),
            }
        }
        match entity.as_str() {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other => {
                if let Some(hex) = other.strip_prefix("#x").or_else(|| other.strip_prefix("#X")) {
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| XmlError::UnknownEntity(other.to_string()))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| XmlError::UnknownEntity(other.to_string()))?,
                    );
                } else if let Some(dec) = other.strip_prefix('#') {
                    let code: u32 =
                        dec.parse().map_err(|_| XmlError::UnknownEntity(other.to_string()))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| XmlError::UnknownEntity(other.to_string()))?,
                    );
                } else {
                    return Err(XmlError::UnknownEntity(other.to_string()));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_document() {
        let doc = parse_document(
            "<?xml version=\"1.0\"?><annotation id=\"a1\"><dc:title>Hi</dc:title></annotation>",
        )
        .unwrap();
        assert_eq!(doc.root.name, "annotation");
        assert_eq!(doc.root.attr("id"), Some("a1"));
        assert_eq!(doc.root.child("dc:title").unwrap().text(), "Hi");
    }

    #[test]
    fn parse_without_prolog() {
        let doc = parse_document("<a><b/><c>text</c></a>").unwrap();
        assert_eq!(doc.root.child_elements().count(), 2);
    }

    #[test]
    fn roundtrip_serialize_parse() {
        use crate::model::Element;
        let original = Element::new("annotation")
            .with_attr("id", "x")
            .with_child(Element::new("dc:subject").with_text("Deep Cerebellar nuclei"))
            .with_child(Element::new("note").with_text("a & b < c"));
        let xml = original.to_xml();
        let parsed = parse_document(&xml).unwrap();
        assert_eq!(parsed.root, original);
    }

    #[test]
    fn entities_and_numeric_references() {
        let doc = parse_document("<a>&amp;&lt;&gt;&quot;&apos;&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.root.text(), "&<>\"'AB");
    }

    #[test]
    fn unknown_entity_rejected() {
        assert_eq!(parse_document("<a>&nope;</a>"), Err(XmlError::UnknownEntity("nope".into())));
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse_document("<a k='v &amp; w'/>").unwrap();
        assert_eq!(doc.root.attr("k"), Some("v & w"));
    }

    #[test]
    fn comments_and_cdata() {
        let doc = parse_document("<a><!-- note --><![CDATA[1 < 2 & 3]]></a>").unwrap();
        assert_eq!(doc.root.deep_text(), "1 < 2 & 3");
        assert!(matches!(doc.root.children[0], XmlNode::Comment(_)));
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let doc = parse_document("<a>\n  <b>x</b>\n  <c>y</c>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 2);
    }

    #[test]
    fn mismatched_tags_error() {
        assert_eq!(
            parse_document("<a><b></a></b>"),
            Err(XmlError::MismatchedTag { open: "b".into(), close: "a".into() })
        );
    }

    #[test]
    fn truncated_document_error() {
        assert!(matches!(parse_document("<a><b>"), Err(XmlError::UnexpectedEof { .. })));
    }

    #[test]
    fn trailing_content_error() {
        assert_eq!(parse_document("<a/><b/>"), Err(XmlError::TrailingContent));
        // trailing comments and whitespace are fine
        assert!(parse_document("<a/> <!-- done --> ").is_ok());
    }

    #[test]
    fn doctype_rejected() {
        assert!(matches!(parse_document("<!DOCTYPE html><a/>"), Err(XmlError::Syntax { .. })));
    }

    #[test]
    fn empty_input_error() {
        assert_eq!(parse_document("   "), Err(XmlError::NoRootElement));
    }

    #[test]
    fn nested_depth() {
        let mut xml = String::new();
        for i in 0..50 {
            xml.push_str(&format!("<n{i}>"));
        }
        xml.push_str("leaf");
        for i in (0..50).rev() {
            xml.push_str(&format!("</n{i}>"));
        }
        let doc = parse_document(&xml).unwrap();
        assert_eq!(doc.root.element_count(), 50);
        assert_eq!(doc.root.deep_text(), "leaf");
    }
}
