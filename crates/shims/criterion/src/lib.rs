//! Minimal in-workspace benchmarking stand-in for `criterion` (offline build).
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple adaptive
//! timer: each benchmark is warmed up, calibrated to a target measurement window, and
//! sampled several times; the best sample's mean ns/iter is reported.
//!
//! Results are printed like criterion's one-line summaries and, in addition, written as
//! a machine-readable JSON array. The output path is `$BENCH_JSON` when set, else
//! `target/criterion-json/<bench-binary>.json`; the `bench` crate's `bench_summary`
//! binary merges the per-binary files into one summary (see `BENCH_query.json`).
//!
//! Passing `--quick` (as the project CI does via `cargo bench ... -- --quick`) shrinks
//! the measurement window ~10× for smoke runs.

pub use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Label for a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("variant", param)` → `variant/param`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// `BenchmarkId::from_parameter(param)` → `param`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// How many inputs [`Bencher::iter_batched`] should prepare per batch.  Accepted for
/// criterion API compatibility; the shim times each routine call individually, so the
/// hint does not change the measurement.
#[derive(Debug, Clone, Copy, Default)]
pub enum BatchSize {
    /// Small inputs (criterion's default).
    #[default]
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    measurement_window: Duration,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Time the routine: warm up, calibrate an iteration count filling the measurement
    /// window, then take three samples and keep the fastest mean.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up + calibration: time single calls until we know roughly how long one
        // iteration takes (bounded so pathological routines still finish).
        let calibration_start = Instant::now();
        let mut calls = 0u64;
        while calibration_start.elapsed() < self.measurement_window / 4 && calls < 10_000 {
            black_box(routine());
            calls += 1;
        }
        let per_call = calibration_start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
        let target_ns = self.measurement_window.as_nanos() as f64;
        let iters = ((target_ns / per_call.max(1.0)) as u64).clamp(1, 50_000_000);

        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let mean = start.elapsed().as_nanos() as f64 / iters as f64;
            if mean < best {
                best = mean;
            }
        }
        self.ns_per_iter = Some(best);
    }

    /// Like [`iter`](Self::iter), but every call consumes a fresh input built by
    /// `setup`, and only the routine is timed.  Use this when the routine would
    /// otherwise accumulate state in a value shared across iterations — e.g. a write
    /// benchmark whose per-call cost grows with everything the previous iterations
    /// wrote — which would make the reported mean a function of the iteration count
    /// rather than of the operation.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // Calibration sizes the iteration count from full wall time per call
        // (setup + routine + teardown) — the reported time stays routine-only,
        // measured in the sample loop — so an expensive setup bounds each sample
        // near the measurement window instead of multiplying it by the
        // setup/routine ratio.
        let calibration_start = Instant::now();
        let mut calls = 0u64;
        while calibration_start.elapsed() < self.measurement_window / 4 && calls < 1_000 {
            drop(black_box(routine(setup())));
            calls += 1;
        }
        let wall_per_call = calibration_start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
        let target_ns = self.measurement_window.as_nanos() as f64;
        // Tighter clamp than `iter`: every iteration pays an untimed setup, so a
        // too-fast routine must not explode the number of setups.
        let iters = ((target_ns / wall_per_call.max(1.0)) as u64).clamp(1, 10_000);

        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut sample_ns = 0u128;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                let out = routine(input);
                sample_ns += t0.elapsed().as_nanos();
                // The routine's output (often the consumed input, moved back out so
                // its teardown is not measured) drops outside the timed window.
                drop(black_box(out));
            }
            let mean = sample_ns as f64 / iters as f64;
            if mean < best {
                best = mean;
            }
        }
        self.ns_per_iter = Some(best);
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_window: Duration::from_millis(50) }
    }
}

impl Criterion {
    /// Apply command-line arguments (`--quick` shrinks the measurement window; other
    /// cargo-bench plumbing flags are accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--quick") {
            self.measurement_window = Duration::from_millis(5);
        }
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl IntoLabel,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(name.into_label(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher =
            Bencher { measurement_window: self.measurement_window, ns_per_iter: None };
        f(&mut bencher);
        let ns = bencher.ns_per_iter.unwrap_or(f64::NAN);
        println!("{label:<60} time: {}", format_ns(ns));
        RESULTS.lock().unwrap().push((label, ns));
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl<'c> BenchmarkGroup<'c> {
    /// Run a benchmark within the group.
    pub fn bench_function(&mut self, id: impl IntoLabel, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run(label, f);
        self
    }

    /// Run a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run(label, |b| f(b, input));
        self
    }

    /// Set the sample count (accepted for API compatibility; the shim's sampling is
    /// fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The outermost ancestor of the current directory that holds a `Cargo.lock` — the
/// workspace root when run via cargo, the current directory otherwise.
pub fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut best = cwd.clone();
    let mut dir = cwd;
    loop {
        if dir.join("Cargo.lock").exists() {
            best = dir.clone();
        }
        if !dir.pop() {
            break;
        }
    }
    best
}

/// Write every recorded result as a JSON array of `{bench, name, ns_per_iter}` objects.
/// Called by `criterion_main!` after all groups have run.
pub fn write_json_summary() {
    let results = RESULTS.lock().unwrap();
    let bin = std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p).file_stem().map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_string());
    // cargo names bench executables `<name>-<hash>`; strip the trailing hash.
    let bench_name = match bin.rsplit_once('-') {
        Some((stem, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            stem.to_string()
        }
        _ => bin,
    };
    let entries = jsonlite::Json::Arr(
        results
            .iter()
            .map(|(name, ns)| {
                jsonlite::Json::obj([
                    ("bench", jsonlite::Json::str(bench_name.clone())),
                    ("name", jsonlite::Json::str(name.clone())),
                    ("ns_per_iter", jsonlite::Json::Num(*ns)),
                ])
            })
            .collect(),
    );
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| {
        // Benches run with the package dir as cwd; write next to the *workspace*
        // target dir so `bench_summary` finds every bench's file in one place.
        let dir = workspace_root().join("target").join("criterion-json");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!("{bench_name}.json")).to_string_lossy().into_owned()
    });
    if let Err(e) = std::fs::write(&path, entries.pretty() + "\n") {
        eprintln!("criterion shim: could not write {path}: {e}");
    } else {
        println!("criterion shim: wrote {} results to {path}", results.len());
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, running every group then writing the JSON
/// summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_a_sample() {
        let mut c = Criterion { measurement_window: Duration::from_micros(500) };
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let results = RESULTS.lock().unwrap();
        let entry = results.iter().find(|(n, _)| n == "shim_smoke").unwrap();
        assert!(entry.1 > 0.0);
    }

    #[test]
    fn labels_compose() {
        assert_eq!(BenchmarkId::new("variant", 32).label, "variant/32");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
        assert_eq!(format_ns(1500.0), "1.50 µs");
    }
}
