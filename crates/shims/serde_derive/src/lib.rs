//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-workspace
//! serde stand-in.
//!
//! Built directly on `proc_macro` (no `syn`/`quote` — the workspace builds offline).
//! Supports the shapes this workspace actually derives on: non-generic structs with
//! named fields, tuple structs, unit structs, and enums whose variants are unit, tuple
//! or struct-like. Encodings follow serde's defaults:
//!
//! * named struct → JSON object keyed by field name
//! * newtype struct → the inner value, transparently
//! * tuple struct (arity ≥ 2) → JSON array
//! * unit variant → `"Variant"`; other variants → `{"Variant": payload}` (externally
//!   tagged)
//!
//! `#[serde(...)]` attributes are accepted and ignored (none remain in the workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape).parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_deserialize(&name, &shape).parse().expect("generated Deserialize impl parses")
}

// --- parsing ---

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (deriving on `{name}`)");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    };
    (name, shape)
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Split a field/variant list at top-level commas (commas inside `<...>` type arguments
/// belong to the type, not the list; bracketed groups are atomic token trees already).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, got {other}"),
            }
        })
        .collect()
}

fn tuple_arity(stream: TokenStream) -> usize {
    split_top_level(stream).into_iter().filter(|c| !c.is_empty()).count()
}

fn variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, got {other}"),
            };
            i += 1;
            let kind = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(tuple_arity(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(named_fields(g.stream()))
                }
                None => VariantKind::Unit,
                other => panic!("unsupported variant body for `{name}`: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// --- code generation ---

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Json::Obj(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Json::Arr(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Json::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Json::Str({vn:?}.to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::tagged({vn:?}, ::serde::Serialize::to_value(__f0))"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::tagged({vn:?}, ::serde::Json::Arr(vec![{}]))",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::tagged({vn:?}, ::serde::Json::Obj(vec![{}]))",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Json {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(__v, {f:?})?)?")
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!("let __items = ::serde::tuple(__v, {n})?; Ok({name}({}))", items.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __items = ::serde::tuple(__inner, {n})?; \
                                 return Ok({name}::{vn}({})); }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::field(__inner, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => return Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(__s) = __v.as_str() {{\n\
                     match __s {{ {} _ => {{}} }}\n\
                 }}\n\
                 if let Some((__tag, __inner)) = ::serde::variant(__v) {{\n\
                     match __tag {{ {} _ => {{}} }}\n\
                 }}\n\
                 Err(::serde::DeError::custom(format!(\"no variant of {name} matches {{:?}}\", __v)))",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Json) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
