//! Minimal in-workspace stand-in for the `bytes` crate (offline build).
//!
//! Provides the small slice-of-bytes surface the workspace uses: a cheaply-clonable,
//! immutable byte buffer with `Deref<Target = [u8]>`, conversions from vectors and
//! slices, and `to_vec`. Reference counting uses `Arc` so clones share storage like the
//! real crate.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-clonable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a static slice into a buffer (the real crate is zero-copy here; ours copies
    /// once, which is fine for test payloads).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: Arc::new(bytes.to_vec()) }
    }

    /// Copy the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// View as a slice. Mirrors the real `bytes` crate's inherent method, so the
    /// name is kept despite shadowing `AsRef::as_ref` (which is also implemented).
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: Arc::new(v.to_vec()) }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes { data: Arc::new(v.as_bytes().to_vec()) }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes { data: Arc::new(v.into_bytes()) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes { data: Arc::new(iter.into_iter().collect()) }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn deref_and_conversions() {
        let b = Bytes::from("abc");
        assert_eq!(&b[..], b"abc");
        assert_eq!(Bytes::from_static(b"xy").to_vec(), b"xy".to_vec());
        let d = format!("{:?}", Bytes::from(vec![b'a', 0x01]));
        assert_eq!(d, "b\"a\\x01\"");
    }
}
