//! Minimal in-workspace stand-in for `serde_json` over the jsonlite value model
//! (offline build). Provides the entry points the workspace uses: `to_string`,
//! `to_string_pretty`, `from_str`, `to_value`/`from_value`, and an `Error` type.

use std::fmt;

pub use jsonlite::Json as Value;
use serde::{Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialise a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().compact())
}

/// Serialise a value to pretty (two-space indented) JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().pretty())
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let parsed = jsonlite::Json::parse(s).map_err(|e| Error::new(e.to_string()))?;
    T::from_value(&parsed).map_err(|e| Error::new(e.to_string()))
}

/// Convert a serialisable value into a JSON tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Convert a JSON tree into a concrete type.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(|e| Error::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_strings() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert!(from_str::<Vec<u64>>("{nope").is_err());
    }
}
