//! Minimal in-workspace property-testing stand-in for `proptest` (offline build).
//!
//! Implements the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! * [`Strategy`] with `prop_map` / `boxed`, implemented for integer and float ranges,
//!   tuples (arity 2–4), `&'static str` regex-ish patterns, and [`BoxedStrategy`],
//! * `prop::collection::vec`, [`any`] for `bool` and the unsigned integers,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` (plain assertions).
//!
//! Sampling is deterministic: each test function derives its RNG seed from its own
//! name, so failures reproduce without a persistence file. There is no shrinking — a
//! failing case panics with the standard assertion message.

use std::ops::Range;
use std::rc::Rc;

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Deterministic split-mix style RNG used by all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed an RNG (test harness use).
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Configuration block accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { sample: Rc::new(move |rng| self.sample(rng)) }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// A strategy producing one fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as f64;
                let hi = self.end as f64;
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3), (A.0, B.1, C.2, D.3, E.4),);

/// `&'static str` literals act as regex-ish string strategies (see [`pattern`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// Namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// Strategy for vectors with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, 0..10)` — vectors of `element` values.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// Length bounds for collection strategies (half-open, like `0..10`).
pub struct SizeRange {
    /// Inclusive lower bound.
    pub start: usize,
    /// Exclusive upper bound.
    pub end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange { start: r.start, end: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { start: n, end: n + 1 }
    }
}

pub mod pattern {
    //! A tiny generator for the regex-ish string patterns the tests use: literals,
    //! character classes (`[a-z0-9 .,]`), groups, and the `{m,n}`, `?`, `*`, `+`
    //! quantifiers. No alternation (none of the workspace patterns need it).

    use crate::TestRng;

    enum Node {
        Lit(char),
        Class(Vec<(char, char)>),
        Group(Vec<Node>),
        Repeat(Box<Node>, usize, usize),
    }

    /// Sample a string matching `pat`.
    pub fn sample(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut pos = 0;
        let seq = parse_seq(&chars, &mut pos, true);
        let mut out = String::new();
        emit(&Node::Group(seq), rng, &mut out);
        out
    }

    fn parse_seq(chars: &[char], pos: &mut usize, top: bool) -> Vec<Node> {
        let mut seq = Vec::new();
        while *pos < chars.len() {
            let c = chars[*pos];
            match c {
                ')' if !top => {
                    *pos += 1;
                    return seq;
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos, false);
                    seq.push(maybe_quantified(Node::Group(inner), chars, pos));
                }
                '[' => {
                    *pos += 1;
                    let class = parse_class(chars, pos);
                    seq.push(maybe_quantified(Node::Class(class), chars, pos));
                }
                '\\' => {
                    *pos += 1;
                    let lit = chars.get(*pos).copied().unwrap_or('\\');
                    *pos += 1;
                    seq.push(maybe_quantified(Node::Lit(lit), chars, pos));
                }
                _ => {
                    *pos += 1;
                    seq.push(maybe_quantified(Node::Lit(c), chars, pos));
                }
            }
        }
        seq
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        while *pos < chars.len() && chars[*pos] != ']' {
            let lo = chars[*pos];
            *pos += 1;
            if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
                let hi = chars[*pos + 1];
                *pos += 2;
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        *pos += 1; // consume ']'
        ranges
    }

    fn maybe_quantified(node: Node, chars: &[char], pos: &mut usize) -> Node {
        match chars.get(*pos) {
            Some('?') => {
                *pos += 1;
                Node::Repeat(Box::new(node), 0, 1)
            }
            Some('*') => {
                *pos += 1;
                Node::Repeat(Box::new(node), 0, 8)
            }
            Some('+') => {
                *pos += 1;
                Node::Repeat(Box::new(node), 1, 8)
            }
            Some('{') => {
                *pos += 1;
                let mut min = String::new();
                while chars[*pos].is_ascii_digit() {
                    min.push(chars[*pos]);
                    *pos += 1;
                }
                let min: usize = min.parse().unwrap_or(0);
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut max = String::new();
                    while chars[*pos].is_ascii_digit() {
                        max.push(chars[*pos]);
                        *pos += 1;
                    }
                    max.parse().unwrap_or(min + 8)
                } else {
                    min
                };
                *pos += 1; // consume '}'
                Node::Repeat(Box::new(node), min, max)
            }
            _ => node,
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges.iter().map(|&(lo, hi)| (hi as u64 - lo as u64) + 1).sum();
                let mut pick = rng.below(total.max(1));
                for &(lo, hi) in ranges {
                    let span = (hi as u64 - lo as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(lo as u32 + pick as u32).unwrap_or(lo));
                        break;
                    }
                    pick -= span;
                }
            }
            Node::Group(seq) => {
                for n in seq {
                    emit(n, rng, out);
                }
            }
            Node::Repeat(inner, min, max) => {
                let span = (max - min + 1) as u64;
                let count = min + rng.below(span) as usize;
                for _ in 0..count {
                    emit(inner, rng, out);
                }
            }
        }
    }
}

/// FNV-1a hash of a string, used to derive per-test RNG seeds.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assert a condition inside a property (plain `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test entry macro. Each enclosed `#[test] fn name(x in strategy, ...)`
/// becomes a normal test that samples its strategies `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let f = (1.0f64..2.0).sample(&mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn patterns_match_shape() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let s = pattern::sample("[a-c]{2,4}", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 4);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = pattern::sample("x(:[0-9]{1,2})?", &mut rng);
            assert!(t.starts_with('x'));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::new(11);
        let strat = prop::collection::vec((0u64..5, any::<bool>()), 1..4).prop_map(|v| v.len());
        for _ in 0..50 {
            let n = strat.sample(&mut rng);
            assert!((1..4).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(a in 0u64..10, b in prop::collection::vec(0u64..3, 0..5)) {
            prop_assert!(a < 10);
            prop_assert!(b.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in any::<u8>()) {
            let wide = x as u64;
            prop_assert!(wide < 256);
        }
    }
}
