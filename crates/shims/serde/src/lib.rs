//! Minimal in-workspace stand-in for `serde` (offline build).
//!
//! The real serde separates the data model from the format through a visitor-based
//! `Serializer`/`Deserializer` pair. This workspace only ever serialises to JSON (via
//! the sibling `serde_json` shim), so the shim collapses the data model to a
//! [`jsonlite::Json`] tree:
//!
//! * [`Serialize`] — `to_value(&self) -> Json`
//! * [`Deserialize`] — `from_value(&Json) -> Result<Self, DeError>`
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`, re-exported from the
//! `serde_derive` shim) generate impls that follow serde's default encodings: structs
//! as objects, newtype structs transparently, tuple structs as arrays, and enums
//! externally tagged (`"Variant"` for unit variants, `{"Variant": ...}` otherwise).
//!
//! Map keys are serialised through their JSON value: strings directly, numbers via
//! their decimal rendering — matching `serde_json`'s integer-keyed-map behaviour.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use jsonlite as json;
pub use jsonlite::Json;
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when a JSON value cannot be decoded into the target type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError { message: msg.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a JSON value.
pub trait Serialize {
    /// The JSON encoding of `self`.
    fn to_value(&self) -> Json;
}

/// Types that can be rebuilt from a JSON value.
pub trait Deserialize: Sized {
    /// Decode from a JSON value.
    fn from_value(v: &Json) -> Result<Self, DeError>;
}

// --- helpers used by the generated derive code ---

static NULL: Json = Json::Null;

/// Fetch a struct field from an object, yielding `null` when the key is absent (so
/// `Option` fields tolerate omission).
pub fn field<'a>(v: &'a Json, name: &str) -> Result<&'a Json, DeError> {
    match v {
        Json::Obj(_) => Ok(v.get(name).unwrap_or(&NULL)),
        other => {
            Err(DeError::custom(format!("expected an object with field {name:?}, got {other:?}")))
        }
    }
}

/// Decode an externally-tagged enum payload: a single-key object `{"Variant": inner}`.
pub fn variant(v: &Json) -> Option<(&str, &Json)> {
    match v {
        Json::Obj(pairs) if pairs.len() == 1 => Some((pairs[0].0.as_str(), &pairs[0].1)),
        _ => None,
    }
}

/// Decode a fixed-arity tuple payload.
pub fn tuple(v: &Json, arity: usize) -> Result<&[Json], DeError> {
    match v.as_arr() {
        Some(items) if items.len() == arity => Ok(items),
        Some(items) => {
            Err(DeError::custom(format!("expected a {arity}-tuple, got {} elements", items.len())))
        }
        None => Err(DeError::custom(format!("expected a {arity}-tuple array, got {v:?}"))),
    }
}

/// Build a single-key object (externally-tagged enum payload).
pub fn tagged(tag: &str, inner: Json) -> Json {
    Json::Obj(vec![(tag.to_string(), inner)])
}

fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Json::Str(s) => s,
        other => other.compact(),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    // Try the string directly first, then its JSON reading (covers numeric and
    // newtype-over-integer keys).
    if let Ok(k) = K::from_value(&Json::Str(s.to_string())) {
        return Ok(k);
    }
    let parsed = Json::parse(s).map_err(|e| DeError::custom(format!("bad map key {s:?}: {e}")))?;
    K::from_value(&parsed)
}

// --- primitive impls ---

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Json) -> Result<Self, DeError> {
                match v {
                    Json::Num(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Json) -> Result<Self, DeError> {
                match v {
                    Json::Num(n) => Ok(*n as $t),
                    // jsonlite renders non-finite numbers as null; accept it back
                    Json::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single-char string, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Json {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Json {
        match self {
            Some(v) => v.to_value(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Json {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected {N}-element array, got {len}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        Ok(items.into_iter().collect())
    }
}

impl<T: Serialize + Ord + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Json {
        // sort for deterministic output
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Json::Arr(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        Ok(items.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (key_to_string(k), v.to_value())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: Serialize + Ord + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Json {
        // sort keys for deterministic output
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Json::Obj(entries.into_iter().map(|(k, v)| (key_to_string(k), v.to_value())).collect())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $arity:expr)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Json) -> Result<Self, DeError> {
                let items = tuple(v, $arity)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

impl Serialize for bytes::Bytes {
    fn to_value(&self) -> Json {
        Json::Arr(self.iter().map(|&b| Json::Num(b as f64)).collect())
    }
}

impl Deserialize for bytes::Bytes {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        let items: Vec<u8> = Deserialize::from_value(v)?;
        Ok(bytes::Bytes::from(items))
    }
}

impl Serialize for Json {
    fn to_value(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_value(v: &Json) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Json {
        Json::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Json) -> Result<Self, DeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Json::Num(7.0)).unwrap(), Some(7));
        assert!(bool::from_value(&Json::Num(1.0)).is_err());
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        assert_eq!(HashMap::<String, u32>::from_value(&m.to_value()).unwrap(), m);
        let mut im = BTreeMap::new();
        im.insert(5u64, "five".to_string());
        assert_eq!(BTreeMap::<u64, String>::from_value(&im.to_value()).unwrap(), im);
    }

    #[test]
    fn bytes_as_plain_vector() {
        let b = bytes::Bytes::from(vec![0u8, 255]);
        assert_eq!(b.to_value(), Json::Arr(vec![Json::Num(0.0), Json::Num(255.0)]));
        assert_eq!(bytes::Bytes::from_value(&b.to_value()).unwrap(), b);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = Json::Obj(vec![("present".into(), Json::Num(1.0))]);
        assert!(field(&obj, "absent").unwrap().is_null());
        assert!(field(&Json::Num(3.0), "x").is_err());
    }
}
