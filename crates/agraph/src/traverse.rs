//! Traversal utilities over the a-graph.
//!
//! The query processor needs (a) breadth-first traversal in either or both directions,
//! (b) bounded-radius neighbourhoods for "correlated data viewing", and (c) label /
//! kind-filtered walks used by path expressions.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::graph::{MultiGraph, NodeId};
use crate::node::NodeKind;

/// The direction in which edges are followed during a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges from source to target only.
    Forward,
    /// Follow edges from target to source only.
    Backward,
    /// Follow edges both ways (treat the graph as undirected).
    Both,
}

impl Direction {
    /// Neighbours of `node` in this direction.
    pub fn step(self, graph: &MultiGraph, node: NodeId) -> Vec<NodeId> {
        match self {
            Direction::Forward => graph.successors(node),
            Direction::Backward => graph.predecessors(node),
            Direction::Both => graph.neighbors_undirected(node),
        }
    }
}

/// An iterative breadth-first traversal.
///
/// Yields `(node, depth)` pairs in BFS order starting from the seed set at depth 0.
#[derive(Debug)]
pub struct Bfs<'g> {
    graph: &'g MultiGraph,
    direction: Direction,
    queue: VecDeque<(NodeId, usize)>,
    visited: HashSet<NodeId>,
    max_depth: Option<usize>,
}

impl<'g> Bfs<'g> {
    /// Start a BFS from a single seed node.
    pub fn new(graph: &'g MultiGraph, seed: NodeId, direction: Direction) -> Self {
        Bfs::from_seeds(graph, &[seed], direction)
    }

    /// Start a BFS from several seed nodes at once.
    pub fn from_seeds(graph: &'g MultiGraph, seeds: &[NodeId], direction: Direction) -> Self {
        let mut queue = VecDeque::new();
        let mut visited = HashSet::new();
        for &s in seeds {
            if graph.node_alive(s) && visited.insert(s) {
                queue.push_back((s, 0));
            }
        }
        Bfs { graph, direction, queue, visited, max_depth: None }
    }

    /// Bound the traversal to nodes at most `depth` hops from a seed.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Run the traversal to completion, collecting every visited node with its depth.
    pub fn collect_depths(self) -> HashMap<NodeId, usize> {
        self.collect()
    }
}

impl<'g> Iterator for Bfs<'g> {
    type Item = (NodeId, usize);

    fn next(&mut self) -> Option<Self::Item> {
        let (node, depth) = self.queue.pop_front()?;
        let expand = self.max_depth.map(|m| depth < m).unwrap_or(true);
        if expand {
            for next in self.direction.step(self.graph, node) {
                if self.visited.insert(next) {
                    self.queue.push_back((next, depth + 1));
                }
            }
        }
        Some((node, depth))
    }
}

/// A bounded neighbourhood of a node: everything within `radius` hops (undirected by
/// default), optionally restricted to particular node kinds.
///
/// This backs the demo's *correlated data viewer*: given a result object the user asks
/// for "other annotations made on this sequence", "ontology terms mapped to the objects
/// in the result", and so on — all radius-limited neighbourhood queries.
#[derive(Debug, Clone)]
pub struct Neighborhood {
    /// Centre of the neighbourhood.
    pub center: NodeId,
    /// Members with their hop distance from the centre (the centre itself is included
    /// at distance 0).
    pub members: Vec<(NodeId, usize)>,
}

impl Neighborhood {
    /// Compute the neighbourhood of `center` within `radius` hops following `direction`.
    pub fn compute(
        graph: &MultiGraph,
        center: NodeId,
        radius: usize,
        direction: Direction,
    ) -> Neighborhood {
        let mut members: Vec<(NodeId, usize)> =
            Bfs::new(graph, center, direction).with_max_depth(radius).collect();
        members.sort_by_key(|&(n, d)| (d, n));
        Neighborhood { center, members }
    }

    /// Members of a particular kind, excluding the centre.
    pub fn of_kind(&self, graph: &MultiGraph, kind: NodeKind) -> Vec<NodeId> {
        self.members
            .iter()
            .filter(|&&(n, _)| n != self.center)
            .filter(|&&(n, _)| graph.node(n).map(|r| r.kind == kind).unwrap_or(false))
            .map(|&(n, _)| n)
            .collect()
    }

    /// Number of members including the centre.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when only the centre is present.
    pub fn is_empty(&self) -> bool {
        self.members.len() <= 1
    }
}

/// Walk the graph following only edges whose label name is in `labels`, starting from
/// `seeds`, in the given direction, and return every node reached (including seeds).
///
/// This is the evaluation primitive behind label-restricted path expressions such as
/// `content -annotates-> referent -part-of-> object`.
pub fn reachable_via_labels(
    graph: &MultiGraph,
    seeds: &[NodeId],
    labels: &[&str],
    direction: Direction,
) -> HashSet<NodeId> {
    let mut visited: HashSet<NodeId> =
        seeds.iter().copied().filter(|&n| graph.node_alive(n)).collect();
    let mut queue: VecDeque<NodeId> = visited.iter().copied().collect();
    while let Some(node) = queue.pop_front() {
        let mut push = |edge_ids: &[crate::graph::EdgeId], forward: bool| {
            for &e in edge_ids {
                if let Some(rec) = graph.edge(e) {
                    if labels.iter().any(|&l| rec.label.is(l)) {
                        let next = if forward { rec.to } else { rec.from };
                        if visited.insert(next) {
                            queue.push_back(next);
                        }
                    }
                }
            }
        };
        match direction {
            Direction::Forward => push(graph.out_edges(node), true),
            Direction::Backward => push(graph.in_edges(node), false),
            Direction::Both => {
                push(graph.out_edges(node), true);
                push(graph.in_edges(node), false);
            }
        }
    }
    visited
}

/// Partition the live nodes of the graph into weakly connected components.
///
/// Each connected subgraph of a query result becomes one "result page" in the demo's
/// query tab, so the executor needs component decomposition.
pub fn connected_components(graph: &MultiGraph) -> Vec<Vec<NodeId>> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut components = Vec::new();
    for node in graph.nodes() {
        if seen.contains(&node) {
            continue;
        }
        let mut component: Vec<NodeId> =
            Bfs::new(graph, node, Direction::Both).map(|(n, _)| n).collect();
        component.sort();
        for &n in &component {
            seen.insert(n);
        }
        components.push(component);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{EdgeLabel, NodeKind};

    fn chain(n: usize) -> (MultiGraph, Vec<NodeId>) {
        let mut g = MultiGraph::new();
        let ids: Vec<NodeId> =
            (0..n).map(|i| g.add_node(NodeKind::Object, format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], EdgeLabel::new("next")).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn bfs_visits_in_depth_order() {
        let (g, ids) = chain(5);
        let order: Vec<(NodeId, usize)> = Bfs::new(&g, ids[0], Direction::Forward).collect();
        assert_eq!(order.len(), 5);
        for (i, (node, depth)) in order.iter().enumerate() {
            assert_eq!(*node, ids[i]);
            assert_eq!(*depth, i);
        }
    }

    #[test]
    fn bfs_respects_direction() {
        let (g, ids) = chain(4);
        assert_eq!(Bfs::new(&g, ids[3], Direction::Forward).count(), 1);
        assert_eq!(Bfs::new(&g, ids[3], Direction::Backward).count(), 4);
        assert_eq!(Bfs::new(&g, ids[1], Direction::Both).count(), 4);
    }

    #[test]
    fn bfs_max_depth_truncates() {
        let (g, ids) = chain(10);
        let depths = Bfs::new(&g, ids[0], Direction::Forward).with_max_depth(3).collect_depths();
        assert_eq!(depths.len(), 4);
        assert_eq!(depths[&ids[3]], 3);
        assert!(!depths.contains_key(&ids[4]));
    }

    #[test]
    fn bfs_multi_seed() {
        let (g, ids) = chain(6);
        let visited: Vec<NodeId> =
            Bfs::from_seeds(&g, &[ids[0], ids[5]], Direction::Forward).map(|(n, _)| n).collect();
        assert_eq!(visited.len(), 6);
    }

    #[test]
    fn bfs_dead_seed_is_skipped() {
        let (mut g, ids) = chain(3);
        g.remove_node(ids[0]).unwrap();
        assert_eq!(Bfs::new(&g, ids[0], Direction::Forward).count(), 0);
    }

    #[test]
    fn neighborhood_radius_and_kind_filter() {
        let mut g = MultiGraph::new();
        let c = g.add_node(NodeKind::Content, "ann");
        let r1 = g.add_node(NodeKind::Referent, "r1");
        let r2 = g.add_node(NodeKind::Referent, "r2");
        let t = g.add_node(NodeKind::OntologyTerm, "t");
        let far = g.add_node(NodeKind::Object, "far");
        g.add_edge(c, r1, EdgeLabel::annotates()).unwrap();
        g.add_edge(c, r2, EdgeLabel::annotates()).unwrap();
        g.add_edge(c, t, EdgeLabel::cites_term()).unwrap();
        g.add_edge(r1, far, EdgeLabel::part_of()).unwrap();

        let hood = Neighborhood::compute(&g, c, 1, Direction::Both);
        assert_eq!(hood.len(), 4); // c, r1, r2, t — not `far`
        assert_eq!(hood.of_kind(&g, NodeKind::Referent), vec![r1, r2]);
        assert_eq!(hood.of_kind(&g, NodeKind::Object), Vec::<NodeId>::new());
        assert!(!hood.is_empty());

        let wider = Neighborhood::compute(&g, c, 2, Direction::Both);
        assert_eq!(wider.of_kind(&g, NodeKind::Object), vec![far]);
    }

    #[test]
    fn reachable_via_labels_filters_edges() {
        let mut g = MultiGraph::new();
        let c = g.add_node(NodeKind::Content, "ann");
        let r = g.add_node(NodeKind::Referent, "r");
        let o = g.add_node(NodeKind::Object, "o");
        let t = g.add_node(NodeKind::OntologyTerm, "t");
        g.add_edge(c, r, EdgeLabel::annotates()).unwrap();
        g.add_edge(r, o, EdgeLabel::part_of()).unwrap();
        g.add_edge(c, t, EdgeLabel::cites_term()).unwrap();

        let reached = reachable_via_labels(&g, &[c], &["annotates", "part-of"], Direction::Forward);
        assert!(reached.contains(&o));
        assert!(!reached.contains(&t));

        let only_cite = reachable_via_labels(&g, &[c], &["cites-term"], Direction::Forward);
        assert!(only_cite.contains(&t));
        assert!(!only_cite.contains(&r));
    }

    #[test]
    fn connected_components_split_result_pages() {
        let mut g = MultiGraph::new();
        let a1 = g.add_node(NodeKind::Content, "a1");
        let r1 = g.add_node(NodeKind::Referent, "r1");
        let a2 = g.add_node(NodeKind::Content, "a2");
        let r2 = g.add_node(NodeKind::Referent, "r2");
        g.add_edge(a1, r1, EdgeLabel::annotates()).unwrap();
        g.add_edge(a2, r2, EdgeLabel::annotates()).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn connected_components_empty_graph() {
        let g = MultiGraph::new();
        assert!(connected_components(&g).is_empty());
    }
}
