//! The directed labelled multigraph.
//!
//! Storage layout follows the usual arena + adjacency-list design: nodes and edges live
//! in slab vectors addressed by dense integer ids; each node keeps its outgoing and
//! incoming edge id lists so both directions can be traversed cheaply (the query
//! processor walks content → referent as often as referent → content).  Removal is
//! supported by tombstoning slots; ids are never reused so external stores can hold
//! `NodeId`s safely.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::node::{EdgeLabel, NodeKind, NodeRecord};
use crate::Result;

/// Dense identifier of an a-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

/// Dense identifier of an a-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u64);

/// A stored edge: endpoints plus its label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeRecord {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Edge label.
    pub label: EdgeLabel,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeSlot {
    record: NodeRecord,
    out_edges: Vec<EdgeId>,
    in_edges: Vec<EdgeId>,
    alive: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeSlot {
    record: EdgeRecord,
    alive: bool,
}

/// The directed labelled multigraph underlying the Graphitti a-graph.
///
/// Multiple edges between the same pair of nodes are allowed (and occur whenever two
/// scientists annotate the same referent, or one annotation relates to a referent under
/// two different relationships).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MultiGraph {
    nodes: Vec<NodeSlot>,
    edges: Vec<EdgeSlot>,
    /// Secondary index: external key → node id, so stores can look their nodes back up.
    key_index: HashMap<String, NodeId>,
    live_nodes: usize,
    live_edges: usize,
}

impl MultiGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        MultiGraph::default()
    }

    /// Create an empty graph with pre-allocated capacity for `nodes` nodes and `edges`
    /// edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        MultiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            key_index: HashMap::with_capacity(nodes),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// True if the graph has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.live_nodes == 0
    }

    /// Add a node of the given kind with an external key and return its id.
    ///
    /// Keys are indexed but not required to be unique; when several nodes share a key
    /// [`node_by_key`](Self::node_by_key) returns the most recently inserted one.
    pub fn add_node(&mut self, kind: NodeKind, key: impl Into<String>) -> NodeId {
        let key = key.into();
        let id = NodeId(self.nodes.len() as u64);
        self.nodes.push(NodeSlot {
            record: NodeRecord::new(kind, key.clone()),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
            alive: true,
        });
        self.key_index.insert(key, id);
        self.live_nodes += 1;
        id
    }

    /// Add a directed labelled edge and return its id.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, label: EdgeLabel) -> Result<EdgeId> {
        self.check_node(from)?;
        self.check_node(to)?;
        let id = EdgeId(self.edges.len() as u64);
        self.edges.push(EdgeSlot { record: EdgeRecord { from, to, label }, alive: true });
        self.nodes[from.0 as usize].out_edges.push(id);
        self.nodes[to.0 as usize].in_edges.push(id);
        self.live_edges += 1;
        Ok(id)
    }

    /// Remove a node and every edge incident to it.
    pub fn remove_node(&mut self, id: NodeId) -> Result<NodeRecord> {
        self.check_node(id)?;
        let incident: Vec<EdgeId> = {
            let slot = &self.nodes[id.0 as usize];
            slot.out_edges.iter().chain(slot.in_edges.iter()).copied().collect()
        };
        for e in incident {
            if self.edge_alive(e) {
                self.remove_edge(e)?;
            }
        }
        let slot = &mut self.nodes[id.0 as usize];
        slot.alive = false;
        self.live_nodes -= 1;
        if self.key_index.get(&slot.record.key) == Some(&id) {
            self.key_index.remove(&slot.record.key);
        }
        Ok(slot.record.clone())
    }

    /// Remove an edge.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<EdgeRecord> {
        self.check_edge(id)?;
        let record = self.edges[id.0 as usize].record.clone();
        self.edges[id.0 as usize].alive = false;
        self.live_edges -= 1;
        self.nodes[record.from.0 as usize].out_edges.retain(|&e| e != id);
        self.nodes[record.to.0 as usize].in_edges.retain(|&e| e != id);
        Ok(record)
    }

    /// The record of a node, if it exists and is alive.
    pub fn node(&self, id: NodeId) -> Option<&NodeRecord> {
        self.nodes.get(id.0 as usize).filter(|slot| slot.alive).map(|slot| &slot.record)
    }

    /// The record of an edge, if it exists and is alive.
    pub fn edge(&self, id: EdgeId) -> Option<&EdgeRecord> {
        self.edges.get(id.0 as usize).filter(|slot| slot.alive).map(|slot| &slot.record)
    }

    /// Look a node up by its external key.
    pub fn node_by_key(&self, key: &str) -> Option<NodeId> {
        self.key_index.get(key).copied().filter(|&id| self.node_alive(id))
    }

    /// Whether a node id refers to a live node.
    pub fn node_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.0 as usize).map(|s| s.alive).unwrap_or(false)
    }

    /// Whether an edge id refers to a live edge.
    pub fn edge_alive(&self, id: EdgeId) -> bool {
        self.edges.get(id.0 as usize).map(|s| s.alive).unwrap_or(false)
    }

    /// Iterate over all live node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter(|(_, s)| s.alive).map(|(i, _)| NodeId(i as u64))
    }

    /// Iterate over all live node ids of one kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.alive && s.record.kind == kind)
            .map(|(i, _)| NodeId(i as u64))
    }

    /// Iterate over all live edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().enumerate().filter(|(_, s)| s.alive).map(|(i, _)| EdgeId(i as u64))
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        self.nodes
            .get(id.0 as usize)
            .filter(|s| s.alive)
            .map(|s| s.out_edges.as_slice())
            .unwrap_or(&[])
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        self.nodes
            .get(id.0 as usize)
            .filter(|s| s.alive)
            .map(|s| s.in_edges.as_slice())
            .unwrap_or(&[])
    }

    /// Successor nodes (targets of outgoing edges), possibly with duplicates when
    /// parallel edges exist.
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.out_edges(id).iter().filter_map(|&e| self.edge(e).map(|r| r.to)).collect()
    }

    /// Predecessor nodes (sources of incoming edges).
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        self.in_edges(id).iter().filter_map(|&e| self.edge(e).map(|r| r.from)).collect()
    }

    /// All neighbours ignoring direction (deduplicated, in first-seen order).
    pub fn neighbors_undirected(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = Vec::new();
        for n in self.successors(id).into_iter().chain(self.predecessors(id)) {
            if !seen.contains(&n) {
                seen.push(n);
            }
        }
        seen
    }

    /// Out-degree (number of outgoing edges, counting parallels).
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out_edges(id).len()
    }

    /// In-degree.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_edges(id).len()
    }

    /// Total degree ignoring direction.
    pub fn degree(&self, id: NodeId) -> usize {
        self.out_degree(id) + self.in_degree(id)
    }

    /// All edges between `from` and `to` in that direction (the multigraph can hold
    /// several).
    pub fn edges_between(&self, from: NodeId, to: NodeId) -> Vec<EdgeId> {
        self.out_edges(from)
            .iter()
            .copied()
            .filter(|&e| self.edge(e).map(|r| r.to == to).unwrap_or(false))
            .collect()
    }

    /// Whether an edge with the given label name exists from `from` to `to`.
    pub fn has_labeled_edge(&self, from: NodeId, to: NodeId, label_name: &str) -> bool {
        self.edges_between(from, to)
            .iter()
            .any(|&e| self.edge(e).map(|r| r.label.is(label_name)).unwrap_or(false))
    }

    /// Contents (annotation nodes) directly attached to a referent node — the paper's
    /// notion of annotations that become *indirectly related* by sharing the referent.
    pub fn contents_of_referent(&self, referent: NodeId) -> Vec<NodeId> {
        self.predecessors(referent)
            .into_iter()
            .filter(|&n| self.node(n).map(|r| r.kind == NodeKind::Content).unwrap_or(false))
            .collect()
    }

    /// Referents directly attached to a content node.
    pub fn referents_of_content(&self, content: NodeId) -> Vec<NodeId> {
        self.successors(content)
            .into_iter()
            .filter(|&n| self.node(n).map(|r| r.kind == NodeKind::Referent).unwrap_or(false))
            .collect()
    }

    /// Ontology-term nodes cited by a content node.
    pub fn terms_of_content(&self, content: NodeId) -> Vec<NodeId> {
        self.successors(content)
            .into_iter()
            .filter(|&n| self.node(n).map(|r| r.kind == NodeKind::OntologyTerm).unwrap_or(false))
            .collect()
    }

    fn check_node(&self, id: NodeId) -> Result<()> {
        if self.node_alive(id) {
            Ok(())
        } else {
            Err(GraphError::NodeNotFound(id))
        }
    }

    fn check_edge(&self, id: EdgeId) -> Result<()> {
        if self.edge_alive(id) {
            Ok(())
        } else {
            Err(GraphError::EdgeNotFound(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (MultiGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = MultiGraph::new();
        let c1 = g.add_node(NodeKind::Content, "ann-1");
        let c2 = g.add_node(NodeKind::Content, "ann-2");
        let r = g.add_node(NodeKind::Referent, "ivl:chr1:0");
        let t = g.add_node(NodeKind::OntologyTerm, "onto:GO:0001");
        g.add_edge(c1, r, EdgeLabel::annotates()).unwrap();
        g.add_edge(c2, r, EdgeLabel::annotates()).unwrap();
        g.add_edge(c1, t, EdgeLabel::cites_term()).unwrap();
        (g, c1, c2, r, t)
    }

    #[test]
    fn add_and_count() {
        let (g, ..) = sample();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn key_lookup() {
        let (g, c1, ..) = sample();
        assert_eq!(g.node_by_key("ann-1"), Some(c1));
        assert_eq!(g.node_by_key("missing"), None);
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, c1, c2, r, t) = sample();
        assert_eq!(g.successors(c1), vec![r, t]);
        let mut preds = g.predecessors(r);
        preds.sort();
        assert_eq!(preds, vec![c1, c2]);
        assert_eq!(g.out_degree(c1), 2);
        assert_eq!(g.in_degree(r), 2);
        assert_eq!(g.degree(r), 2);
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let mut g = MultiGraph::new();
        let a = g.add_node(NodeKind::Content, "a");
        let b = g.add_node(NodeKind::Referent, "b");
        g.add_edge(a, b, EdgeLabel::new("annotates")).unwrap();
        g.add_edge(a, b, EdgeLabel::qualified("annotates", "second-pass")).unwrap();
        assert_eq!(g.edges_between(a, b).len(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_labeled_edge(a, b, "annotates"));
        assert!(!g.has_labeled_edge(b, a, "annotates"));
    }

    #[test]
    fn indirect_relation_via_shared_referent() {
        let (g, c1, c2, r, _) = sample();
        let mut contents = g.contents_of_referent(r);
        contents.sort();
        assert_eq!(contents, vec![c1, c2]);
        assert_eq!(g.referents_of_content(c1), vec![r]);
    }

    #[test]
    fn terms_of_content_filters_kind() {
        let (g, c1, _, _, t) = sample();
        assert_eq!(g.terms_of_content(c1), vec![t]);
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let (mut g, c1, _, r, _) = sample();
        let e = g.edges_between(c1, r)[0];
        g.remove_edge(e).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.referents_of_content(c1).is_empty());
        assert_eq!(g.remove_edge(e), Err(GraphError::EdgeNotFound(e)));
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, c1, c2, r, _) = sample();
        g.remove_node(r).unwrap();
        assert_eq!(g.node_count(), 3);
        // both annotates edges are gone, only the cites-term edge remains
        assert_eq!(g.edge_count(), 1);
        assert!(g.referents_of_content(c1).is_empty());
        assert!(g.referents_of_content(c2).is_empty());
        assert!(g.node(r).is_none());
        assert_eq!(g.node_by_key("ivl:chr1:0"), None);
    }

    #[test]
    fn removed_node_rejected_for_new_edges() {
        let (mut g, c1, _, r, _) = sample();
        g.remove_node(r).unwrap();
        assert_eq!(g.add_edge(c1, r, EdgeLabel::annotates()), Err(GraphError::NodeNotFound(r)));
    }

    #[test]
    fn nodes_of_kind_filters() {
        let (g, ..) = sample();
        assert_eq!(g.nodes_of_kind(NodeKind::Content).count(), 2);
        assert_eq!(g.nodes_of_kind(NodeKind::Referent).count(), 1);
        assert_eq!(g.nodes_of_kind(NodeKind::Object).count(), 0);
    }

    #[test]
    fn neighbors_undirected_dedupes() {
        let mut g = MultiGraph::new();
        let a = g.add_node(NodeKind::Content, "a");
        let b = g.add_node(NodeKind::Referent, "b");
        g.add_edge(a, b, EdgeLabel::annotates()).unwrap();
        g.add_edge(b, a, EdgeLabel::new("back")).unwrap();
        assert_eq!(g.neighbors_undirected(a), vec![b]);
    }

    #[test]
    fn ids_are_not_reused_after_removal() {
        let mut g = MultiGraph::new();
        let a = g.add_node(NodeKind::Object, "a");
        g.remove_node(a).unwrap();
        let b = g.add_node(NodeKind::Object, "b");
        assert_ne!(a, b);
        assert!(g.node(a).is_none());
        assert!(g.node(b).is_some());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let g = MultiGraph::with_capacity(16, 16);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }
}
