//! The `connect(node1, node2, ...)` primitive and general subgraph extraction.
//!
//! `connect` returns a *connection subgraph* intervening a set of terminal nodes: a
//! small subgraph of the a-graph that contains all terminals and links them together.
//! Computing a minimum such subgraph is the (NP-hard) Steiner tree problem, so we use
//! the standard shortest-path heuristic: grow a tree by repeatedly attaching the
//! terminal that is closest (by undirected BFS distance) to the tree built so far.
//! The result is within 2× of optimal for the metric closure, which is plenty for a
//! join-index structure whose purpose is to *show* how results are related.

use std::collections::{HashMap, HashSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::graph::{EdgeId, MultiGraph, NodeId};
use crate::node::NodeKind;
use crate::Result;

/// A materialised subgraph of the a-graph: a set of nodes and the edges among them.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subgraph {
    /// Member nodes.
    pub nodes: Vec<NodeId>,
    /// Member edges (each joining two member nodes).
    pub edges: Vec<EdgeId>,
}

impl Subgraph {
    /// An empty subgraph.
    pub fn new() -> Self {
        Subgraph::default()
    }

    /// Build the *induced* subgraph on a node set: all member nodes plus every live
    /// edge of the parent graph whose endpoints both belong to the set.
    ///
    /// Cost is `O(Σ out-degree of members)` — it walks each member's outgoing edges
    /// rather than scanning the whole parent graph.
    pub fn induced(graph: &MultiGraph, nodes: impl IntoIterator<Item = NodeId>) -> Subgraph {
        let set: HashSet<NodeId> = nodes.into_iter().filter(|&n| graph.node_alive(n)).collect();
        let mut nodes: Vec<NodeId> = set.iter().copied().collect();
        nodes.sort();
        let mut edges = Vec::new();
        for &n in &nodes {
            for &e in graph.out_edges(n) {
                if let Some(rec) = graph.edge(e) {
                    if set.contains(&rec.to) {
                        edges.push(e);
                    }
                }
            }
        }
        edges.sort();
        Subgraph { nodes, edges }
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of member edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when the subgraph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether a node belongs to the subgraph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok() || self.nodes.contains(&node)
    }

    /// Member nodes of a particular kind.
    pub fn nodes_of_kind(&self, graph: &MultiGraph, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| graph.node(n).map(|r| r.kind == kind).unwrap_or(false))
            .collect()
    }

    /// Merge another subgraph into this one (set union on nodes and edges).
    pub fn union_with(&mut self, other: &Subgraph) {
        let node_set: HashSet<NodeId> = self.nodes.iter().copied().collect();
        for &n in &other.nodes {
            if !node_set.contains(&n) {
                self.nodes.push(n);
            }
        }
        let edge_set: HashSet<EdgeId> = self.edges.iter().copied().collect();
        for &e in &other.edges {
            if !edge_set.contains(&e) {
                self.edges.push(e);
            }
        }
        self.nodes.sort();
        self.edges.sort();
    }
}

/// The result of the `connect` primitive: a connection subgraph plus the terminals it
/// was asked to connect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionSubgraph {
    /// The terminal nodes the caller asked to connect.
    pub terminals: Vec<NodeId>,
    /// The intervening subgraph (contains every terminal).
    pub subgraph: Subgraph,
}

impl ConnectionSubgraph {
    /// Total number of nodes in the connection subgraph.
    pub fn size(&self) -> usize {
        self.subgraph.node_count()
    }

    /// The non-terminal ("Steiner") nodes introduced to connect the terminals.
    pub fn steiner_nodes(&self) -> Vec<NodeId> {
        let terms: HashSet<NodeId> = self.terminals.iter().copied().collect();
        self.subgraph.nodes.iter().copied().filter(|n| !terms.contains(n)).collect()
    }
}

impl MultiGraph {
    /// The paper's `connect(node1, node2, ...)` primitive: a connection subgraph
    /// intervening the given nodes.
    ///
    /// Returns an error if fewer than two distinct live terminals are supplied or the
    /// terminals are not mutually reachable ignoring edge direction.
    pub fn connect(&self, terminals: &[NodeId]) -> Result<ConnectionSubgraph> {
        let mut terms: Vec<NodeId> = Vec::new();
        for &t in terminals {
            if !self.node_alive(t) {
                return Err(GraphError::NodeNotFound(t));
            }
            if !terms.contains(&t) {
                terms.push(t);
            }
        }
        if terms.len() < 2 {
            return Err(GraphError::TooFewTerminals(terms.len()));
        }

        // Grow a Steiner-ish tree: start from the first terminal, repeatedly run a BFS
        // from the current tree and attach the nearest missing terminal along its
        // shortest path.
        let mut tree_nodes: HashSet<NodeId> = HashSet::new();
        let mut tree_edges: HashSet<EdgeId> = HashSet::new();
        tree_nodes.insert(terms[0]);
        let mut remaining: Vec<NodeId> = terms[1..].to_vec();

        while !remaining.is_empty() {
            match self.nearest_terminal(&tree_nodes, &remaining) {
                Some((reached, path_nodes, path_edges)) => {
                    for n in path_nodes {
                        tree_nodes.insert(n);
                    }
                    for e in path_edges {
                        tree_edges.insert(e);
                    }
                    remaining.retain(|&t| t != reached);
                }
                None => {
                    return Err(GraphError::Disconnected { unreachable: remaining[0] });
                }
            }
        }

        let mut nodes: Vec<NodeId> = tree_nodes.into_iter().collect();
        nodes.sort();
        let mut edges: Vec<EdgeId> = tree_edges.into_iter().collect();
        edges.sort();
        Ok(ConnectionSubgraph { terminals: terms, subgraph: Subgraph { nodes, edges } })
    }

    /// Multi-source BFS from the current tree; returns the first remaining terminal
    /// reached together with the path (nodes and edges) that attaches it to the tree.
    fn nearest_terminal(
        &self,
        tree: &HashSet<NodeId>,
        remaining: &[NodeId],
    ) -> Option<(NodeId, Vec<NodeId>, Vec<EdgeId>)> {
        let targets: HashSet<NodeId> = remaining.iter().copied().collect();
        let mut parent: HashMap<NodeId, (NodeId, EdgeId)> = HashMap::new();
        let mut visited: HashSet<NodeId> = tree.clone();
        let mut queue: VecDeque<NodeId> = tree.iter().copied().collect();

        while let Some(node) = queue.pop_front() {
            for (next, edge) in self.undirected_steps(node) {
                if visited.contains(&next) {
                    continue;
                }
                visited.insert(next);
                parent.insert(next, (node, edge));
                if targets.contains(&next) {
                    // rebuild the attachment path back to the tree
                    let mut path_nodes = vec![next];
                    let mut path_edges = Vec::new();
                    let mut cur = next;
                    while let Some(&(prev, e)) = parent.get(&cur) {
                        path_edges.push(e);
                        path_nodes.push(prev);
                        if tree.contains(&prev) {
                            break;
                        }
                        cur = prev;
                    }
                    return Some((next, path_nodes, path_edges));
                }
                queue.push_back(next);
            }
        }
        None
    }

    fn undirected_steps(&self, node: NodeId) -> Vec<(NodeId, EdgeId)> {
        let mut out = Vec::new();
        for &e in self.out_edges(node) {
            if let Some(rec) = self.edge(e) {
                out.push((rec.to, e));
            }
        }
        for &e in self.in_edges(node) {
            if let Some(rec) = self.edge(e) {
                out.push((rec.from, e));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{EdgeLabel, NodeKind};

    /// Star: three contents annotating a shared referent; referent part-of one object.
    fn star() -> (MultiGraph, Vec<NodeId>, NodeId, NodeId) {
        let mut g = MultiGraph::new();
        let r = g.add_node(NodeKind::Referent, "r");
        let o = g.add_node(NodeKind::Object, "o");
        g.add_edge(r, o, EdgeLabel::part_of()).unwrap();
        let contents: Vec<NodeId> = (0..3)
            .map(|i| {
                let c = g.add_node(NodeKind::Content, format!("c{i}"));
                g.add_edge(c, r, EdgeLabel::annotates()).unwrap();
                c
            })
            .collect();
        (g, contents, r, o)
    }

    #[test]
    fn connect_two_contents_goes_through_shared_referent() {
        let (g, contents, r, _) = star();
        let cs = g.connect(&[contents[0], contents[1]]).unwrap();
        assert!(cs.subgraph.contains_node(r));
        assert_eq!(cs.size(), 3);
        assert_eq!(cs.steiner_nodes(), vec![r]);
    }

    #[test]
    fn connect_all_three_contents() {
        let (g, contents, r, _) = star();
        let cs = g.connect(&contents).unwrap();
        assert_eq!(cs.size(), 4);
        assert!(cs.subgraph.contains_node(r));
        assert_eq!(cs.subgraph.edge_count(), 3);
    }

    #[test]
    fn connect_requires_two_terminals() {
        let (g, contents, ..) = star();
        assert_eq!(g.connect(&[contents[0]]), Err(GraphError::TooFewTerminals(1)));
        assert_eq!(g.connect(&[contents[0], contents[0]]), Err(GraphError::TooFewTerminals(1)));
    }

    #[test]
    fn connect_dead_terminal_errors() {
        let (mut g, contents, ..) = star();
        let dead = g.add_node(NodeKind::Object, "dead");
        g.remove_node(dead).unwrap();
        assert_eq!(g.connect(&[contents[0], dead]), Err(GraphError::NodeNotFound(dead)));
    }

    #[test]
    fn connect_disconnected_errors() {
        let (mut g, contents, ..) = star();
        let lonely = g.add_node(NodeKind::Object, "island");
        match g.connect(&[contents[0], lonely]) {
            Err(GraphError::Disconnected { unreachable }) => assert_eq!(unreachable, lonely),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn connection_contains_all_terminals() {
        let (g, contents, _, o) = star();
        let cs = g.connect(&[contents[0], contents[2], o]).unwrap();
        for t in &cs.terminals {
            assert!(cs.subgraph.contains_node(*t));
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let (g, contents, r, o) = star();
        let sub = Subgraph::induced(&g, [contents[0], r]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        let sub2 = Subgraph::induced(&g, [contents[0], o]);
        assert_eq!(sub2.edge_count(), 0);
    }

    #[test]
    fn induced_subgraph_skips_dead_nodes() {
        let (mut g, contents, r, _) = star();
        g.remove_node(contents[1]).unwrap();
        let sub = Subgraph::induced(&g, [contents[1], r]);
        assert_eq!(sub.node_count(), 1);
    }

    #[test]
    fn subgraph_union() {
        let (g, contents, r, o) = star();
        let mut a = Subgraph::induced(&g, [contents[0], r]);
        let b = Subgraph::induced(&g, [r, o]);
        a.union_with(&b);
        assert_eq!(a.node_count(), 3);
        assert_eq!(a.edge_count(), 2);
    }

    #[test]
    fn nodes_of_kind_on_subgraph() {
        let (g, contents, r, o) = star();
        let sub = Subgraph::induced(&g, [contents[0], contents[1], r, o]);
        assert_eq!(sub.nodes_of_kind(&g, NodeKind::Content).len(), 2);
        assert_eq!(sub.nodes_of_kind(&g, NodeKind::Referent), vec![r]);
        assert_eq!(sub.nodes_of_kind(&g, NodeKind::Object), vec![o]);
    }
}
