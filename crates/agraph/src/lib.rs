//! # agraph — the Graphitti a-graph substrate
//!
//! The paper models the association structure between annotations and the data they
//! annotate as a directed labelled multigraph, the *a-graph*: nodes are annotation
//! contents, annotation referents (marked substructures of primary data) and ontology
//! terms; a directed edge connects a content to each of its referents and to each
//! ontology term it cites.  The a-graph acts as a *general-purpose labelled join index*
//! across every other store in the system.
//!
//! This crate implements that multigraph from scratch, together with the two primitive
//! operations named in the paper:
//!
//! * [`MultiGraph::path`] — return a path between two nodes, and
//! * [`MultiGraph::connect`] — return a *connection subgraph* intervening a set of nodes.
//!
//! Additional traversal, neighbourhood and subgraph utilities used by the query
//! processor are provided in [`traverse`] and [`subgraph`].
//!
//! ```
//! use agraph::{MultiGraph, NodeKind, EdgeLabel};
//!
//! let mut g = MultiGraph::new();
//! let content = g.add_node(NodeKind::Content, "ann-1");
//! let referent = g.add_node(NodeKind::Referent, "seq-1:10-50");
//! g.add_edge(content, referent, EdgeLabel::new("annotates"));
//! assert!(g.path(content, referent).is_some());
//! ```

pub mod analysis;
pub mod error;
pub mod graph;
pub mod node;
pub mod path;
pub mod subgraph;
pub mod traverse;

pub use analysis::{
    degree_distribution, eccentricity, is_connected, metrics, top_hubs, GraphMetrics,
};
pub use error::GraphError;
pub use graph::{EdgeId, EdgeRecord, MultiGraph, NodeId};
pub use node::{EdgeLabel, NodeKind, NodeRecord};
pub use path::{Path, PathSearch};
pub use subgraph::{ConnectionSubgraph, Subgraph};
pub use traverse::{Bfs, Direction, Neighborhood};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
