//! Node and edge payloads of the a-graph.
//!
//! The a-graph has two *structural* node classes in the paper — annotation contents and
//! annotation referents — plus ontology-term nodes that annotations point to.  We also
//! allow a generic `Object` kind so that whole primary objects (not just marked
//! substructures) can participate in the join index, which the demo's "correlated data
//! viewing" needs.

use serde::{Deserialize, Serialize};

/// The class of an a-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeKind {
    /// An annotation content: the XML comment document itself.
    Content,
    /// An annotation referent: a marked substructure of a primary data object
    /// (an interval of a sequence, a region of an image, a block of a relation, ...).
    Referent,
    /// A term node of a registered ontology.
    OntologyTerm,
    /// A whole primary data object registered in the relational store.
    Object,
}

impl NodeKind {
    /// All node kinds, in a stable order.
    pub const ALL: [NodeKind; 4] =
        [NodeKind::Content, NodeKind::Referent, NodeKind::OntologyTerm, NodeKind::Object];

    /// A short, stable lowercase name used in query syntax and display output.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeKind::Content => "content",
            NodeKind::Referent => "referent",
            NodeKind::OntologyTerm => "ontology",
            NodeKind::Object => "object",
        }
    }

    /// Parse a node kind from its [`as_str`](Self::as_str) form.
    pub fn parse(s: &str) -> Option<NodeKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "content" | "annotation" => Some(NodeKind::Content),
            "referent" | "substructure" => Some(NodeKind::Referent),
            "ontology" | "term" | "ontologyterm" | "ontology_term" => Some(NodeKind::OntologyTerm),
            "object" | "data" => Some(NodeKind::Object),
            _ => None,
        }
    }
}

impl std::fmt::Display for NodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A node payload: its kind plus an external key linking it to the owning store.
///
/// The external key is opaque to the graph; Graphitti core uses keys like
/// `"xml:ann-42"`, `"ivl:chr7:120"` or `"onto:NIF:DeepCerebellarNuclei"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeRecord {
    /// Structural class of the node.
    pub kind: NodeKind,
    /// External key into the store that owns the underlying object.
    pub key: String,
}

impl NodeRecord {
    /// Create a new node record.
    pub fn new(kind: NodeKind, key: impl Into<String>) -> Self {
        NodeRecord { kind, key: key.into() }
    }
}

/// A label on a directed a-graph edge.
///
/// Labels carry the relationship name (e.g. `annotates`, `cites-term`, `derived-from`)
/// and an optional free-form qualifier, mirroring the "quantified binary relationships"
/// the paper allows between term pairs and between contents and referents.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeLabel {
    /// Relationship name.
    pub name: String,
    /// Optional qualifier (e.g. provenance, author, confidence bucket).
    pub qualifier: Option<String>,
}

impl EdgeLabel {
    /// A label with no qualifier.
    pub fn new(name: impl Into<String>) -> Self {
        EdgeLabel { name: name.into(), qualifier: None }
    }

    /// A label with a qualifier.
    pub fn qualified(name: impl Into<String>, qualifier: impl Into<String>) -> Self {
        EdgeLabel { name: name.into(), qualifier: Some(qualifier.into()) }
    }

    /// The conventional label for content → referent edges.
    pub fn annotates() -> Self {
        EdgeLabel::new("annotates")
    }

    /// The conventional label for content → ontology-term edges.
    pub fn cites_term() -> Self {
        EdgeLabel::new("cites-term")
    }

    /// The conventional label for referent → object edges ("this substructure is part
    /// of that object").
    pub fn part_of() -> Self {
        EdgeLabel::new("part-of")
    }

    /// True if this label's name equals `name` (case-sensitive).
    pub fn is(&self, name: &str) -> bool {
        self.name == name
    }
}

impl std::fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{}[{}]", self.name, q),
            None => f.write_str(&self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_roundtrip() {
        for kind in NodeKind::ALL {
            assert_eq!(NodeKind::parse(kind.as_str()), Some(kind));
        }
    }

    #[test]
    fn node_kind_parse_aliases() {
        assert_eq!(NodeKind::parse("Annotation"), Some(NodeKind::Content));
        assert_eq!(NodeKind::parse("substructure"), Some(NodeKind::Referent));
        assert_eq!(NodeKind::parse("TERM"), Some(NodeKind::OntologyTerm));
        assert_eq!(NodeKind::parse("data"), Some(NodeKind::Object));
        assert_eq!(NodeKind::parse("bogus"), None);
    }

    #[test]
    fn edge_label_display() {
        assert_eq!(EdgeLabel::annotates().to_string(), "annotates");
        assert_eq!(
            EdgeLabel::qualified("correlates", "pearson>0.9").to_string(),
            "correlates[pearson>0.9]"
        );
    }

    #[test]
    fn edge_label_is() {
        assert!(EdgeLabel::cites_term().is("cites-term"));
        assert!(!EdgeLabel::cites_term().is("annotates"));
    }

    #[test]
    fn node_record_construction() {
        let r = NodeRecord::new(NodeKind::Referent, "ivl:chr1:55");
        assert_eq!(r.kind, NodeKind::Referent);
        assert_eq!(r.key, "ivl:chr1:55");
    }
}
