//! Error type for a-graph operations.

use std::fmt;

use crate::graph::{EdgeId, NodeId};

/// Errors raised by a-graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id did not refer to a live node (never existed or was removed).
    NodeNotFound(NodeId),
    /// An edge id did not refer to a live edge.
    EdgeNotFound(EdgeId),
    /// A connection subgraph was requested for fewer than two terminal nodes.
    TooFewTerminals(usize),
    /// The requested terminals are not mutually connected (ignoring direction).
    Disconnected {
        /// A terminal that could not be reached from the first terminal.
        unreachable: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(id) => write!(f, "node {id:?} not found"),
            GraphError::EdgeNotFound(id) => write!(f, "edge {id:?} not found"),
            GraphError::TooFewTerminals(n) => {
                write!(f, "connection subgraph needs at least 2 terminals, got {n}")
            }
            GraphError::Disconnected { unreachable } => {
                write!(f, "terminal {unreachable:?} is not connected to the other terminals")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = GraphError::TooFewTerminals(1);
        assert!(e.to_string().contains("at least 2"));
        let e = GraphError::NodeNotFound(NodeId(7));
        assert!(e.to_string().contains("not found"));
    }
}
