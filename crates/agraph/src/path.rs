//! The `path(node1, node2)` primitive.
//!
//! The paper lists `path` as one of the two primitive a-graph operations: return a path
//! between two given nodes.  We implement shortest-path search by BFS (the a-graph is
//! unweighted) over a configurable direction and optional label / node-kind filters, so
//! the same machinery evaluates both the raw primitive and the label-restricted path
//! expressions of the query language.

use std::collections::{HashMap, VecDeque};

use crate::graph::{EdgeId, MultiGraph, NodeId};
use crate::node::NodeKind;
use crate::traverse::Direction;

/// A concrete path through the a-graph: alternating nodes and the edges that join them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The nodes along the path, from source to target inclusive.
    pub nodes: Vec<NodeId>,
    /// The edges used, `edges[i]` joining `nodes[i]` and `nodes[i+1]`.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Number of edges in the path (0 when source == target).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the path is a single node.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The target node.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("path always has at least one node")
    }
}

/// A configurable shortest-path search.
///
/// By default the search ignores edge direction (the a-graph join index is navigated in
/// both directions by the demo UI), follows any label, and may pass through any node
/// kind.
#[derive(Debug, Clone)]
pub struct PathSearch {
    direction: Direction,
    allowed_labels: Option<Vec<String>>,
    allowed_via_kinds: Option<Vec<NodeKind>>,
    max_len: Option<usize>,
}

impl Default for PathSearch {
    fn default() -> Self {
        PathSearch {
            direction: Direction::Both,
            allowed_labels: None,
            allowed_via_kinds: None,
            max_len: None,
        }
    }
}

impl PathSearch {
    /// A search with default settings (undirected, unrestricted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Follow edges only in the given direction.
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Only traverse edges whose label name is one of `labels`.
    pub fn labels<I, S>(mut self, labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.allowed_labels = Some(labels.into_iter().map(Into::into).collect());
        self
    }

    /// Only pass *through* nodes of the given kinds (the source and target are exempt).
    pub fn via_kinds<I>(mut self, kinds: I) -> Self
    where
        I: IntoIterator<Item = NodeKind>,
    {
        self.allowed_via_kinds = Some(kinds.into_iter().collect());
        self
    }

    /// Bound the path length (number of edges).
    pub fn max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }

    /// Find a shortest path from `from` to `to` under the configured restrictions.
    pub fn find(&self, graph: &MultiGraph, from: NodeId, to: NodeId) -> Option<Path> {
        if !graph.node_alive(from) || !graph.node_alive(to) {
            return None;
        }
        if from == to {
            return Some(Path { nodes: vec![from], edges: vec![] });
        }
        // parent[n] = (previous node, edge used)
        let mut parent: HashMap<NodeId, (NodeId, EdgeId)> = HashMap::new();
        let mut depth: HashMap<NodeId, usize> = HashMap::new();
        depth.insert(from, 0);
        let mut queue = VecDeque::new();
        queue.push_back(from);

        while let Some(node) = queue.pop_front() {
            let d = depth[&node];
            if let Some(max) = self.max_len {
                if d >= max {
                    continue;
                }
            }
            for (next, edge) in self.expand(graph, node) {
                if depth.contains_key(&next) {
                    continue;
                }
                if next != to && !self.kind_allowed(graph, next) {
                    continue;
                }
                depth.insert(next, d + 1);
                parent.insert(next, (node, edge));
                if next == to {
                    return Some(Self::rebuild(from, to, &parent));
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// Shortest-path distance (number of edges), if a path exists.
    pub fn distance(&self, graph: &MultiGraph, from: NodeId, to: NodeId) -> Option<usize> {
        self.find(graph, from, to).map(|p| p.len())
    }

    /// Whether a path exists between the two nodes under the configured restrictions.
    pub fn exists(&self, graph: &MultiGraph, from: NodeId, to: NodeId) -> bool {
        self.find(graph, from, to).is_some()
    }

    fn expand(&self, graph: &MultiGraph, node: NodeId) -> Vec<(NodeId, EdgeId)> {
        let mut out = Vec::new();
        let mut push_edges = |edge_ids: &[EdgeId], forward: bool| {
            for &e in edge_ids {
                if let Some(rec) = graph.edge(e) {
                    if let Some(labels) = &self.allowed_labels {
                        if !labels.iter().any(|l| rec.label.is(l)) {
                            continue;
                        }
                    }
                    out.push((if forward { rec.to } else { rec.from }, e));
                }
            }
        };
        match self.direction {
            Direction::Forward => push_edges(graph.out_edges(node), true),
            Direction::Backward => push_edges(graph.in_edges(node), false),
            Direction::Both => {
                push_edges(graph.out_edges(node), true);
                push_edges(graph.in_edges(node), false);
            }
        }
        out
    }

    fn kind_allowed(&self, graph: &MultiGraph, node: NodeId) -> bool {
        match &self.allowed_via_kinds {
            None => true,
            Some(kinds) => graph.node(node).map(|r| kinds.contains(&r.kind)).unwrap_or(false),
        }
    }

    fn rebuild(from: NodeId, to: NodeId, parent: &HashMap<NodeId, (NodeId, EdgeId)>) -> Path {
        let mut nodes = vec![to];
        let mut edges = Vec::new();
        let mut cur = to;
        while cur != from {
            let (prev, edge) = parent[&cur];
            nodes.push(prev);
            edges.push(edge);
            cur = prev;
        }
        nodes.reverse();
        edges.reverse();
        Path { nodes, edges }
    }
}

impl MultiGraph {
    /// The paper's `path(node1, node2)` primitive: a shortest undirected path between
    /// the two nodes, if one exists.
    pub fn path(&self, from: NodeId, to: NodeId) -> Option<Path> {
        PathSearch::new().find(self, from, to)
    }

    /// Single-source shortest-path distances from `source` to every reachable node
    /// (undirected), as a map. The source maps to 0.
    pub fn single_source_distances(&self, source: NodeId) -> HashMap<NodeId, usize> {
        use crate::traverse::{Bfs, Direction};
        Bfs::new(self, source, Direction::Both).collect_depths()
    }

    /// All simple (loop-free) undirected paths from `from` to `to` with at most `max_len`
    /// edges. Exponential in the worst case — intended for small neighbourhoods such as a
    /// result subgraph, so `max_len` should be kept small.
    pub fn all_simple_paths(&self, from: NodeId, to: NodeId, max_len: usize) -> Vec<Path> {
        let mut results = Vec::new();
        if !self.node_alive(from) || !self.node_alive(to) {
            return results;
        }
        let mut node_stack = vec![from];
        let mut edge_stack: Vec<EdgeId> = Vec::new();
        let mut visited = std::collections::HashSet::new();
        visited.insert(from);
        self.dfs_paths(
            from,
            to,
            max_len,
            &mut node_stack,
            &mut edge_stack,
            &mut visited,
            &mut results,
        );
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_paths(
        &self,
        current: NodeId,
        target: NodeId,
        max_len: usize,
        node_stack: &mut Vec<NodeId>,
        edge_stack: &mut Vec<EdgeId>,
        visited: &mut std::collections::HashSet<NodeId>,
        results: &mut Vec<Path>,
    ) {
        if current == target && node_stack.len() > 1 {
            results.push(Path { nodes: node_stack.clone(), edges: edge_stack.clone() });
            return;
        }
        if edge_stack.len() >= max_len {
            return;
        }
        // explore both directions
        let mut steps: Vec<(NodeId, EdgeId)> = Vec::new();
        for &e in self.out_edges(current) {
            if let Some(r) = self.edge(e) {
                steps.push((r.to, e));
            }
        }
        for &e in self.in_edges(current) {
            if let Some(r) = self.edge(e) {
                steps.push((r.from, e));
            }
        }
        for (next, edge) in steps {
            if visited.contains(&next) {
                continue;
            }
            visited.insert(next);
            node_stack.push(next);
            edge_stack.push(edge);
            self.dfs_paths(next, target, max_len, node_stack, edge_stack, visited, results);
            node_stack.pop();
            edge_stack.pop();
            visited.remove(&next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{EdgeLabel, NodeKind};

    /// content -> referent -> object, content -> term
    fn diamond() -> (MultiGraph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = MultiGraph::new();
        let c = g.add_node(NodeKind::Content, "c");
        let r = g.add_node(NodeKind::Referent, "r");
        let o = g.add_node(NodeKind::Object, "o");
        let t = g.add_node(NodeKind::OntologyTerm, "t");
        g.add_edge(c, r, EdgeLabel::annotates()).unwrap();
        g.add_edge(r, o, EdgeLabel::part_of()).unwrap();
        g.add_edge(c, t, EdgeLabel::cites_term()).unwrap();
        (g, c, r, o, t)
    }

    #[test]
    fn trivial_path_same_node() {
        let (g, c, ..) = diamond();
        let p = g.path(c, c).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.source(), c);
        assert_eq!(p.target(), c);
    }

    #[test]
    fn path_follows_edges() {
        let (g, c, r, o, _) = diamond();
        let p = g.path(c, o).unwrap();
        assert_eq!(p.nodes, vec![c, r, o]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn undirected_path_goes_backwards() {
        let (g, c, _, o, t) = diamond();
        // o -> c requires walking edges backwards; t -> o crosses through c and r.
        assert_eq!(g.path(o, c).unwrap().len(), 2);
        assert_eq!(g.path(t, o).unwrap().len(), 3);
    }

    #[test]
    fn directed_search_respects_direction() {
        let (g, c, _, o, _) = diamond();
        let forward = PathSearch::new().direction(Direction::Forward);
        assert!(forward.exists(&g, c, o));
        assert!(!forward.exists(&g, o, c));
        let backward = PathSearch::new().direction(Direction::Backward);
        assert!(backward.exists(&g, o, c));
    }

    #[test]
    fn label_filter_blocks_paths() {
        let (g, c, _, o, _) = diamond();
        let only_annotates = PathSearch::new().labels(["annotates"]);
        assert!(!only_annotates.exists(&g, c, o));
        let both = PathSearch::new().labels(["annotates", "part-of"]);
        assert!(both.exists(&g, c, o));
    }

    #[test]
    fn via_kind_filter_constrains_interior() {
        let (g, _c, _, o, t) = diamond();
        // t -> o must pass through c (Content) and r (Referent).
        let restricted = PathSearch::new().via_kinds([NodeKind::Referent]);
        assert!(!restricted.exists(&g, t, o));
        let permissive = PathSearch::new().via_kinds([NodeKind::Referent, NodeKind::Content]);
        assert!(permissive.exists(&g, t, o));
    }

    #[test]
    fn max_len_bounds_search() {
        let (g, c, _, o, _) = diamond();
        assert!(PathSearch::new().max_len(1).find(&g, c, o).is_none());
        assert!(PathSearch::new().max_len(2).find(&g, c, o).is_some());
    }

    #[test]
    fn missing_nodes_give_none() {
        let (mut g, c, r, o, _) = diamond();
        g.remove_node(r).unwrap();
        assert!(g.path(c, o).is_none());
    }

    #[test]
    fn distance_matches_path_len() {
        let (g, c, _, o, _) = diamond();
        let s = PathSearch::new();
        assert_eq!(s.distance(&g, c, o), Some(2));
        assert_eq!(s.distance(&g, c, c), Some(0));
    }

    #[test]
    fn single_source_distances_map() {
        let (g, c, r, o, t) = diamond();
        let dist = g.single_source_distances(c);
        assert_eq!(dist[&c], 0);
        assert_eq!(dist[&r], 1);
        assert_eq!(dist[&t], 1);
        assert_eq!(dist[&o], 2);
    }

    #[test]
    fn all_simple_paths_enumerates() {
        // a square: a-b-c-d-a, plus diagonal a-c
        let mut g = MultiGraph::new();
        let a = g.add_node(NodeKind::Object, "a");
        let b = g.add_node(NodeKind::Object, "b");
        let c = g.add_node(NodeKind::Object, "c");
        let d = g.add_node(NodeKind::Object, "d");
        g.add_edge(a, b, EdgeLabel::new("e")).unwrap();
        g.add_edge(b, c, EdgeLabel::new("e")).unwrap();
        g.add_edge(c, d, EdgeLabel::new("e")).unwrap();
        g.add_edge(d, a, EdgeLabel::new("e")).unwrap();
        g.add_edge(a, c, EdgeLabel::new("e")).unwrap();

        // paths a->c within 3 edges: a-c (1), a-b-c (2), a-d-c (2)
        let paths = g.all_simple_paths(a, c, 3);
        assert_eq!(paths.len(), 3);
        // all are simple (no repeated nodes)
        for p in &paths {
            let mut seen = std::collections::HashSet::new();
            assert!(p.nodes.iter().all(|n| seen.insert(*n)));
        }
        // bounding length to 1 yields only the direct edge
        assert_eq!(g.all_simple_paths(a, c, 1).len(), 1);
    }

    #[test]
    fn all_simple_paths_missing_node() {
        let (mut g, c, r, o, _) = diamond();
        g.remove_node(r).unwrap();
        assert!(g.all_simple_paths(c, o, 5).is_empty());
    }

    #[test]
    fn shortest_path_is_chosen_among_alternatives() {
        let mut g = MultiGraph::new();
        let a = g.add_node(NodeKind::Object, "a");
        let b = g.add_node(NodeKind::Object, "b");
        let c = g.add_node(NodeKind::Object, "c");
        let d = g.add_node(NodeKind::Object, "d");
        // long way a-b-c-d, short way a-d
        g.add_edge(a, b, EdgeLabel::new("e")).unwrap();
        g.add_edge(b, c, EdgeLabel::new("e")).unwrap();
        g.add_edge(c, d, EdgeLabel::new("e")).unwrap();
        g.add_edge(a, d, EdgeLabel::new("e")).unwrap();
        assert_eq!(g.path(a, d).unwrap().len(), 1);
    }
}
