//! Structural analysis of the a-graph.
//!
//! The query tab shows a result subgraph and lets the user explore it; these metrics
//! describe that structure (component sizes, degree distribution, eccentricity) and back
//! diagnostics over the whole join index.

use std::collections::HashMap;

use crate::graph::{MultiGraph, NodeId};
use crate::node::NodeKind;
use crate::traverse::{connected_components, Bfs, Direction};

/// Summary metrics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Number of live nodes.
    pub nodes: usize,
    /// Number of live edges.
    pub edges: usize,
    /// Number of weakly connected components.
    pub components: usize,
    /// Size of the largest weakly connected component.
    pub largest_component: usize,
    /// Maximum total (undirected) degree of any node.
    pub max_degree: usize,
    /// Count of nodes of each kind.
    pub kind_counts: HashMap<NodeKind, usize>,
}

/// Compute summary metrics for a graph.
pub fn metrics(graph: &MultiGraph) -> GraphMetrics {
    let comps = connected_components(graph);
    let largest = comps.iter().map(Vec::len).max().unwrap_or(0);
    let max_degree = graph.nodes().map(|n| graph.degree(n)).max().unwrap_or(0);
    let mut kind_counts: HashMap<NodeKind, usize> = HashMap::new();
    for kind in NodeKind::ALL {
        kind_counts.insert(kind, graph.nodes_of_kind(kind).count());
    }
    GraphMetrics {
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        components: comps.len(),
        largest_component: largest,
        max_degree,
        kind_counts,
    }
}

/// The degree distribution: a map from degree to the number of nodes with that degree.
pub fn degree_distribution(graph: &MultiGraph) -> HashMap<usize, usize> {
    let mut dist: HashMap<usize, usize> = HashMap::new();
    for n in graph.nodes() {
        *dist.entry(graph.degree(n)).or_insert(0) += 1;
    }
    dist
}

/// The eccentricity of a node: the greatest undirected distance from it to any node in
/// its component. Returns 0 for an isolated node.
pub fn eccentricity(graph: &MultiGraph, node: NodeId) -> usize {
    Bfs::new(graph, node, Direction::Both).map(|(_, d)| d).max().unwrap_or(0)
}

/// Whether the whole graph is weakly connected (a single component). Empty graphs are
/// considered connected.
pub fn is_connected(graph: &MultiGraph) -> bool {
    connected_components(graph).len() <= 1
}

/// The nodes with the highest degree (top-k hubs), sorted by descending degree then id.
pub fn top_hubs(graph: &MultiGraph, k: usize) -> Vec<(NodeId, usize)> {
    let mut by_degree: Vec<(NodeId, usize)> = graph.nodes().map(|n| (n, graph.degree(n))).collect();
    by_degree.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    by_degree.truncate(k);
    by_degree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::EdgeLabel;

    /// Two contents sharing one referent, plus an isolated object.
    fn sample() -> MultiGraph {
        let mut g = MultiGraph::new();
        let c1 = g.add_node(NodeKind::Content, "c1");
        let c2 = g.add_node(NodeKind::Content, "c2");
        let r = g.add_node(NodeKind::Referent, "r");
        g.add_edge(c1, r, EdgeLabel::annotates()).unwrap();
        g.add_edge(c2, r, EdgeLabel::annotates()).unwrap();
        g.add_node(NodeKind::Object, "lonely");
        g
    }

    #[test]
    fn metrics_summary() {
        let g = sample();
        let m = metrics(&g);
        assert_eq!(m.nodes, 4);
        assert_eq!(m.edges, 2);
        assert_eq!(m.components, 2); // the star + the lonely object
        assert_eq!(m.largest_component, 3);
        assert_eq!(m.max_degree, 2); // the shared referent
        assert_eq!(m.kind_counts[&NodeKind::Content], 2);
        assert_eq!(m.kind_counts[&NodeKind::Object], 1);
    }

    #[test]
    fn degree_distribution_counts() {
        let g = sample();
        let dist = degree_distribution(&g);
        // r has degree 2; c1, c2 have degree 1; lonely has degree 0
        assert_eq!(dist[&2], 1);
        assert_eq!(dist[&1], 2);
        assert_eq!(dist[&0], 1);
    }

    #[test]
    fn eccentricity_and_connectivity() {
        let g = sample();
        assert!(!is_connected(&g));
        let r = g.node_by_key("r").unwrap();
        assert_eq!(eccentricity(&g, r), 1);
        let lonely = g.node_by_key("lonely").unwrap();
        assert_eq!(eccentricity(&g, lonely), 0);
    }

    #[test]
    fn hubs() {
        let g = sample();
        let hubs = top_hubs(&g, 2);
        assert_eq!(hubs.len(), 2);
        assert_eq!(hubs[0].1, 2); // the shared referent is the top hub
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = MultiGraph::new();
        assert!(is_connected(&g));
        let m = metrics(&g);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.components, 0);
    }
}
