//! Property-based tests for the a-graph: path search is checked against a reference
//! reachability computation, and connect() must always contain its terminals.

use agraph::{Direction, EdgeLabel, MultiGraph, NodeId, NodeKind, PathSearch};
use proptest::prelude::*;
use std::collections::HashSet;

/// Build a graph from a list of (from, to) index pairs over `n` nodes.
fn build(n: usize, edges: &[(usize, usize)]) -> (MultiGraph, Vec<NodeId>) {
    let mut g = MultiGraph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(NodeKind::Object, format!("n{i}"))).collect();
    for &(a, b) in edges {
        g.add_edge(ids[a % n], ids[b % n], EdgeLabel::new("e")).unwrap();
    }
    (g, ids)
}

/// Reference reachability by naive iteration to a fixed point (undirected).
fn reachable_ref(n: usize, edges: &[(usize, usize)], from: usize) -> HashSet<usize> {
    let mut reach: HashSet<usize> = HashSet::new();
    reach.insert(from % n);
    loop {
        let before = reach.len();
        for &(a, b) in edges {
            let (a, b) = (a % n, b % n);
            if reach.contains(&a) {
                reach.insert(b);
            }
            if reach.contains(&b) {
                reach.insert(a);
            }
        }
        if reach.len() == before {
            return reach;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn path_exists_iff_reference_reachable(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..40),
        from in 0usize..20,
        to in 0usize..20,
    ) {
        let (g, ids) = build(n, &edges);
        let from_i = from % n;
        let to_i = to % n;
        let reference = reachable_ref(n, &edges, from_i);
        let found = g.path(ids[from_i], ids[to_i]).is_some();
        prop_assert_eq!(found, reference.contains(&to_i));
    }

    #[test]
    fn path_endpoints_and_continuity(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 1..40),
        from in 0usize..15,
        to in 0usize..15,
    ) {
        let (g, ids) = build(n, &edges);
        if let Some(p) = g.path(ids[from % n], ids[to % n]) {
            prop_assert_eq!(p.source(), ids[from % n]);
            prop_assert_eq!(p.target(), ids[to % n]);
            prop_assert_eq!(p.nodes.len(), p.edges.len() + 1);
            // every edge joins consecutive path nodes (in either direction)
            for (i, &e) in p.edges.iter().enumerate() {
                let rec = g.edge(e).unwrap();
                let a = p.nodes[i];
                let b = p.nodes[i + 1];
                prop_assert!(
                    (rec.from == a && rec.to == b) || (rec.from == b && rec.to == a)
                );
            }
        }
    }

    #[test]
    fn directed_path_never_longer_than_undirected(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 1..30),
        from in 0usize..12,
        to in 0usize..12,
    ) {
        let (g, ids) = build(n, &edges);
        let a = ids[from % n];
        let b = ids[to % n];
        let undirected = PathSearch::new().distance(&g, a, b);
        let directed = PathSearch::new().direction(Direction::Forward).distance(&g, a, b);
        if let (Some(u), Some(d)) = (undirected, directed) {
            prop_assert!(u <= d);
        }
        if directed.is_some() {
            prop_assert!(undirected.is_some());
        }
    }

    #[test]
    fn connect_contains_terminals_when_connected(
        n in 3usize..12,
        extra in prop::collection::vec((0usize..12, 0usize..12), 0..20),
        t1 in 0usize..12,
        t2 in 0usize..12,
        t3 in 0usize..12,
    ) {
        // chain guarantees connectivity, extra edges add shortcuts
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend(extra);
        let (g, ids) = build(n, &edges);
        let terminals = [ids[t1 % n], ids[t2 % n], ids[t3 % n]];
        let distinct: HashSet<NodeId> = terminals.iter().copied().collect();
        if distinct.len() >= 2 {
            let cs = g.connect(&terminals).unwrap();
            for t in distinct {
                prop_assert!(cs.subgraph.contains_node(t));
            }
            // the connection subgraph itself must be internally connected:
            // every node must reach the first terminal within the induced subgraph
            let sub_nodes: HashSet<NodeId> = cs.subgraph.nodes.iter().copied().collect();
            prop_assert!(sub_nodes.len() <= n);
        }
    }

    #[test]
    fn connection_subgraph_is_internally_connected(
        n in 3usize..12,
        extra in prop::collection::vec((0usize..12, 0usize..12), 0..20),
        t1 in 0usize..12,
        t2 in 0usize..12,
    ) {
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend(extra);
        let (g, ids) = build(n, &edges);
        let terminals = [ids[t1 % n], ids[t2 % n]];
        if terminals[0] != terminals[1] {
            let cs = g.connect(&terminals).unwrap();
            let members: HashSet<NodeId> = cs.subgraph.nodes.iter().copied().collect();
            let mut reached: HashSet<NodeId> = HashSet::new();
            reached.insert(terminals[0]);
            let mut stack = vec![terminals[0]];
            while let Some(node) = stack.pop() {
                for &e in &cs.subgraph.edges {
                    let rec = g.edge(e).unwrap();
                    let other = if rec.from == node {
                        Some(rec.to)
                    } else if rec.to == node {
                        Some(rec.from)
                    } else {
                        None
                    };
                    if let Some(o) = other {
                        if members.contains(&o) && reached.insert(o) {
                            stack.push(o);
                        }
                    }
                }
            }
            prop_assert!(reached.contains(&terminals[1]));
        }
    }

    #[test]
    fn all_simple_paths_are_simple_and_bounded(
        n in 2usize..8,
        extra in prop::collection::vec((0usize..8, 0usize..8), 0..12),
        from in 0usize..8,
        to in 0usize..8,
        max_len in 1usize..5,
    ) {
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend(extra);
        let (g, ids) = build(n, &edges);
        let paths = g.all_simple_paths(ids[from % n], ids[to % n], max_len);
        for p in &paths {
            prop_assert!(p.len() <= max_len);
            let mut seen = HashSet::new();
            prop_assert!(p.nodes.iter().all(|node| seen.insert(*node)));
            prop_assert_eq!(p.source(), ids[from % n]);
            prop_assert_eq!(p.target(), ids[to % n]);
        }
    }
}
