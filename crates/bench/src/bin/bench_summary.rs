//! Merge the per-bench-binary JSON files the criterion shim writes under
//! `target/criterion-json/` into one machine-readable summary (`BENCH_query.json` by
//! default), so the performance trajectory is comparable across PRs.
//!
//! Usage: `cargo run -p bench --bin bench_summary [-- <input-dir> [<output-file>]]`
//! after `cargo bench`.  Entries are sorted by `(bench, name)` for stable diffs.

use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = criterion::workspace_root();
    let input_dir = args
        .first()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root.join("target").join("criterion-json"));
    let output = args
        .get(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root.join("BENCH_query.json"));
    let (input_dir, output) = (input_dir.display().to_string(), output.display().to_string());
    let input_dir = input_dir.as_str();
    let output = output.as_str();

    let mut entries: Vec<(String, String, f64)> = Vec::new();
    let dir = Path::new(input_dir);
    let read_dir = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) => {
            eprintln!("bench_summary: cannot read {input_dir}: {e} (run `cargo bench` first)");
            std::process::exit(1);
        }
    };
    for entry in read_dir.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_summary: skipping {}: {e}", path.display());
                continue;
            }
        };
        let parsed = match jsonlite::Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("bench_summary: skipping {}: {e:?}", path.display());
                continue;
            }
        };
        let Some(arr) = parsed.as_arr() else { continue };
        for item in arr {
            let bench = item.get("bench").and_then(|j| j.as_str()).unwrap_or("");
            let name = item.get("name").and_then(|j| j.as_str()).unwrap_or("");
            let ns = item.get("ns_per_iter").and_then(|j| j.as_f64()).unwrap_or(f64::NAN);
            if !bench.is_empty() && !name.is_empty() {
                entries.push((bench.to_string(), name.to_string(), ns));
            }
        }
    }
    entries.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));

    let json = jsonlite::Json::obj([
        ("schema", jsonlite::Json::str("graphitti-bench-summary/v1")),
        ("entries", jsonlite::Json::u64(entries.len() as u64)),
        (
            "results",
            jsonlite::Json::Arr(
                entries
                    .iter()
                    .map(|(bench, name, ns)| {
                        jsonlite::Json::obj([
                            ("bench", jsonlite::Json::str(bench.clone())),
                            ("name", jsonlite::Json::str(name.clone())),
                            ("ns_per_iter", jsonlite::Json::Num(*ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(output, json.pretty() + "\n") {
        eprintln!("bench_summary: cannot write {output}: {e}");
        std::process::exit(1);
    }
    println!("bench_summary: wrote {} results to {output}", entries.len());
}
