//! Merge the per-bench-binary JSON files the criterion shim writes under
//! `target/criterion-json/` into machine-readable summaries, so the performance
//! trajectory is comparable across PRs:
//!
//! * latency entries (`{bench, name, ns_per_iter}`) → `BENCH_query.json`;
//! * throughput entries (the same, plus `qps` / percentile / configuration fields
//!   written by the `throughput` bench) → `BENCH_throughput.json`.
//!
//! Usage: `cargo run -p bench --bin bench_summary [-- <input-dir> [<query-output>
//! [<throughput-output>]]]` after `cargo bench`.  Entries are sorted by
//! `(bench, name)` for stable diffs.

use std::path::Path;

/// The extra per-entry fields a throughput measurement carries beyond
/// `{bench, name, ns_per_iter}`.  The cache-picture fields (`hit_rate` through
/// `entries_evicted`) are written by `mixed_rw` on its read-side entries, so the
/// partial-invalidation before/after is visible in `BENCH_throughput.json`;
/// `shards` is the scatter-gather axis (`0` = the unsharded worker-pool service).
/// The durability fields (`records` through `replayed`) are written by the
/// `durability` bench: `batches_per_fsync` is the group-commit coalescing factor
/// and `recovery_ms` the cold checkpoint-then-tail recovery time.  The
/// resilience fields (`goodput_qps` through `degraded`) are written by the
/// `overload` bench: goodput is completed-before-deadline queries per second,
/// `shed`/`deadline_misses` split the losses between admission control and
/// queue-time expiry, and `degraded` counts marked partial answers.
const THROUGHPUT_FIELDS: &[&str] = &[
    "qps",
    "goodput_qps",
    "completed",
    "shed",
    "deadline_misses",
    "degraded",
    "p50_ns",
    "p95_ns",
    "p99_ns",
    "clients",
    "workers",
    "shards",
    "cache",
    "queries",
    "cores",
    "hit_rate",
    "cache_hits",
    "cache_misses",
    "partial_invalidations",
    "full_invalidations",
    "entries_evicted",
    "records",
    "fsyncs",
    "batches_per_fsync",
    "recovery_ms",
    "replayed",
];

struct Entry {
    bench: String,
    name: String,
    ns_per_iter: f64,
    /// `(field, value)` pairs for the throughput fields present on this entry, in
    /// `THROUGHPUT_FIELDS` order.  Empty for plain latency entries.
    throughput: Vec<(&'static str, f64)>,
}

fn write_summary(entries: &[&Entry], output: &str) {
    let json = jsonlite::Json::obj([
        ("schema", jsonlite::Json::str("graphitti-bench-summary/v1")),
        ("entries", jsonlite::Json::u64(entries.len() as u64)),
        (
            "results",
            jsonlite::Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        let mut fields = vec![
                            ("bench", jsonlite::Json::str(e.bench.clone())),
                            ("name", jsonlite::Json::str(e.name.clone())),
                            ("ns_per_iter", jsonlite::Json::Num(e.ns_per_iter)),
                        ];
                        fields
                            .extend(e.throughput.iter().map(|&(k, v)| (k, jsonlite::Json::Num(v))));
                        jsonlite::Json::obj(fields)
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = std::fs::write(output, json.pretty() + "\n") {
        eprintln!("bench_summary: cannot write {output}: {e}");
        std::process::exit(1);
    }
    println!("bench_summary: wrote {} results to {output}", entries.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = criterion::workspace_root();
    let input_dir = args
        .first()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root.join("target").join("criterion-json"));
    let query_output =
        args.get(1).map(std::path::PathBuf::from).unwrap_or_else(|| root.join("BENCH_query.json"));
    let throughput_output = args
        .get(2)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root.join("BENCH_throughput.json"));
    let input_dir = input_dir.display().to_string();

    let mut entries: Vec<Entry> = Vec::new();
    let dir = Path::new(&input_dir);
    let read_dir = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) => {
            eprintln!("bench_summary: cannot read {input_dir}: {e} (run `cargo bench` first)");
            std::process::exit(1);
        }
    };
    for entry in read_dir.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_summary: skipping {}: {e}", path.display());
                continue;
            }
        };
        let parsed = match jsonlite::Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("bench_summary: skipping {}: {e:?}", path.display());
                continue;
            }
        };
        let Some(arr) = parsed.as_arr() else { continue };
        for item in arr {
            let bench = item.get("bench").and_then(|j| j.as_str()).unwrap_or("");
            let name = item.get("name").and_then(|j| j.as_str()).unwrap_or("");
            let ns = item.get("ns_per_iter").and_then(|j| j.as_f64()).unwrap_or(f64::NAN);
            if bench.is_empty() || name.is_empty() {
                continue;
            }
            let throughput: Vec<(&'static str, f64)> = THROUGHPUT_FIELDS
                .iter()
                .filter_map(|&f| item.get(f).and_then(|j| j.as_f64()).map(|v| (f, v)))
                .collect();
            entries.push(Entry {
                bench: bench.to_string(),
                name: name.to_string(),
                ns_per_iter: ns,
                throughput,
            });
        }
    }
    entries.sort_by(|a, b| (&a.bench, &a.name).cmp(&(&b.bench, &b.name)));

    // Entries carrying a qps measurement belong to the throughput summary; everything
    // else stays in the latency summary.
    let (throughput, latency): (Vec<&Entry>, Vec<&Entry>) =
        entries.iter().partition(|e| e.throughput.iter().any(|(k, _)| *k == "qps"));

    write_summary(&latency, &query_output.display().to_string());
    if throughput.is_empty() {
        println!(
            "bench_summary: no throughput entries found (run `cargo bench -p bench --bench throughput`)"
        );
    } else {
        flag_single_core_sweeps(&throughput);
        write_summary(&throughput, &throughput_output.display().to_string());
    }
}

/// Warn about worker/shard/client sweeps measured on one core (or with no `cores`
/// stamp at all): their flat scaling curves say nothing about the algorithms —
/// only that the container had no parallelism to give — and must not be read as
/// genuine no-scaling (the standing ROADMAP caveat).
fn flag_single_core_sweeps(throughput: &[&Entry]) {
    let cores_of = |e: &Entry| e.throughput.iter().find(|(k, _)| *k == "cores").map(|&(_, v)| v);
    let mut flagged: Vec<String> = Vec::new();
    for e in throughput {
        let single = match cores_of(e) {
            Some(c) => c <= 1.0,
            None => true,
        };
        if single && !flagged.contains(&e.bench) {
            flagged.push(e.bench.clone());
        }
    }
    for bench in &flagged {
        eprintln!(
            "bench_summary: WARNING: `{bench}` sweep ran with cores <= 1 (or unstamped) — \
             flat worker/shard scaling in its rows reflects the container, not the system"
        );
    }
}
