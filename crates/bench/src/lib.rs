//! Shared helpers for the Graphitti benchmark harness.
//!
//! Each bench target under `benches/` reproduces one experiment from DESIGN.md's
//! per-experiment index. This library provides the workload builders and reporting
//! helpers they share.

use datagen::influenza::{self, InfluenzaConfig};
use datagen::neuro::{self, NeuroConfig, NeuroWorkload};
use graphitti_core::Graphitti;

/// Build an influenza system with the given annotation count (Figure 1 sweep).
pub fn influenza_system(annotations: usize, seed: u64) -> Graphitti {
    influenza::build(&InfluenzaConfig {
        seed,
        sequences: (annotations / 10).max(20),
        annotations,
        segments: 8,
        shared_referent_prob: 0.3,
        protease_prob: 0.3,
        ..InfluenzaConfig::default()
    })
}

/// Build a neuroscience workload with the given image count.
pub fn neuro_workload(images: usize, regions_per_image: usize, seed: u64) -> NeuroWorkload {
    neuro::build(&NeuroConfig {
        seed,
        images,
        regions_per_image,
        coordinate_systems: 3,
        dcn_prob: 0.4,
        tp53_prob: 0.25,
        canvas: 1_000.0,
    })
}

/// Print a titled table header for the experiment's printed summary.
pub fn table_header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", columns.join("\t"));
}

/// Print one row of the experiment summary.
pub fn table_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Percentile over an already-sorted latency sample (0 if empty), picking the
/// element at the rounded linear-interpolation rank `round((len-1) · p/100)`.
/// Shared by the throughput-style benches so their p50/p95/p99 columns in
/// `BENCH_throughput.json` use the same rule.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn influenza_helper_builds() {
        let sys = influenza_system(100, 1);
        assert!(sys.annotation_count() > 0);
    }

    #[test]
    fn neuro_helper_builds() {
        let w = neuro_workload(10, 4, 1);
        assert_eq!(w.images.len(), 10);
    }
}
