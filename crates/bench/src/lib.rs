//! Shared helpers for the Graphitti benchmark harness.
//!
//! Each bench target under `benches/` reproduces one experiment from DESIGN.md's
//! per-experiment index. This library provides the workload builders and reporting
//! helpers they share.

use datagen::influenza::{self, InfluenzaConfig};
use datagen::neuro::{self, NeuroConfig, NeuroWorkload};
use graphitti_core::Graphitti;

/// Build an influenza system with the given annotation count (Figure 1 sweep).
pub fn influenza_system(annotations: usize, seed: u64) -> Graphitti {
    influenza::build(&InfluenzaConfig {
        seed,
        sequences: (annotations / 10).max(20),
        annotations,
        segments: 8,
        shared_referent_prob: 0.3,
        protease_prob: 0.3,
        ..InfluenzaConfig::default()
    })
}

/// Build a neuroscience workload with the given image count.
pub fn neuro_workload(images: usize, regions_per_image: usize, seed: u64) -> NeuroWorkload {
    neuro::build(&NeuroConfig {
        seed,
        images,
        regions_per_image,
        coordinate_systems: 3,
        dcn_prob: 0.4,
        tp53_prob: 0.25,
        canvas: 1_000.0,
    })
}

/// Print a titled table header for the experiment's printed summary.
pub fn table_header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", columns.join("\t"));
}

/// Print one row of the experiment summary.
pub fn table_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Percentile over an already-sorted latency sample (0 if empty), by the
/// **nearest-rank (ceiling)** rule: the element at rank `⌈(p/100) · len⌉` (1-based),
/// i.e. the smallest sample ≥ at least `p`% of the sample.  Shared by the
/// throughput-style benches so their p50/p95/p99 columns in `BENCH_throughput.json`
/// use the same rule.
///
/// Ceiling, not rounding: the previous `round((len-1) · p/100)` rule could round a
/// tail rank *down* — e.g. p99 over 50 samples picked index 49·0.99 ≈ 48.51 → 49 but
/// p95 picked 49·0.95 ≈ 46.55 → 47, reporting a value only ~94% of the sample sits
/// under.  Nearest-rank never under-reports a tail percentile.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as f64 * p / 100.0).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn influenza_helper_builds() {
        let sys = influenza_system(100, 1);
        assert!(sys.annotation_count() > 0);
    }

    #[test]
    fn neuro_helper_builds() {
        let w = neuro_workload(10, 4, 1);
        assert_eq!(w.images.len(), 10);
    }

    #[test]
    fn percentile_uses_nearest_rank_ceiling() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 50.0), 50);
        assert_eq!(percentile(&sample, 95.0), 95);
        assert_eq!(percentile(&sample, 99.0), 99);
        assert_eq!(percentile(&sample, 100.0), 100);
        assert_eq!(percentile(&sample, 0.0), 1);

        // Tail ranks must never round down: p99 of 50 samples is the 50th value
        // (⌈49.5⌉ = 50), not the 49th the old rounded rule could pick.
        let fifty: Vec<u64> = (1..=50).collect();
        assert_eq!(percentile(&fifty, 99.0), 50);
        assert_eq!(percentile(&fifty, 95.0), 48); // ⌈47.5⌉ = 48
        assert_eq!(percentile(&fifty, 50.0), 25);

        assert_eq!(percentile(&[], 95.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
        // the reported value always bounds at least p% of the sample from above
        for p in [50.0, 90.0, 95.0, 99.0] {
            let v = percentile(&fifty, p);
            let covered = fifty.iter().filter(|&&x| x <= v).count() as f64;
            assert!(covered / fifty.len() as f64 >= p / 100.0, "p{p} under-covers");
        }
    }
}
