//! Experiment Q2 — the protease example query (§III).
//!
//! "Annotated sequences of all proteins belonging to an ontological class, where 4
//! consecutive non-overlapping intervals in the sequence have annotations with the
//! keyword 'protease' in each." Sweeps the sequence/annotation count and measures query
//! latency. Reproducible shape: the content subquery ("protease") drives, and the
//! consecutive-interval graph constraint is evaluated per candidate object.

use bench::{influenza_system, table_header, table_row};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphitti_query::{Executor, GraphConstraint, Query, Target};

fn bench_q2(c: &mut Criterion) {
    let sizes = [1_000usize, 5_000, 10_000];

    table_header(
        "Q2: protease sequences with >=4 consecutive intervals",
        &["annotations", "matching_objects"],
    );

    let mut group = c.benchmark_group("Q2_protease");
    for &a in &sizes {
        let sys = influenza_system(a, 2008);
        let query = Query::new(Target::Referents)
            .with_phrase("protease")
            .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 4, max_gap: 2_000 });
        let result = Executor::new(&sys).run(&query);
        table_row(&[a.to_string(), result.objects.len().to_string()]);

        group.bench_with_input(BenchmarkId::from_parameter(a), &a, |b, _| {
            let exec = Executor::new(&sys);
            b.iter(|| exec.run(&query));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_q2);
criterion_main!(benches);
