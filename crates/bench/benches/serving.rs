//! Experiment NET — client-replay serving over the network tier.
//!
//! Stands a [`NetServer`] up on an ephemeral loopback port in front of a
//! worker-pool [`QueryService`] and replays the influenza protease mix as DSL
//! text through real [`Client`] connections, across four traffic shapes:
//!
//! * `steady`   — N persistent connections replaying the mix;
//! * `churn`    — every query on a fresh connection (connect + query + drop),
//!   so the row prices the acceptor and per-connection thread setup;
//! * `slow_reader` — one stalled client parks pipelined responses while brisk
//!   clients replay; the row measures the brisk clients (the stall must not
//!   leak into their latency), and the stalled client's parked responses are
//!   verified intact once it finally reads;
//! * `overload_2x` — a single-worker, single-slot-queue backend behind a
//!   stuck first query, blasted with 2× more pipelined requests than it can
//!   admit: completed answers stay byte-identical, the rest shed **typed**
//!   over the wire, and the row records goodput vs shed.
//!
//! Every scenario gates correctness before timing (each mix query over the
//! wire must be byte-identical under `to_json` to the single-threaded
//! [`Executor`]) and asserts the wire conservation invariant after draining:
//! `shed + completed + failed == submitted` on [`NetMetrics`].
//!
//! Rows land in the same JSON shape as the throughput bench (`qps`,
//! percentiles, `cores`) so `bench_summary` routes them into
//! `BENCH_throughput.json`.  Pass `--quick` (as CI does) for a smoke run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{influenza_system, percentile, table_header, table_row};
use graphitti_net::{Backend, Client, NetError, NetMetrics, NetServer, ServerConfig, WireBudget};
use graphitti_query::{
    parse_query, ChaosConfig, Executor, QueryService, ServiceConfig, ServiceError,
};

/// The replayed mix, as wire-format DSL text.
fn dsl_mix() -> Vec<&'static str> {
    vec![
        r#"SELECT contents WHERE content contains "protease cleavage""#,
        "SELECT referents WHERE content keywords protease AND constraint consecutive 4 2000",
        r#"SELECT graphs WHERE content contains "protease""#,
    ]
}

struct Measurement {
    scenario: &'static str,
    clients: usize,
    workers: usize,
    queries: usize,
    qps: f64,
    mean_ns: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    wire: NetMetrics,
}

fn poll_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "not reached within 10s: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Gate: every mix query served over the wire is byte-identical to the
/// single-threaded executor's answer.  Also warms the pool.
fn correctness_gate(server: &NetServer, sys: &graphitti_core::Graphitti, mix: &[&str]) {
    let exec = Executor::new(sys);
    let mut client = Client::connect(server.local_addr()).expect("gate connect");
    for text in mix {
        let over_wire = client.query(text, &WireBudget::unbounded()).expect("gate query");
        let expected = exec.run(&parse_query(text).expect("mix parses"));
        assert_eq!(
            over_wire.to_json(),
            expected.to_json(),
            "wire answer diverged from Executor on {text}"
        );
    }
}

/// Drain check: all connections retired and the wire counters conserve.
fn assert_conserved(scenario: &str, server: &NetServer) -> NetMetrics {
    poll_until("connections retired", || server.live_connections() == 0);
    let m = server.metrics();
    assert_eq!(
        m.shed + m.completed + m.failed,
        m.submitted,
        "{scenario}: wire conservation violated: {m:?}"
    );
    m
}

fn summarize(
    scenario: &'static str,
    clients: usize,
    workers: usize,
    qps: f64,
    mut latencies: Vec<u64>,
    wire: NetMetrics,
) -> Measurement {
    latencies.sort_unstable();
    let mean_ns = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    Measurement {
        scenario,
        clients,
        workers,
        queries: latencies.len(),
        qps,
        mean_ns,
        p50_ns: percentile(&latencies, 50.0),
        p95_ns: percentile(&latencies, 95.0),
        p99_ns: percentile(&latencies, 99.0),
        wire,
    }
}

/// `steady` and `churn`: replay the mix from `clients` threads; `fresh_conn`
/// decides whether each query rides a persistent connection or its own.
fn replay(
    sys: &graphitti_core::Graphitti,
    workers: usize,
    clients: usize,
    rounds: usize,
    fresh_conn: bool,
) -> Measurement {
    let backend = Backend::Pool(Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default().with_workers(workers).with_cache_capacity(0),
    )));
    let server = NetServer::bind("127.0.0.1:0", backend, ServerConfig::default())
        .expect("bind ephemeral port");
    let mix = dsl_mix();
    correctness_gate(&server, sys, &mix);
    let addr = server.local_addr();

    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * rounds * mix.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_idx| {
                let mix = &mix;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(rounds * mix.len());
                    let mut persistent =
                        (!fresh_conn).then(|| Client::connect(addr).expect("client connect"));
                    for _ in 0..rounds {
                        for i in 0..mix.len() {
                            // stagger per client so the server sees an interleaved mix
                            let text = mix[(i + client_idx) % mix.len()];
                            let t0 = Instant::now();
                            match &mut persistent {
                                Some(client) => {
                                    client
                                        .query(text, &WireBudget::unbounded())
                                        .expect("steady query");
                                }
                                None => {
                                    let mut client = Client::connect(addr).expect("churn connect");
                                    client
                                        .query(text, &WireBudget::unbounded())
                                        .expect("churn query");
                                }
                            }
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread panicked"));
        }
    });
    let qps = latencies.len() as f64 / start.elapsed().as_secs_f64();
    let name = if fresh_conn { "churn" } else { "steady" };
    let wire = assert_conserved(name, &server);
    summarize(name, clients, workers, qps, latencies, wire)
}

/// `slow_reader`: one client pipelines a burst and stalls; brisk clients
/// replay the mix concurrently and are what the row measures.  The stalled
/// client's parked responses are verified intact afterwards.
fn slow_reader(
    sys: &graphitti_core::Graphitti,
    workers: usize,
    clients: usize,
    rounds: usize,
) -> Measurement {
    let backend = Backend::Pool(Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default().with_workers(workers).with_cache_capacity(0),
    )));
    let server = NetServer::bind("127.0.0.1:0", backend, ServerConfig::default().with_window(2))
        .expect("bind ephemeral port");
    let mix = dsl_mix();
    correctness_gate(&server, sys, &mix);
    let addr = server.local_addr();

    // Park a burst behind a reader that won't read until the brisk replay ends.
    let heavy = "SELECT contents";
    let burst = 6usize;
    let mut stalled = Client::connect(addr).expect("stalled connect");
    for _ in 0..burst {
        stalled.send(heavy, &WireBudget::unbounded()).expect("stalled send");
    }

    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * rounds * mix.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_idx| {
                let mix = &mix;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(rounds * mix.len());
                    let mut client = Client::connect(addr).expect("brisk connect");
                    for _ in 0..rounds {
                        for i in 0..mix.len() {
                            let text = mix[(i + client_idx) % mix.len()];
                            let t0 = Instant::now();
                            client.query(text, &WireBudget::unbounded()).expect("brisk query");
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("brisk thread panicked"));
        }
    });
    let qps = latencies.len() as f64 / start.elapsed().as_secs_f64();

    // The stall ends: every parked response must arrive intact, in order.
    let expected = Executor::new(sys).run(&parse_query(heavy).expect("parses")).to_json();
    for i in 0..burst {
        let got = stalled.recv().unwrap_or_else(|e| panic!("parked response #{i} lost: {e}"));
        assert_eq!(got.to_json(), expected, "parked response #{i} corrupted behind the stall");
    }
    drop(stalled);
    let wire = assert_conserved("slow_reader", &server);
    summarize("slow_reader", clients, workers, qps, latencies, wire)
}

/// `overload_2x`: a single worker with a single-slot queue, wedged on its
/// first execution, blasted with 2× more pipelined requests than admission can
/// hold.  Completed answers stay correct; the excess sheds typed over the
/// wire; the row's qps is **goodput** (completed only).
fn overload_2x(sys: &graphitti_core::Graphitti, clients: usize, burst: usize) -> Measurement {
    let queue = 1usize;
    let backend = Backend::Pool(Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(queue)
            .with_cache_capacity(0)
            .with_chaos(ChaosConfig::new().with_stuck_query_on(1, Duration::from_millis(60))),
    )));
    let server = NetServer::bind(
        "127.0.0.1:0",
        backend,
        ServerConfig::default().with_window(2 * burst.max(1)),
    )
    .expect("bind ephemeral port");
    let text = r#"SELECT contents WHERE content contains "protease cleavage""#;
    let expected = Executor::new(sys).run(&parse_query(text).expect("parses")).to_json();
    let addr = server.local_addr();

    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    let mut shed_seen = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("overload connect");
                    for _ in 0..burst {
                        client.send(text, &WireBudget::unbounded()).expect("overload send");
                    }
                    let mut lat = Vec::new();
                    let mut shed = 0u64;
                    for i in 0..burst {
                        let t0 = Instant::now();
                        match client.recv() {
                            Ok(result) => {
                                assert_eq!(
                                    result.to_json(),
                                    *expected,
                                    "overloaded response #{i} diverged"
                                );
                                lat.push(t0.elapsed().as_nanos() as u64);
                            }
                            Err(NetError::Service(ServiceError::Overloaded { .. })) => shed += 1,
                            Err(e) => panic!("response #{i}: expected Ok or Overloaded: {e}"),
                        }
                    }
                    (lat, shed)
                })
            })
            .collect();
        for h in handles {
            let (lat, shed) = h.join().expect("overload client panicked");
            latencies.extend(lat);
            shed_seen += shed;
        }
    });
    let qps = latencies.len() as f64 / start.elapsed().as_secs_f64();
    let wire = assert_conserved("overload_2x", &server);
    assert!(wire.shed >= 1, "2× overload against a single-slot queue must shed: {wire:?}");
    assert_eq!(wire.shed, shed_seen, "every shed arrived typed at a client");
    summarize("overload_2x", clients, 1, qps, latencies, wire)
}

fn write_json(measurements: &[Measurement], cores: usize) {
    let entries = jsonlite::Json::Arr(
        measurements
            .iter()
            .map(|m| {
                jsonlite::Json::obj([
                    ("bench", jsonlite::Json::str("serving")),
                    (
                        "name",
                        jsonlite::Json::str(format!(
                            "NET_serving/{}/clients={}",
                            m.scenario, m.clients
                        )),
                    ),
                    ("ns_per_iter", jsonlite::Json::Num(m.mean_ns)),
                    ("qps", jsonlite::Json::Num(m.qps)),
                    ("p50_ns", jsonlite::Json::u64(m.p50_ns)),
                    ("p95_ns", jsonlite::Json::u64(m.p95_ns)),
                    ("p99_ns", jsonlite::Json::u64(m.p99_ns)),
                    ("clients", jsonlite::Json::u64(m.clients as u64)),
                    ("workers", jsonlite::Json::u64(m.workers as u64)),
                    ("shards", jsonlite::Json::u64(0)),
                    ("cache", jsonlite::Json::u64(0)),
                    ("queries", jsonlite::Json::u64(m.queries as u64)),
                    ("wire_submitted", jsonlite::Json::u64(m.wire.submitted)),
                    ("wire_completed", jsonlite::Json::u64(m.wire.completed)),
                    ("wire_shed", jsonlite::Json::u64(m.wire.shed)),
                    ("wire_failed", jsonlite::Json::u64(m.wire.failed)),
                    ("cores", jsonlite::Json::u64(cores as u64)),
                ])
            })
            .collect(),
    );
    let path = std::env::var("BENCH_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
        let dir = criterion::workspace_root().join("target").join("criterion-json");
        let _ = std::fs::create_dir_all(&dir);
        dir.join("serving.json")
    });
    if let Err(e) = std::fs::write(&path, entries.pretty() + "\n") {
        eprintln!("serving: cannot write {}: {e}", path.display());
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let annotations = if quick { 400 } else { 2_000 };
    let workers = 2usize;
    let clients = if quick { 2 } else { 4 };
    let rounds = if quick { 10 } else { 60 };
    let sys = influenza_system(annotations, 2008);

    table_header(
        &format!("NET: client-replay serving over TCP ({cores} core(s))"),
        &["scenario", "clients", "qps", "p50", "p95", "p99", "shed"],
    );

    let measurements = vec![
        replay(&sys, workers, clients, rounds, false),
        replay(&sys, workers, clients, rounds.div_ceil(2), true),
        slow_reader(&sys, workers, clients, rounds.div_ceil(2)),
        overload_2x(&sys, clients, if quick { 6 } else { 12 }),
    ];

    for m in &measurements {
        table_row(&[
            m.scenario.to_string(),
            m.clients.to_string(),
            format!("{:.0}", m.qps),
            format!("{:.1}µs", m.p50_ns as f64 / 1_000.0),
            format!("{:.1}µs", m.p95_ns as f64 / 1_000.0),
            format!("{:.1}µs", m.p99_ns as f64 / 1_000.0),
            m.wire.shed.to_string(),
        ]);
    }

    write_json(&measurements, cores);
    println!(
        "\nserving: wrote {} measurements (wire books balanced in every scenario)",
        measurements.len()
    );
}
