//! Experiment F2 — Figure 2: the annotation-tab workflow.
//!
//! Measures end-to-end annotation creation per data type: search the relational store →
//! mark a substructure (interval / region / block-set) → attach an ontology reference →
//! commit the XML content. The reproducible shape is that per-annotation cost is
//! dominated by content indexing and is roughly constant across data types.

use criterion::{criterion_group, criterion_main, Criterion};
use graphitti_core::{DataType, Graphitti, Marker};

fn annotate_sequence(n: usize) -> Graphitti {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("seq", DataType::DnaSequence, 100_000, "chr1");
    let term = sys.ontology_mut().add_concept("Motif");
    for i in 0..n {
        let start = (i as u64 * 37) % 99_000;
        let _ = sys
            .annotate()
            .title("motif")
            .comment("observed protease cleavage motif region")
            .creator("bencher")
            .mark(seq, Marker::interval(start, start + 30))
            .cite_term(term)
            .commit();
    }
    sys
}

fn annotate_image(n: usize) -> Graphitti {
    let mut sys = Graphitti::new();
    let img = sys.register_image("img", 10_000, 10_000, "confocal", "cs");
    let term = sys.ontology_mut().add_concept("Region");
    for i in 0..n {
        let x = (i as f64 * 11.0) % 9_000.0;
        let _ = sys
            .annotate()
            .comment("region of interest with elevated expression")
            .creator("bencher")
            .mark(img, Marker::region(x, x, x + 50.0, x + 50.0))
            .cite_term(term)
            .commit();
    }
    sys
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("F2_annotate_workflow");
    group.bench_function("sequence_interval_1000", |b| {
        b.iter(|| annotate_sequence(1_000));
    });
    group.bench_function("image_region_1000", |b| {
        b.iter(|| annotate_image(1_000));
    });
    group.finish();

    // single-annotation latency
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("seq", DataType::DnaSequence, 100_000, "chr1");
    let term = sys.ontology_mut().add_concept("Motif");
    let mut i = 0u64;
    c.bench_function("F2_single_annotation_commit", |b| {
        b.iter(|| {
            i += 1;
            let start = (i * 37) % 99_000;
            sys.annotate()
                .comment("protease motif")
                .creator("bencher")
                .mark(seq, Marker::interval(start, start + 30))
                .cite_term(term)
                .commit()
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
