//! Experiment F2 — Figure 2: the annotation-tab workflow.
//!
//! Measures end-to-end annotation creation per data type: search the relational store →
//! mark a substructure (interval / region / block-set) → attach an ontology reference →
//! commit the XML content. The reproducible shape is that per-annotation cost is
//! dominated by content indexing and is roughly constant across data types.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use graphitti_core::{DataType, Graphitti, Marker};

fn annotate_sequence(n: usize) -> Graphitti {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("seq", DataType::DnaSequence, 100_000, "chr1");
    let term = sys.ontology_mut().add_concept("Motif");
    for i in 0..n {
        let start = (i as u64 * 37) % 99_000;
        let _ = sys
            .annotate()
            .title("motif")
            .comment("observed protease cleavage motif region")
            .creator("bencher")
            .mark(seq, Marker::interval(start, start + 30))
            .cite_term(term)
            .commit();
    }
    sys
}

fn annotate_image(n: usize) -> Graphitti {
    let mut sys = Graphitti::new();
    let img = sys.register_image("img", 10_000, 10_000, "confocal", "cs");
    let term = sys.ontology_mut().add_concept("Region");
    for i in 0..n {
        let x = (i as f64 * 11.0) % 9_000.0;
        let _ = sys
            .annotate()
            .comment("region of interest with elevated expression")
            .creator("bencher")
            .mark(img, Marker::region(x, x, x + 50.0, x + 50.0))
            .cite_term(term)
            .commit();
    }
    sys
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("F2_annotate_workflow");
    group.bench_function("sequence_interval_1000", |b| {
        b.iter(|| annotate_sequence(1_000));
    });
    group.bench_function("image_region_1000", |b| {
        b.iter(|| annotate_image(1_000));
    });
    group.finish();

    // Post-snapshot first write: each iteration captures a snapshot (as the query
    // service's publish does) and then commits one write, so every commit pays the
    // copy-on-write cost of an outstanding snapshot.  `per_component_*` is the real
    // system — only the components the write touches are copied; `monolithic_*`
    // emulates the pre-refactor flat view via `Graphitti::unshare_all` (the whole-view
    // deep copy installed as the live view, so the write then proceeds in place).
    //
    // Two write kinds bound the win.  An *annotate* dirties the heavyweight
    // components (content store, a-graph, inverted indexes), so per-component copying
    // approaches the monolithic cost.  A *register* leaves all of those shared — its
    // dirty set is just catalog/objects/a-graph/node-maps/indexes — which is where
    // per-component sharing pays off.
    {
        let mut group = c.benchmark_group("F2_post_snapshot_first_write");
        // Every iteration gets a freshly built base (untimed `iter_batched` setup),
        // so each sample measures the copy model on a constant-size system.  Reusing
        // one system would accumulate every probe write: both copy models' costs
        // grow with system size, so whichever variant iterates more would be
        // measured on progressively larger state and the ratio would drift with the
        // iteration count.  The routine moves the system and the superseded snapshot
        // back out, so teardown (freeing the old view — the monolithic model's whole
        // deep copy) lands outside the timed window, as it does in the service,
        // where the reader dropping the last snapshot pays it, not the writer.
        let build = || {
            let mut sys = bench::influenza_system(2_000, 2008);
            let seq = sys.object_ids_of_type(DataType::DnaSequence)[0];
            let term = sys.ontology_mut().add_concept("StallProbe");
            (sys, seq, term)
        };
        let annotate_probe = |sys: &mut Graphitti, seq, term| {
            sys.annotate()
                .comment("post-snapshot probe")
                .mark(seq, Marker::interval(0, 20))
                .cite_term(term)
                .commit()
                .unwrap();
        };
        group.bench_function("per_component_annotate", |b| {
            b.iter_batched(
                build,
                |(mut sys, seq, term)| {
                    let snap = sys.snapshot();
                    annotate_probe(&mut sys, seq, term);
                    (snap, sys)
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function("monolithic_annotate", |b| {
            b.iter_batched(
                build,
                |(mut sys, seq, term)| {
                    let snap = sys.snapshot();
                    sys.unshare_all();
                    annotate_probe(&mut sys, seq, term);
                    (snap, sys)
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function("per_component_register", |b| {
            b.iter_batched(
                build,
                |(mut sys, _, _)| {
                    let snap = sys.snapshot();
                    sys.register_sequence("probe", DataType::DnaSequence, 500, "chr1");
                    (snap, sys)
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function("monolithic_register", |b| {
            b.iter_batched(
                build,
                |(mut sys, _, _)| {
                    let snap = sys.snapshot();
                    sys.unshare_all();
                    sys.register_sequence("probe", DataType::DnaSequence, 500, "chr1");
                    (snap, sys)
                },
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    // single-annotation latency
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("seq", DataType::DnaSequence, 100_000, "chr1");
    let term = sys.ontology_mut().add_concept("Motif");
    let mut i = 0u64;
    c.bench_function("F2_single_annotation_commit", |b| {
        b.iter(|| {
            i += 1;
            let start = (i * 37) % 99_000;
            sys.annotate()
                .comment("protease motif")
                .creator("bencher")
                .mark(seq, Marker::interval(start, start + 30))
                .cite_term(term)
                .commit()
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
