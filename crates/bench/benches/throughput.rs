//! Experiment T1 — concurrent query serving throughput.
//!
//! N client threads replay the paper's example query mixes (fig3 connection-graph
//! query + Q1 TP53 on the neuroscience workload; Q2 protease on the influenza
//! workload) against a [`QueryService`], sweeping the worker-pool size and the result
//! cache, plus a **shards axis**: the same mixes against a hash-partitioned
//! [`ShardedSystem`] served scatter-gather by a [`ShardedQueryService`] at
//! `shards ∈ {1, 2, 4}` (rows carry a `shards` field; `0` = the unsharded pool).
//! Reports queries/second and end-to-end p50/p95/p99 latency per configuration, and
//! asserts every served result is byte-identical to the single-threaded pipelined
//! [`Executor`] before any timing starts (for the shard sweep: the executor on the
//! equivalent unsharded system).  The `shards=1` row vs `workers=1` isolates the
//! routing/merge overhead; shard *scaling* is flat on the single-core CI container,
//! exactly like the worker sweep (see the ROADMAP's multi-core re-measurement item).
//!
//! This bench owns its measurement loop (wall-clock over a fixed query count, not
//! ns/iter sampling), so it bypasses the criterion shim's `Bencher` and writes its
//! JSON directly in the same per-bench format, extended with throughput fields
//! (`qps`, `p50_ns`, `p95_ns`, `p99_ns`, `clients`, `workers`, `cache`, `cores`).
//! `bench_summary` routes entries carrying `qps` into `BENCH_throughput.json`.
//!
//! Pass `--quick` (as CI does) for a smoke run: 2 worker configs, fewer clients and
//! rounds.

use std::time::Instant;

use bench::{influenza_system, neuro_workload, percentile, table_header, table_row};
use graphitti_core::{Graphitti, ShardedSystem};
use graphitti_query::{
    Executor, GraphConstraint, OntologyFilter, Query, QueryService, ServiceConfig,
    ShardedQueryService, ShardedServiceConfig, Target,
};
use spatial_index::Rect;

/// One workload + query mix to replay.
struct Scenario {
    name: &'static str,
    system: Graphitti,
    mix: Vec<Query>,
}

/// One measured configuration's outcome.
struct Measurement {
    scenario: &'static str,
    workers: usize,
    /// Shard count of the scatter-gather sweep (`0` = the unsharded worker pool).
    shards: usize,
    cache: usize,
    clients: usize,
    queries: usize,
    qps: f64,
    mean_ns: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let images = if quick { 30 } else { 100 };
    let neuro = neuro_workload(images, 8, 2008);
    let canvas = Rect::rect2(0.0, 0.0, 1_000.0, 1_000.0);
    let dcn = neuro.concepts.deep_cerebellar_nuclei;
    let fig3 = Query::new(Target::ConnectionGraphs)
        .with_phrase("protein TP53")
        .with_ontology(OntologyFilter::CitesTerm(dcn));
    let q1 = Query::new(Target::ConnectionGraphs)
        .with_phrase("protein TP53")
        .with_ontology(OntologyFilter::CitesTerm(dcn))
        .with_constraint(GraphConstraint::MinRegionCount {
            count: 2,
            within: canvas,
            system: neuro.systems[0].clone(),
        });
    let dcn_browse =
        Query::new(Target::ConnectionGraphs).with_ontology(OntologyFilter::CitesTerm(dcn));

    let annotations = if quick { 500 } else { 2_000 };
    let influenza = influenza_system(annotations, 2008);
    let q2 = Query::new(Target::Referents)
        .with_phrase("protease")
        .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 4, max_gap: 2_000 });

    vec![
        Scenario { name: "fig3_q1_mix", system: neuro.system, mix: vec![fig3, q1, dcn_browse] },
        Scenario { name: "q2_protease", system: influenza, mix: vec![q2] },
    ]
}

/// Replay the mix from `clients` threads for `rounds` rounds each — `run` executes
/// one query against whichever serving layer is under test — and return collected
/// end-to-end latencies and the wall-clock qps.
fn drive(
    run: impl Fn(&Query) + Sync,
    mix: &[Query],
    clients: usize,
    rounds: usize,
) -> (f64, Vec<u64>) {
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * rounds * mix.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let run = &run;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(rounds * mix.len());
                    for _ in 0..rounds {
                        // stagger the replay order per client so the pool sees an
                        // interleaved mix, not lockstep waves of one query
                        for i in 0..mix.len() {
                            let q = &mix[(i + client) % mix.len()];
                            let t0 = Instant::now();
                            run(q);
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread panicked"));
        }
    });
    let qps = latencies.len() as f64 / start.elapsed().as_secs_f64();
    (qps, latencies)
}

fn measure(
    scenario: &Scenario,
    workers: usize,
    cache: usize,
    clients: usize,
    rounds: usize,
) -> Measurement {
    let config = ServiceConfig::default().with_workers(workers).with_cache_capacity(cache);
    let service = QueryService::new(scenario.system.snapshot(), config);

    // Correctness gate: every mix query must come back byte-identical to the
    // single-threaded pipelined executor (this also warms the pool and, when enabled,
    // the cache).
    let exec = Executor::new(&scenario.system);
    for q in &scenario.mix {
        let expected = exec.run(q);
        let served = service.run(q.clone()).unwrap();
        assert_eq!(
            served.to_json(),
            expected.to_json(),
            "service diverged from Executor on {} with workers={workers}",
            scenario.name
        );
    }

    let (qps, mut latencies) = drive(
        |q| drop(std::hint::black_box(service.run(q.clone()).unwrap())),
        &scenario.mix,
        clients,
        rounds,
    );
    latencies.sort_unstable();
    let mean_ns = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    Measurement {
        scenario: scenario.name,
        workers,
        shards: 0,
        cache,
        clients,
        queries: latencies.len(),
        qps,
        mean_ns,
        p50_ns: percentile(&latencies, 50.0),
        p95_ns: percentile(&latencies, 95.0),
        p99_ns: percentile(&latencies, 99.0),
    }
}

/// Measure the **scatter-gather** serving path: the scenario's system is
/// re-materialised as an N-shard [`ShardedSystem`] from its study snapshot, served
/// by a [`ShardedQueryService`] — queries execute on the calling client's thread, so
/// there is no worker pool to size — and gated byte-for-byte against the
/// single-threaded [`Executor`] on the **equivalent unsharded replay** of the same
/// snapshot before timing.  (The unsharded oracle must be a replay too: a-graph node
/// ids are assigned in construction order, and replay order deliberately matches the
/// sharded replay, not the scenario builder's interleaving.)
fn measure_sharded(
    scenario: &Scenario,
    shards: usize,
    cache: usize,
    clients: usize,
    rounds: usize,
) -> Measurement {
    let study = scenario.system.study_snapshot();
    let oracle = Graphitti::from_study_snapshot(&study).expect("oracle replay");
    let sharded = ShardedSystem::from_study_snapshot(&study, shards)
        .expect("sharded replay of the scenario system");
    let service = ShardedQueryService::new(
        sharded.capture_cut(),
        ShardedServiceConfig::default().with_cache_capacity(cache),
    );

    let exec = Executor::new(&oracle);
    for q in &scenario.mix {
        assert_eq!(
            service.run(q).unwrap().to_json(),
            exec.run(q).to_json(),
            "sharded service diverged from Executor on {} at {shards} shard(s)",
            scenario.name
        );
    }

    let (qps, mut latencies) = drive(
        |q| drop(std::hint::black_box(service.run(q).unwrap())),
        &scenario.mix,
        clients,
        rounds,
    );
    latencies.sort_unstable();
    let mean_ns = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    Measurement {
        scenario: scenario.name,
        workers: 0,
        shards,
        cache,
        clients,
        queries: latencies.len(),
        qps,
        mean_ns,
        p50_ns: percentile(&latencies, 50.0),
        p95_ns: percentile(&latencies, 95.0),
        p99_ns: percentile(&latencies, 99.0),
    }
}

fn write_json(measurements: &[Measurement], cores: usize) {
    let entries = jsonlite::Json::Arr(
        measurements
            .iter()
            .map(|m| {
                jsonlite::Json::obj([
                    ("bench", jsonlite::Json::str("throughput")),
                    (
                        "name",
                        jsonlite::Json::str(if m.shards > 0 {
                            format!(
                                "T1_throughput/{}/shards={}/cache={}",
                                m.scenario,
                                m.shards,
                                if m.cache > 0 { "on" } else { "off" }
                            )
                        } else {
                            format!(
                                "T1_throughput/{}/workers={}/cache={}",
                                m.scenario,
                                m.workers,
                                if m.cache > 0 { "on" } else { "off" }
                            )
                        }),
                    ),
                    ("ns_per_iter", jsonlite::Json::Num(m.mean_ns)),
                    ("qps", jsonlite::Json::Num(m.qps)),
                    ("p50_ns", jsonlite::Json::u64(m.p50_ns)),
                    ("p95_ns", jsonlite::Json::u64(m.p95_ns)),
                    ("p99_ns", jsonlite::Json::u64(m.p99_ns)),
                    ("clients", jsonlite::Json::u64(m.clients as u64)),
                    ("workers", jsonlite::Json::u64(m.workers as u64)),
                    ("shards", jsonlite::Json::u64(m.shards as u64)),
                    ("cache", jsonlite::Json::u64(m.cache as u64)),
                    ("queries", jsonlite::Json::u64(m.queries as u64)),
                    ("cores", jsonlite::Json::u64(cores as u64)),
                ])
            })
            .collect(),
    );
    let path = std::env::var("BENCH_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
        let dir = criterion::workspace_root().join("target").join("criterion-json");
        let _ = std::fs::create_dir_all(&dir);
        dir.join("throughput.json")
    });
    if let Err(e) = std::fs::write(&path, entries.pretty() + "\n") {
        eprintln!("throughput: cannot write {}: {e}", path.display());
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let clients = if quick { 3 } else { 8 };
    let rounds = if quick { 20 } else { 120 };

    table_header(
        &format!("T1: concurrent serving throughput ({cores} core(s))"),
        &["scenario", "pool", "cache", "clients", "qps", "p50", "p95", "p99"],
    );

    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let mut measurements = Vec::new();
    for scenario in scenarios(quick) {
        // worker sweep with the cache off: isolates pool scaling
        for &workers in worker_counts {
            measurements.push(measure(&scenario, workers, 0, clients, rounds));
        }
        // cache on at the largest pool: the replayed mix is repetitive, so this is the
        // served-traffic fast path
        let max_workers = *worker_counts.last().expect("non-empty worker sweep");
        measurements.push(measure(&scenario, max_workers, 256, clients, rounds));
        // scatter-gather sweep with the cache off: isolates routing/merge overhead
        // (shards=1 vs workers=1 above) and shard scaling — flat on one core, like
        // the worker sweep (see ROADMAP)
        for &shards in shard_counts {
            measurements.push(measure_sharded(&scenario, shards, 0, clients, rounds));
        }

        for m in measurements.iter().filter(|m| m.scenario == scenario.name) {
            table_row(&[
                m.scenario.to_string(),
                if m.shards > 0 { format!("{}sh", m.shards) } else { m.workers.to_string() },
                if m.cache > 0 { "on".into() } else { "off".into() },
                m.clients.to_string(),
                format!("{:.0}", m.qps),
                format!("{:.1}µs", m.p50_ns as f64 / 1_000.0),
                format!("{:.1}µs", m.p95_ns as f64 / 1_000.0),
                format!("{:.1}µs", m.p99_ns as f64 / 1_000.0),
            ]);
        }
    }

    write_json(&measurements, cores);
    println!("\nthroughput: wrote {} measurements", measurements.len());
}
