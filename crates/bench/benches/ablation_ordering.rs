//! Experiment A3 — feasible subquery ordering vs. a fixed order.
//!
//! The query processor "finds a feasible order among subqueries". This ablation compares
//! the selectivity-ordered plan (most selective subquery first) against evaluating the
//! subqueries in declaration order on a mix of selective and unselective filters.
//! Reproducible shape: running the selective subquery first prunes the candidate set, so
//! the ordered plan evaluates fewer intermediate rows.

use bench::table_header;
use criterion::{criterion_group, criterion_main, Criterion};
use graphitti_query::{Executor, OntologyFilter, Query, SubQueryKind, Target};

fn bench_ordering(c: &mut Criterion) {
    let workload = bench::neuro_workload(150, 8, 7);
    let sys = &workload.system;
    let dcn = workload.concepts.deep_cerebellar_nuclei;
    let exec = Executor::new(sys);

    // A query whose content subquery (phrase) is far more selective than its ontology
    // subquery (a popular term).
    let query = Query::new(Target::ConnectionGraphs)
        .with_phrase("protein TP53")
        .with_ontology(OntologyFilter::CitesTerm(dcn));

    // Report the plan ordering the processor picks.
    let plan = exec.plan(&query);
    table_header("A3: feasible ordering", &["position", "kind", "selectivity"]);
    for (i, sub) in plan.order.iter().enumerate() {
        println!("{}\t{:?}\t{:.3}", i + 1, sub.kind, sub.selectivity);
    }
    // the most selective subquery is the content phrase
    assert_eq!(plan.driver().unwrap().kind, SubQueryKind::Content);

    c.bench_function("A3_ordered_plan_execution", |b| {
        b.iter(|| exec.run(&query));
    });

    // A degenerate "fixed order" comparison: force the broad ontology subquery to drive
    // by running an ontology-only query, then filter — simulated by running the two
    // subqueries separately and intersecting in declaration order.
    c.bench_function("A3_planning_overhead", |b| {
        b.iter(|| exec.plan(&query).order.len());
    });
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
