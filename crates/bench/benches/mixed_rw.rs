//! Experiment T2 — mixed read/write serving: publish stall, sustained write
//! throughput, and result-cache survival under concurrent readers.
//!
//! A writer replays the `datagen::mixed` write stream (ingest batches that register
//! new sequence objects, ontology batches that define vocabulary terms, and
//! annotation batches, each a homogeneous curation session) against a live system —
//! one [`CommitBatch`] per batch, one [`QueryService::publish`] after each — while N
//! reader clients continuously replay a query mix (content phrases plus an
//! ontology-footprint term query) against the service.  Because every publish leaves
//! a snapshot outstanding in the service, **every batch's first write is a
//! post-snapshot first write**: with per-component structural sharing it copies only
//! the components the write touches; the pre-refactor monolithic copy-on-publish paid
//! a full deep copy of the view instead.  The bench measures three configurations of
//! the same drive on the same machine:
//!
//! * `monolithic` — the old cost model end to end: a whole-view deep copy emulated by
//!   `Graphitti::unshare_all` at each batch's first write, plus whole-cache clears on
//!   every publish ([`InvalidationPolicy::Full`]);
//! * `per_component_full_inv` — per-component copy-on-write, but still clearing the
//!   whole result cache on every publish (the shipped behaviour before per-component
//!   epochs; the "before" side of the cache-survival comparison);
//! * `per_component` — the real system as shipped: per-component copies *and*
//!   per-footprint cache invalidation, where an ingest batch evicts nothing and an
//!   ontology batch evicts only ontology-footprint entries.
//!
//! Reported per mode: sustained write qps, post-snapshot first-write latency
//! p50/p95/p99 (the publish stall), concurrent read qps, and the reader cache
//! picture — hit rate, partial vs full invalidation counts, entries evicted.
//! Entries carry `qps`, so `bench_summary` routes them into `BENCH_throughput.json`.
//!
//! **Shards axis.** After the three unsharded modes the same drive runs against a
//! hash-partitioned [`ShardedSystem`](graphitti_core::ShardedSystem) served by the
//! scatter-gather [`ShardedQueryService`] at `shards ∈ {1, 2, 4}` (`--shards=` to
//! override): the writer replays the *same* batch stream through the shard router
//! (one logical batch → per-shard coalesced sub-batches → one published cut), the
//! readers hammer the same mix — including an id-pinned query the executor prunes to
//! its owning shard — and the final state is gated byte-for-byte against the
//! single-threaded [`Executor`] on the equivalent **unsharded oracle**.  Entries
//! carry a `shards` field (`0` = the unsharded service) so `BENCH_throughput.json`
//! reports the axis; on a single-core container shard counts cannot show wall-clock
//! wins (as with the worker sweep — see ROADMAP), so the row to watch is shards=1
//! vs the unsharded baseline (routing/merge overhead) and the cache picture.
//!
//! Pass `--quick` (as CI does) for a smoke run that doubles as a correctness gate:
//! small workload, every mix query's final answer asserted byte-identical to the
//! single-threaded [`Executor`] after the full stream (for the shard matrix: to the
//! executor on the unsharded oracle), plus a deterministic cache-metric sanity gate
//! (ingest-only batches cost zero evictions; ontology batches evict exactly the
//! ontology-footprint entry; full-dirty annotation batches still clear everything).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bench::{percentile, table_header, table_row};
use datagen::mixed::{self, MixedConfig};
use datagen::InfluenzaConfig;
use graphitti_core::{DataType, Marker, ObjectId};
use graphitti_query::{
    Executor, InvalidationPolicy, OntologyFilter, Query, QueryService, ReferentFilter,
    ServiceConfig, ShardedQueryService, ShardedServiceConfig, Target,
};
use interval_index::Interval;
use ontology::ConceptId;

/// How each batch's first write pays for the outstanding snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyMode {
    /// Per-component `Arc::make_mut`: copy only what the write touches.
    PerComponent,
    /// Emulated pre-refactor behaviour: deep-copy the whole view first.
    Monolithic,
}

/// One benchmarked configuration: a copy model plus a cache-invalidation policy.
#[derive(Debug, Clone, Copy)]
struct Mode {
    label: &'static str,
    copy: CopyMode,
    invalidation: InvalidationPolicy,
}

const MODES: [Mode; 3] = [
    Mode {
        label: "monolithic",
        copy: CopyMode::Monolithic,
        invalidation: InvalidationPolicy::Full,
    },
    Mode {
        label: "per_component_full_inv",
        copy: CopyMode::PerComponent,
        invalidation: InvalidationPolicy::Full,
    },
    Mode {
        label: "per_component",
        copy: CopyMode::PerComponent,
        invalidation: InvalidationPolicy::Footprint,
    },
];

/// One mode's measured outcome.
struct Measurement {
    mode: String,
    /// Shard count (`0` = the unsharded `QueryService` modes).
    shards: usize,
    workers: usize,
    clients: usize,
    writes: usize,
    write_qps: f64,
    first_write_p50_ns: u64,
    first_write_p95_ns: u64,
    first_write_p99_ns: u64,
    read_qps: f64,
    read_p50_ns: u64,
    read_p95_ns: u64,
    read_p99_ns: u64,
    reads: usize,
    cache_hits: u64,
    cache_misses: u64,
    partial_invalidations: u64,
    full_invalidations: u64,
    entries_evicted: u64,
}

impl Measurement {
    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The reader query mix, deliberately spanning several distinct read footprints so
/// partial invalidation has something to discriminate:
///
/// * the workload's content phrases (content footprint — evicted by annotation
///   batches only);
/// * per-segment interval-overlap queries (interval footprint — ditto);
/// * per-type referent queries (object footprint — evicted by ingest batches too,
///   conservatively: registration moves the object registry);
/// * an ontology-footprint term query (evicted by ontology / annotation batches).
fn read_mix(
    read_phrases: &[&'static str],
    read_term: Option<ConceptId>,
    segments: usize,
) -> Vec<Query> {
    let mut mix: Vec<Query> = read_phrases
        .iter()
        .map(|phrase| Query::new(Target::AnnotationContents).with_phrase(*phrase))
        .collect();
    // The id-bearing filter (object 0 is always a base sequence): under sharding the
    // scatter-gather executor prunes its referent scan to the owning shard.
    mix.push(Query::new(Target::Referents).with_referent(ReferentFilter::OnObject(ObjectId(0))));
    for seg in 0..segments.min(6) {
        for window in 0..4u64 {
            mix.push(Query::new(Target::Referents).with_referent(
                ReferentFilter::IntervalOverlaps {
                    domain: Some(format!("segment-{seg}")),
                    interval: Interval::new(window * 250, window * 250 + 300),
                },
            ));
        }
    }
    for ty in [DataType::DnaSequence, DataType::RnaSequence, DataType::ProteinSequence] {
        mix.push(Query::new(Target::Referents).with_referent(ReferentFilter::OfType(ty)));
    }
    if let Some(term) = read_term {
        mix.push(
            Query::new(Target::AnnotationContents).with_ontology(OntologyFilter::CitesTerm(term)),
        );
    }
    mix
}

/// Drive one mode: the writer replays every batch (batch → publish) while `clients`
/// readers hammer the query mix; once the stream is exhausted the writer keeps a
/// paced **ingest-pad trickle** running (one single-register batch + publish every
/// ~1 ms) until the whole window reaches `min_window` — so every mode serves reads
/// against the same minimum window of continuing footprint-disjoint publishes, which
/// is exactly where full and per-footprint invalidation diverge.  Write qps and the
/// publish-stall percentiles are measured over the stream replay alone (pads
/// excluded), the read/cache picture over the whole window.  Finally every mix
/// query's answer is gated against the single-threaded [`Executor`] on the final
/// state before the measurement is returned.
fn drive(
    config: &MixedConfig,
    mode: Mode,
    workers: usize,
    clients: usize,
    min_window: Duration,
) -> Measurement {
    let mut workload = mixed::build(config);
    let mix = read_mix(&workload.read_phrases, workload.read_term, config.base.segments);
    let service = QueryService::new(
        workload.system.snapshot(),
        ServiceConfig::default()
            .with_workers(workers)
            .with_cache_capacity(256)
            .with_invalidation(mode.invalidation),
    );

    let mut first_write_ns: Vec<u64> = Vec::with_capacity(workload.write_batches.len());
    let mut writes = 0usize;
    let stop = AtomicBool::new(false);
    let (read_latencies, write_wall, window) = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..clients)
            .map(|client| {
                let service = &service;
                let mix = &mix;
                let stop = &stop;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut i = client; // stagger the replay order per client
                    while !stop.load(Ordering::Relaxed) {
                        let q = mix[i % mix.len()].clone();
                        let t0 = Instant::now();
                        std::hint::black_box(service.run(q).unwrap());
                        lat.push(t0.elapsed().as_nanos() as u64);
                        i += 1;
                    }
                    lat
                })
            })
            .collect();

        // The writer: every batch's first write lands right after a publish, so the
        // service's snapshot is outstanding and copy-on-write is exercised each time.
        let write_start = Instant::now();
        for ops in &workload.write_batches {
            let t0 = Instant::now();
            if mode.copy == CopyMode::Monolithic {
                // What a flat `Arc<SystemView>` paid before the first write could
                // proceed: one deep copy of everything.  Installing the copy as the
                // live view keeps the emulation fair — the write below then mutates
                // unshared state in place, with no per-component copies on top.
                workload.system.unshare_all();
            }
            let mut batch = workload.system.batch();
            let mut op_iter = ops.iter();
            if let Some(first) = op_iter.next() {
                writes += usize::from(first.apply(&mut batch));
                first_write_ns.push(t0.elapsed().as_nanos() as u64);
            }
            for op in op_iter {
                writes += usize::from(op.apply(&mut batch));
            }
            batch.commit();
            service.publish(workload.system.snapshot()).unwrap();
        }
        let write_wall = write_start.elapsed();

        // The ingest-pad trickle: steady footprint-disjoint publishes for the rest of
        // the window (a curator ingest session that never touches what the readers
        // ask about), paced just faster than a cleared cache can re-warm.  Under full
        // invalidation each pad still clears the cache — readers barely get a hit in
        // before the next clear, the hit-rate collapse this bench exists to show;
        // under per-footprint invalidation a pad evicts only the object-footprint
        // entries, so everything else keeps serving hits across every publish.
        let mut pad = 0u64;
        while write_start.elapsed() < min_window {
            // Yield-spin to the next pad deadline: `thread::sleep` rounds up to the
            // scheduler tick (≥ 10ms on some kernels), which would turn the trickle
            // into a crawl; yielding hands the core to the reader threads instead.
            let deadline = Instant::now() + Duration::from_micros(300);
            while Instant::now() < deadline {
                std::thread::yield_now();
            }
            if mode.copy == CopyMode::Monolithic {
                workload.system.unshare_all();
            }
            let mut batch = workload.system.batch();
            batch.register_sequence(format!("pad-{pad}"), DataType::DnaSequence, 1000, "chr-pad");
            pad += 1;
            batch.commit();
            service.publish(workload.system.snapshot()).unwrap();
        }
        let window = write_start.elapsed();
        stop.store(true, Ordering::Relaxed);

        let mut read_latencies = Vec::new();
        for handle in readers {
            read_latencies.extend(handle.join().expect("reader thread panicked"));
        }
        (read_latencies, write_wall, window)
    });

    // Capture the cache picture before the correctness gate below pollutes it.
    let metrics = service.metrics();

    first_write_ns.sort_unstable();
    let mut reads_sorted = read_latencies;
    reads_sorted.sort_unstable();
    let measurement = Measurement {
        mode: mode.label.to_string(),
        shards: 0,
        workers,
        clients,
        writes,
        write_qps: writes as f64 / write_wall.as_secs_f64(),
        first_write_p50_ns: percentile(&first_write_ns, 50.0),
        first_write_p95_ns: percentile(&first_write_ns, 95.0),
        first_write_p99_ns: percentile(&first_write_ns, 99.0),
        read_qps: reads_sorted.len() as f64 / window.as_secs_f64(),
        read_p50_ns: percentile(&reads_sorted, 50.0),
        read_p95_ns: percentile(&reads_sorted, 95.0),
        read_p99_ns: percentile(&reads_sorted, 99.0),
        reads: reads_sorted.len(),
        cache_hits: metrics.cache_hits,
        cache_misses: metrics.cache_misses,
        partial_invalidations: metrics.cache_partial_invalidations,
        full_invalidations: metrics.cache_full_invalidations,
        entries_evicted: metrics.cache_entries_evicted,
    };

    // Correctness gate: after the full stream, every mix query served by the pool
    // must be byte-identical to the single-threaded executor on the final state.
    let exec = Executor::new(&workload.system);
    for q in &mix {
        let expected = exec.run(q);
        let served = service.run(q.clone()).unwrap();
        assert_eq!(
            served.to_json(),
            expected.to_json(),
            "service diverged from Executor on {:?} in mode {}",
            q,
            mode.label
        );
    }

    measurement
}

/// Drive the **sharded** serving path: same shape as [`drive`], but the writer
/// replays the stream through a [`ShardedSystem`]'s router (each logical batch
/// splits into per-shard coalesced sub-batches and publishes one consistent
/// [`ShardCut`](graphitti_core::ShardCut)) while the readers hammer the same mix
/// against a [`ShardedQueryService`] (per-footprint cut-cache invalidation; queries
/// execute on the reader's own thread — the scatter is the per-query parallelism,
/// the clients are the serving parallelism, so there is no worker pool to size).
/// The oracle replays the identical stream *after* the measured window (it is not
/// part of the sharded system's cost) and the final answers are gated byte-for-byte
/// against the single-threaded [`Executor`] on it.
fn drive_sharded(
    config: &MixedConfig,
    shards: usize,
    clients: usize,
    min_window: Duration,
) -> Measurement {
    let mut workload = mixed::build_sharded(config, shards);
    let mix = read_mix(&workload.read_phrases, workload.read_term, config.base.segments);
    let service = ShardedQueryService::new(
        workload.sharded.capture_cut(),
        ShardedServiceConfig::default().with_cache_capacity(256),
    );

    let mut first_write_ns: Vec<u64> = Vec::with_capacity(workload.write_batches.len());
    let mut writes = 0usize;
    let mut pads = 0u64;
    let stop = AtomicBool::new(false);
    let (read_latencies, write_wall, window) = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..clients)
            .map(|client| {
                let service = &service;
                let mix = &mix;
                let stop = &stop;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut i = client; // stagger the replay order per client
                    while !stop.load(Ordering::Relaxed) {
                        let t0 = Instant::now();
                        std::hint::black_box(service.run(&mix[i % mix.len()]).unwrap());
                        lat.push(t0.elapsed().as_nanos() as u64);
                        i += 1;
                    }
                    lat
                })
            })
            .collect();

        // The writer: one logical batch per stream batch, one published cut after
        // each — so every batch's first write is a post-cut first write on its route
        // shard (and on every shard for a replicated registration).
        let write_start = Instant::now();
        for ops in &workload.write_batches {
            let t0 = Instant::now();
            let mut batch = workload.sharded.batch();
            let mut op_iter = ops.iter();
            if let Some(first) = op_iter.next() {
                writes += usize::from(first.apply_sharded(&mut batch));
                first_write_ns.push(t0.elapsed().as_nanos() as u64);
            }
            for op in op_iter {
                writes += usize::from(op.apply_sharded(&mut batch));
            }
            batch.commit();
            service.publish(workload.sharded.capture_cut()).unwrap();
        }
        let write_wall = write_start.elapsed();

        // The same ingest-pad trickle as the unsharded drive: each pad is a
        // replicated registration, which moves no shard's annotation-path epochs —
        // the cut cache keeps serving every non-object-footprint entry across it.
        while write_start.elapsed() < min_window {
            let deadline = Instant::now() + Duration::from_micros(300);
            while Instant::now() < deadline {
                std::thread::yield_now();
            }
            let mut batch = workload.sharded.batch();
            batch.register_sequence(format!("pad-{pads}"), DataType::DnaSequence, 1000, "chr-pad");
            pads += 1;
            batch.commit();
            service.publish(workload.sharded.capture_cut()).unwrap();
        }
        let window = write_start.elapsed();
        stop.store(true, Ordering::Relaxed);

        let mut read_latencies = Vec::new();
        for handle in readers {
            read_latencies.extend(handle.join().expect("reader thread panicked"));
        }
        (read_latencies, write_wall, window)
    });

    // Capture the cache picture before the correctness gate below pollutes it.
    let metrics = service.metrics();

    // Bring the oracle level with everything the sharded writer applied (stream,
    // then pads — identical op order means identical global ids and node ids).
    for ops in &workload.write_batches {
        let mut batch = workload.oracle.batch();
        for op in ops {
            op.apply(&mut batch);
        }
        batch.commit();
    }
    let mut batch = workload.oracle.batch();
    for pad in 0..pads {
        batch.register_sequence(format!("pad-{pad}"), DataType::DnaSequence, 1000, "chr-pad");
    }
    batch.commit();

    first_write_ns.sort_unstable();
    let mut reads_sorted = read_latencies;
    reads_sorted.sort_unstable();
    let measurement = Measurement {
        mode: format!("sharded{shards}"),
        shards,
        workers: 0, // no pool: callers execute, the scatter is the per-query fan-out
        clients,
        writes,
        write_qps: writes as f64 / write_wall.as_secs_f64(),
        first_write_p50_ns: percentile(&first_write_ns, 50.0),
        first_write_p95_ns: percentile(&first_write_ns, 95.0),
        first_write_p99_ns: percentile(&first_write_ns, 99.0),
        read_qps: reads_sorted.len() as f64 / window.as_secs_f64(),
        read_p50_ns: percentile(&reads_sorted, 50.0),
        read_p95_ns: percentile(&reads_sorted, 95.0),
        read_p99_ns: percentile(&reads_sorted, 99.0),
        reads: reads_sorted.len(),
        cache_hits: metrics.cache_hits,
        cache_misses: metrics.cache_misses,
        partial_invalidations: metrics.cache_partial_invalidations,
        full_invalidations: metrics.cache_full_invalidations,
        entries_evicted: metrics.cache_entries_evicted,
    };

    // Correctness gate: every mix query served over the final cut must be
    // byte-identical to the single-threaded executor on the unsharded oracle.
    let exec = Executor::new(&workload.oracle);
    for q in &mix {
        let expected = exec.run(q);
        let served = service.run(q).unwrap();
        assert_eq!(
            served.to_json(),
            expected.to_json(),
            "sharded service diverged from the unsharded oracle on {q:?} at {shards} shard(s)",
        );
    }

    measurement
}

/// Deterministic cache-metric sanity gate (quick mode): a single-threaded service is
/// populated from the read mix, then each batch kind is published in isolation and
/// the metrics deltas are asserted — an ingest batch costs zero content-footprint
/// evictions (only the object-footprint `OfType` entries go, conservatively), an
/// ontology batch evicts exactly the ontology-footprint entry, and a full-dirty
/// annotation batch still clears everything.
fn cache_sanity_gate(config: &MixedConfig) {
    let mut workload = mixed::build(config);
    let mix = read_mix(&workload.read_phrases, workload.read_term, config.base.segments);
    assert!(workload.read_term.is_some(), "sanity gate needs the ontology read query");
    let of_type_entries = mix
        .iter()
        .filter(|q| q.referents.iter().any(|f| matches!(f, ReferentFilter::OfType(_))))
        .count();
    let service = QueryService::new(
        workload.system.snapshot(),
        ServiceConfig::default().with_workers(1).with_cache_capacity(64),
    );
    for q in &mix {
        service.run(q.clone()).unwrap();
    }
    let entries = service.cache_len();
    assert_eq!(entries, mix.len(), "each mix query must occupy one cache entry");

    // Ingest-only batch: its dirty set misses every content / interval / ontology
    // footprint — only the `OfType` entries (object footprint) are evicted, and the
    // rest keep serving hits.
    let mut batch = workload.system.batch();
    for i in 0..5 {
        batch.register_sequence(format!("sanity-seq-{i}"), DataType::DnaSequence, 1000, "chr-s");
    }
    batch.commit();
    service.publish(workload.system.snapshot()).unwrap();
    let after_ingest = service.metrics();
    assert_eq!(
        after_ingest.cache_entries_evicted, of_type_entries as u64,
        "ingest batch must cost zero content-footprint evictions"
    );
    assert_eq!(service.cache_len(), entries - of_type_entries);
    let misses_before = after_ingest.cache_misses;
    for q in &mix {
        service.run(q.clone()).unwrap();
    }
    assert_eq!(
        service.metrics().cache_misses,
        misses_before + of_type_entries as u64,
        "every non-OfType query must hit after an ingest-only publish"
    );

    // Ontology batch: evicts exactly the ontology-footprint entry.
    let evicted_before = service.metrics().cache_entries_evicted;
    let mut batch = workload.system.batch();
    batch.ontology_mut().add_concept("sanity-term");
    batch.commit();
    service.publish(workload.system.snapshot()).unwrap();
    let after_onto = service.metrics();
    assert_eq!(
        after_onto.cache_entries_evicted,
        evicted_before + 1,
        "ontology batch must evict exactly the term-query entry"
    );
    assert_eq!(service.cache_len(), entries - 1);
    assert_eq!(after_onto.cache_partial_invalidations, 2, "both publishes were partial");
    assert_eq!(after_onto.cache_full_invalidations, 0);

    // Annotation batch: dirties what every footprint reads — the cache clears.
    for q in &mix {
        service.run(q.clone()).unwrap(); // repopulate the evicted entries first
    }
    assert_eq!(service.cache_len(), entries);
    let evicted_before = service.metrics().cache_entries_evicted;
    let target = workload.system.object_ids_of_type(DataType::DnaSequence)[0];
    let mut batch = workload.system.batch();
    batch
        .annotate()
        .comment("sanity protease note")
        .mark(target, Marker::interval(0, 10))
        .commit()
        .unwrap();
    batch.commit();
    service.publish(workload.system.snapshot()).unwrap();
    assert_eq!(service.cache_len(), 0, "annotation batch must clear every entry");
    let after_annotate = service.metrics();
    assert_eq!(after_annotate.cache_entries_evicted, evicted_before + entries as u64);
    assert_eq!(after_annotate.cache_full_invalidations, 1);
    println!("mixed_rw: cache-metric sanity gate passed ({} entries)", entries);
}

fn write_json(measurements: &[Measurement], cores: usize) {
    let mut entries = Vec::new();
    for m in measurements {
        for (kind, qps, p50, p95, p99, count) in [
            (
                "write",
                m.write_qps,
                m.first_write_p50_ns,
                m.first_write_p95_ns,
                m.first_write_p99_ns,
                m.writes,
            ),
            ("read", m.read_qps, m.read_p50_ns, m.read_p95_ns, m.read_p99_ns, m.reads),
        ] {
            let mut fields = vec![
                ("bench", jsonlite::Json::str("mixed_rw")),
                ("name", jsonlite::Json::str(format!("T2_mixed_rw/{}/{}_side", m.mode, kind))),
                // for the write side this is the post-snapshot first-write stall
                ("ns_per_iter", jsonlite::Json::Num(p50 as f64)),
                ("qps", jsonlite::Json::Num(qps)),
                ("p50_ns", jsonlite::Json::u64(p50)),
                ("p95_ns", jsonlite::Json::u64(p95)),
                ("p99_ns", jsonlite::Json::u64(p99)),
                ("clients", jsonlite::Json::u64(m.clients as u64)),
                ("workers", jsonlite::Json::u64(m.workers as u64)),
                ("shards", jsonlite::Json::u64(m.shards as u64)),
                ("cache", jsonlite::Json::u64(256)),
                ("queries", jsonlite::Json::u64(count as u64)),
                ("cores", jsonlite::Json::u64(cores as u64)),
            ];
            if kind == "read" {
                // The cache picture rides on the read side (hits are reads).
                fields.extend([
                    ("hit_rate", jsonlite::Json::Num(m.hit_rate())),
                    ("cache_hits", jsonlite::Json::u64(m.cache_hits)),
                    ("cache_misses", jsonlite::Json::u64(m.cache_misses)),
                    ("partial_invalidations", jsonlite::Json::u64(m.partial_invalidations)),
                    ("full_invalidations", jsonlite::Json::u64(m.full_invalidations)),
                    ("entries_evicted", jsonlite::Json::u64(m.entries_evicted)),
                ]);
            }
            entries.push(jsonlite::Json::obj(fields));
        }
    }
    let path = std::env::var("BENCH_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
        let dir = criterion::workspace_root().join("target").join("criterion-json");
        let _ = std::fs::create_dir_all(&dir);
        dir.join("mixed_rw.json")
    });
    if let Err(e) = std::fs::write(&path, jsonlite::Json::Arr(entries).pretty() + "\n") {
        eprintln!("mixed_rw: cannot write {}: {e}", path.display());
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The shard matrix: `--shards=1,4` overrides (as the CI quick gate passes).
    let shard_counts: Vec<usize> = std::env::args()
        .find_map(|a| a.strip_prefix("--shards=").map(str::to_string))
        .map(|csv| {
            csv.split(',')
                .map(|s| s.trim().parse().expect("--shards takes a comma-separated list"))
                .collect()
        })
        .unwrap_or_else(|| if quick { vec![1, 4] } else { vec![1, 2, 4] });
    let (config, workers, clients, min_window) = if quick {
        (
            MixedConfig {
                seed: 7,
                base: InfluenzaConfig::small().with_annotations(120),
                batches: 8,
                writes_per_batch: 6,
                protease_prob: 0.4,
                register_batch_prob: 0.5,
                ontology_batch_prob: 0.25,
            },
            2,
            2,
            Duration::from_millis(200),
        )
    } else {
        (MixedConfig::default(), 4, 4, Duration::from_millis(1500))
    };

    if quick {
        cache_sanity_gate(&config);
    }

    table_header(
        &format!(
            "T2: mixed read/write serving ({cores} core(s), {} batches x {} writes)",
            config.batches, config.writes_per_batch
        ),
        &[
            "mode",
            "write qps",
            "stall p50",
            "stall p99",
            "read qps",
            "read p50",
            "hit rate",
            "inval p/f",
            "evicted",
        ],
    );

    let row = |m: &Measurement| {
        table_row(&[
            m.mode.to_string(),
            format!("{:.0}", m.write_qps),
            format!("{:.1}µs", m.first_write_p50_ns as f64 / 1_000.0),
            format!("{:.1}µs", m.first_write_p99_ns as f64 / 1_000.0),
            format!("{:.0}", m.read_qps),
            format!("{:.1}µs", m.read_p50_ns as f64 / 1_000.0),
            format!("{:.1}%", m.hit_rate() * 100.0),
            format!("{}/{}", m.partial_invalidations, m.full_invalidations),
            format!("{}", m.entries_evicted),
        ]);
    };
    let mut measurements = Vec::new();
    for mode in MODES {
        let m = drive(&config, mode, workers, clients, min_window);
        row(&m);
        measurements.push(m);
    }
    for &shards in &shard_counts {
        let m = drive_sharded(&config, shards, clients, min_window);
        row(&m);
        measurements.push(m);
    }

    let mono = &measurements[0];
    let full = &measurements[1];
    let foot = &measurements[2];
    println!(
        "\nmixed_rw: post-snapshot first-write p50 {:.1}µs (monolithic emulation) -> {:.1}µs \
         (per-component), {:.1}x",
        mono.first_write_p50_ns as f64 / 1_000.0,
        foot.first_write_p50_ns as f64 / 1_000.0,
        mono.first_write_p50_ns as f64 / foot.first_write_p50_ns.max(1) as f64,
    );
    println!(
        "mixed_rw: reader hit rate {:.1}% (full invalidation) -> {:.1}% (per-footprint), \
         evictions {} -> {}",
        full.hit_rate() * 100.0,
        foot.hit_rate() * 100.0,
        full.entries_evicted,
        foot.entries_evicted,
    );
    for m in measurements.iter().filter(|m| m.shards > 0) {
        println!(
            "mixed_rw: shards={} read qps {:.0} ({:.2}x unsharded per_component), write qps \
             {:.0}, hit rate {:.1}%, zero divergences vs the unsharded oracle",
            m.shards,
            m.read_qps,
            m.read_qps / foot.read_qps,
            m.write_qps,
            m.hit_rate() * 100.0,
        );
    }

    write_json(&measurements, cores);
    println!("mixed_rw: wrote {} measurements", measurements.len() * 2);
}
