//! Experiment T2 — mixed read/write serving: publish stall and sustained write
//! throughput under concurrent readers.
//!
//! A writer replays the `datagen::mixed` write stream (ingest batches that register
//! new sequence objects interleaved with annotation batches) against a live system —
//! one [`CommitBatch`] per batch, one [`QueryService::publish`] after each — while N
//! reader clients continuously replay a phrase-query mix against the service.  Because
//! every publish leaves a snapshot outstanding in the service, **every batch's first
//! write is a post-snapshot first write**: with per-component structural sharing it
//! copies only the components the write touches; the pre-refactor monolithic
//! copy-on-publish paid a full deep copy of the view instead.  The bench measures both
//! sides on the same machine:
//!
//! * `per_component` — the real system as shipped;
//! * `monolithic` — the same drive with the old cost model emulated by
//!   `Graphitti::unshare_all` (a whole-view deep copy installed as the live view) at
//!   each batch's first write — exactly what `Arc::make_mut` on a flat view performed;
//!   the write then proceeds in place, paying no per-component copies on top.
//!
//! Reported per mode: sustained write qps, post-snapshot first-write latency
//! p50/p95/p99 (the publish stall), and concurrent read qps.  Entries carry `qps`, so
//! `bench_summary` routes them into `BENCH_throughput.json`.
//!
//! Pass `--quick` (as CI does) for a smoke run that doubles as a correctness gate:
//! small workload, and every mix query's final answer is asserted byte-identical to
//! the single-threaded [`Executor`] after the full stream has been applied.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use bench::{percentile, table_header, table_row};
use datagen::mixed::{self, MixedConfig, MixedWorkload};
use datagen::InfluenzaConfig;
use graphitti_query::{Executor, Query, QueryService, ServiceConfig, Target};

/// How each batch's first write pays for the outstanding snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyMode {
    /// Per-component `Arc::make_mut`: copy only what the write touches.
    PerComponent,
    /// Emulated pre-refactor behaviour: deep-copy the whole view first.
    Monolithic,
}

impl CopyMode {
    fn label(self) -> &'static str {
        match self {
            CopyMode::PerComponent => "per_component",
            CopyMode::Monolithic => "monolithic",
        }
    }
}

/// One mode's measured outcome.
struct Measurement {
    mode: &'static str,
    workers: usize,
    clients: usize,
    writes: usize,
    write_qps: f64,
    first_write_p50_ns: u64,
    first_write_p95_ns: u64,
    first_write_p99_ns: u64,
    read_qps: f64,
    read_p50_ns: u64,
    read_p95_ns: u64,
    read_p99_ns: u64,
    reads: usize,
}

fn read_mix(workload: &MixedWorkload) -> Vec<Query> {
    workload
        .read_phrases
        .iter()
        .map(|phrase| Query::new(Target::AnnotationContents).with_phrase(*phrase))
        .collect()
}

/// Drive one mode: the writer replays every batch (batch → publish) while `clients`
/// readers hammer the query mix, then gates every mix query's answer against the
/// single-threaded [`Executor`] on the final state before returning the measurement.
fn drive(config: &MixedConfig, mode: CopyMode, workers: usize, clients: usize) -> Measurement {
    let mut workload = mixed::build(config);
    let mix = read_mix(&workload);
    let service = QueryService::new(
        workload.system.snapshot(),
        ServiceConfig::default().with_workers(workers).with_cache_capacity(256),
    );

    let mut first_write_ns: Vec<u64> = Vec::with_capacity(workload.write_batches.len());
    let mut writes = 0usize;
    let stop = AtomicBool::new(false);
    let (read_latencies, write_wall) = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..clients)
            .map(|client| {
                let service = &service;
                let mix = &mix;
                let stop = &stop;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut i = client; // stagger the replay order per client
                    while !stop.load(Ordering::Relaxed) {
                        let q = mix[i % mix.len()].clone();
                        let t0 = Instant::now();
                        std::hint::black_box(service.run(q));
                        lat.push(t0.elapsed().as_nanos() as u64);
                        i += 1;
                    }
                    lat
                })
            })
            .collect();

        // The writer: every batch's first write lands right after a publish, so the
        // service's snapshot is outstanding and copy-on-write is exercised each time.
        let write_start = Instant::now();
        for ops in &workload.write_batches {
            let t0 = Instant::now();
            if mode == CopyMode::Monolithic {
                // What a flat `Arc<SystemView>` paid before the first write could
                // proceed: one deep copy of everything.  Installing the copy as the
                // live view keeps the emulation fair — the write below then mutates
                // unshared state in place, with no per-component copies on top.
                workload.system.unshare_all();
            }
            let mut batch = workload.system.batch();
            let mut op_iter = ops.iter();
            if let Some(first) = op_iter.next() {
                writes += usize::from(first.apply(&mut batch));
                first_write_ns.push(t0.elapsed().as_nanos() as u64);
            }
            for op in op_iter {
                writes += usize::from(op.apply(&mut batch));
            }
            batch.commit();
            service.publish(workload.system.snapshot());
        }
        let write_wall = write_start.elapsed();
        stop.store(true, Ordering::Relaxed);

        let mut read_latencies = Vec::new();
        for handle in readers {
            read_latencies.extend(handle.join().expect("reader thread panicked"));
        }
        (read_latencies, write_wall)
    });

    first_write_ns.sort_unstable();
    let mut reads_sorted = read_latencies;
    reads_sorted.sort_unstable();
    let measurement = Measurement {
        mode: mode.label(),
        workers,
        clients,
        writes,
        write_qps: writes as f64 / write_wall.as_secs_f64(),
        first_write_p50_ns: percentile(&first_write_ns, 50.0),
        first_write_p95_ns: percentile(&first_write_ns, 95.0),
        first_write_p99_ns: percentile(&first_write_ns, 99.0),
        read_qps: reads_sorted.len() as f64 / write_wall.as_secs_f64(),
        read_p50_ns: percentile(&reads_sorted, 50.0),
        read_p95_ns: percentile(&reads_sorted, 95.0),
        read_p99_ns: percentile(&reads_sorted, 99.0),
        reads: reads_sorted.len(),
    };

    // Correctness gate: after the full stream, every mix query served by the pool
    // must be byte-identical to the single-threaded executor on the final state.
    let exec = Executor::new(&workload.system);
    for q in &mix {
        let expected = exec.run(q);
        let served = service.run(q.clone());
        assert_eq!(
            served.to_json(),
            expected.to_json(),
            "service diverged from Executor on {:?} in mode {}",
            q,
            mode.label()
        );
    }

    measurement
}

fn write_json(measurements: &[Measurement], cores: usize) {
    let mut entries = Vec::new();
    for m in measurements {
        for (kind, qps, p50, p95, p99, count) in [
            (
                "write",
                m.write_qps,
                m.first_write_p50_ns,
                m.first_write_p95_ns,
                m.first_write_p99_ns,
                m.writes,
            ),
            ("read", m.read_qps, m.read_p50_ns, m.read_p95_ns, m.read_p99_ns, m.reads),
        ] {
            entries.push(jsonlite::Json::obj([
                ("bench", jsonlite::Json::str("mixed_rw")),
                ("name", jsonlite::Json::str(format!("T2_mixed_rw/{}/{}_side", m.mode, kind))),
                // for the write side this is the post-snapshot first-write stall
                ("ns_per_iter", jsonlite::Json::Num(p50 as f64)),
                ("qps", jsonlite::Json::Num(qps)),
                ("p50_ns", jsonlite::Json::u64(p50)),
                ("p95_ns", jsonlite::Json::u64(p95)),
                ("p99_ns", jsonlite::Json::u64(p99)),
                ("clients", jsonlite::Json::u64(m.clients as u64)),
                ("workers", jsonlite::Json::u64(m.workers as u64)),
                ("cache", jsonlite::Json::u64(256)),
                ("queries", jsonlite::Json::u64(count as u64)),
                ("cores", jsonlite::Json::u64(cores as u64)),
            ]));
        }
    }
    let path = std::env::var("BENCH_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
        let dir = criterion::workspace_root().join("target").join("criterion-json");
        let _ = std::fs::create_dir_all(&dir);
        dir.join("mixed_rw.json")
    });
    if let Err(e) = std::fs::write(&path, jsonlite::Json::Arr(entries).pretty() + "\n") {
        eprintln!("mixed_rw: cannot write {}: {e}", path.display());
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (config, workers, clients) = if quick {
        (
            MixedConfig {
                seed: 7,
                base: InfluenzaConfig::small().with_annotations(120),
                batches: 8,
                writes_per_batch: 6,
                protease_prob: 0.4,
                register_batch_prob: 0.5,
            },
            2,
            2,
        )
    } else {
        (MixedConfig::default(), 4, 4)
    };

    table_header(
        &format!(
            "T2: mixed read/write serving ({cores} core(s), {} batches x {} writes)",
            config.batches, config.writes_per_batch
        ),
        &["mode", "write qps", "stall p50", "stall p99", "read qps", "read p50", "read p99"],
    );

    let mut measurements = Vec::new();
    for mode in [CopyMode::Monolithic, CopyMode::PerComponent] {
        let m = drive(&config, mode, workers, clients);
        table_row(&[
            m.mode.to_string(),
            format!("{:.0}", m.write_qps),
            format!("{:.1}µs", m.first_write_p50_ns as f64 / 1_000.0),
            format!("{:.1}µs", m.first_write_p99_ns as f64 / 1_000.0),
            format!("{:.0}", m.read_qps),
            format!("{:.1}µs", m.read_p50_ns as f64 / 1_000.0),
            format!("{:.1}µs", m.read_p99_ns as f64 / 1_000.0),
        ]);
        measurements.push(m);
    }

    let mono = &measurements[0];
    let per = &measurements[1];
    println!(
        "\nmixed_rw: post-snapshot first-write p50 {:.1}µs (monolithic emulation) -> {:.1}µs \
         (per-component), {:.1}x",
        mono.first_write_p50_ns as f64 / 1_000.0,
        per.first_write_p50_ns as f64 / 1_000.0,
        mono.first_write_p50_ns as f64 / per.first_write_p50_ns.max(1) as f64,
    );

    write_json(&measurements, cores);
    println!("mixed_rw: wrote {} measurements", measurements.len() * 2);
}
