//! Experiment D1 — durable write throughput and recovery time.
//!
//! Two sweeps over the WAL on a real [`FileStorage`] directory (under
//! `target/criterion-json/`, so fsyncs hit an actual filesystem):
//!
//! 1. **Durable writes** — N client threads append pre-encoded [`WalRecord`]s
//!    through one shared [`Wal`], sweeping [`DurabilityMode`] `Sync` (group commit:
//!    one fsync covers every concurrently submitted record) vs `Async` (append
//!    now, one barrier at publish).  Rows report records/second as `qps`, plus
//!    `records`, `fsyncs`, and the group-commit coalescing factor
//!    `batches_per_fsync` — the observable the group-commit leader exists for:
//!    under `Sync` with many clients it should clear 1.0 by a wide margin.
//! 2. **Recovery** — a durable system is driven through a batch schedule with a
//!    mid-stream checkpoint, then re-opened cold ([`DurableSystem::open`] /
//!    [`DurableShardedSystem::open`] at shards 4): checkpoint-then-tail replay,
//!    timed end-to-end.  Rows report batches recovered per second as `qps`,
//!    `recovery_ms`, and `replayed` (tail records past the checkpoint).
//!
//! This bench owns its measurement loop (like `throughput.rs`) and writes the same
//! per-bench JSON directly; entries carry `qps`, so `bench_summary` routes them
//! into `BENCH_throughput.json`.  Pass `--quick` (as CI does) for a smoke run.

use std::time::Instant;

use bench::{table_header, table_row};
use graphitti_core::wal::batch_dirty;
use graphitti_core::xmlstore::DublinCore;
use graphitti_core::{
    DataType, DurabilityMode, DurableShardedSystem, DurableSystem, FileStorage, LogOp, LogReferent,
    Marker, ObjectId, Wal, WalRecord,
};

/// One measured configuration's outcome (write or recovery row).
struct Measurement {
    name: String,
    qps: f64,
    mean_ns: f64,
    records: u64,
    fsyncs: u64,
    clients: usize,
    shards: usize,
    recovery_ms: f64,
    replayed: u64,
}

/// A small representative batch: one register + one annotation (the dominant
/// published-batch shape).
fn sample_batch(step: u64) -> Vec<LogOp> {
    let start = (step * 37) % 1_500;
    vec![
        LogOp::register_sequence(format!("seq-{step}"), DataType::DnaSequence, 2_000, "chr1"),
        LogOp::Annotate {
            content: DublinCore::new()
                .field("description", format!("durable observation {step}"))
                .user_tag("curator", format!("u{}", step % 3)),
            referents: vec![LogReferent::New {
                object: ObjectId(step % 8),
                marker: Marker::interval(start, start + 40),
            }],
            terms: vec![],
        },
    ]
}

fn record_at(version: u64) -> WalRecord {
    let ops = sample_batch(version);
    WalRecord { version, dirty: batch_dirty(&ops).bits(), ops }
}

/// A scratch WAL directory under `target/` (a real filesystem, so `sync_data`
/// actually syncs), cleaned before each configuration.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = criterion::workspace_root().join("target").join("wal-bench").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Durable write throughput: `clients` threads push `per_client` records each
/// through one shared group-committing [`Wal`].
fn measure_writes(mode: DurabilityMode, clients: usize, per_client: u64) -> Measurement {
    let tag = format!("writes-{mode:?}-{clients}");
    let storage = FileStorage::open(scratch_dir(&tag)).expect("open wal dir");
    let wal = Wal::new(Box::new(storage), mode);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let wal = wal.clone();
            scope.spawn(move || {
                for i in 0..per_client {
                    let version = client as u64 * per_client + i + 1;
                    wal.append_record(&record_at(version)).expect("durable append");
                }
            });
        }
    });
    // Async mode defers the barrier to publish; charge it to the run so the two
    // modes report comparable durability.
    wal.flush().expect("final barrier");
    let elapsed = start.elapsed();

    let stats = wal.stats();
    let total = clients as u64 * per_client;
    assert_eq!(stats.records_appended, total, "every record must reach the log");
    Measurement {
        name: format!(
            "D1_durability/writes/mode={}/clients={clients}",
            match mode {
                DurabilityMode::Sync => "sync",
                DurabilityMode::Async => "async",
                DurabilityMode::Off => "off",
            }
        ),
        qps: total as f64 / elapsed.as_secs_f64(),
        mean_ns: elapsed.as_nanos() as f64 / total as f64,
        records: stats.records_appended,
        fsyncs: stats.fsyncs,
        clients,
        shards: 0,
        recovery_ms: 0.0,
        replayed: 0,
    }
}

/// Recovery time: drive `batches` through a durable system with a checkpoint at
/// the midpoint, then time a cold `open` (checkpoint-then-tail replay).
fn measure_recovery(shards: usize, batches: u64) -> Measurement {
    let tag = format!("recovery-{shards}");
    let dir = scratch_dir(&tag);

    let build = |dir: &std::path::Path| FileStorage::open(dir).expect("open wal dir");
    if shards == 0 {
        let mut sys = DurableSystem::create(Box::new(build(&dir)), DurabilityMode::Sync);
        for step in 0..batches {
            sys.apply(&sample_batch(step)).expect("apply");
            if step == batches / 2 {
                sys.checkpoint().expect("checkpoint");
            }
        }
    } else {
        let mut sys =
            DurableShardedSystem::create(Box::new(build(&dir)), DurabilityMode::Sync, shards);
        for step in 0..batches {
            sys.apply(&sample_batch(step)).expect("apply");
            if step == batches / 2 {
                sys.checkpoint().expect("checkpoint");
            }
        }
    }

    let start = Instant::now();
    let (replayed, recovered_version) = if shards == 0 {
        let (sys, report) = DurableSystem::open(Box::new(build(&dir)), DurabilityMode::Sync)
            .expect("recover unsharded");
        assert_eq!(sys.version(), batches);
        (report.replayed_records as u64, report.recovered_version)
    } else {
        let (sys, report) =
            DurableShardedSystem::open(Box::new(build(&dir)), DurabilityMode::Sync, shards)
                .expect("recover sharded");
        assert_eq!(sys.version(), batches);
        (report.replayed_records as u64, report.recovered_version)
    };
    let elapsed = start.elapsed();
    assert_eq!(recovered_version, batches, "recovery must land on the published version");

    Measurement {
        name: format!("D1_durability/recovery/shards={shards}/batches={batches}"),
        qps: batches as f64 / elapsed.as_secs_f64(),
        mean_ns: elapsed.as_nanos() as f64 / batches as f64,
        records: batches,
        fsyncs: 0,
        clients: 0,
        shards,
        recovery_ms: elapsed.as_secs_f64() * 1_000.0,
        replayed,
    }
}

fn write_json(measurements: &[Measurement]) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let entries = jsonlite::Json::Arr(
        measurements
            .iter()
            .map(|m| {
                jsonlite::Json::obj([
                    ("bench", jsonlite::Json::str("durability")),
                    ("name", jsonlite::Json::str(m.name.clone())),
                    ("ns_per_iter", jsonlite::Json::Num(m.mean_ns)),
                    ("qps", jsonlite::Json::Num(m.qps)),
                    ("records", jsonlite::Json::u64(m.records)),
                    ("fsyncs", jsonlite::Json::u64(m.fsyncs)),
                    (
                        "batches_per_fsync",
                        jsonlite::Json::Num(if m.fsyncs > 0 {
                            m.records as f64 / m.fsyncs as f64
                        } else {
                            0.0
                        }),
                    ),
                    ("clients", jsonlite::Json::u64(m.clients as u64)),
                    ("shards", jsonlite::Json::u64(m.shards as u64)),
                    ("recovery_ms", jsonlite::Json::Num(m.recovery_ms)),
                    ("replayed", jsonlite::Json::u64(m.replayed)),
                    ("cores", jsonlite::Json::u64(cores as u64)),
                ])
            })
            .collect(),
    );
    let path = std::env::var("BENCH_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
        let dir = criterion::workspace_root().join("target").join("criterion-json");
        let _ = std::fs::create_dir_all(&dir);
        dir.join("durability.json")
    });
    if let Err(e) = std::fs::write(&path, entries.pretty() + "\n") {
        eprintln!("durability: cannot write {}: {e}", path.display());
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let client_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let per_client: u64 = if quick { 64 } else { 256 };
    let recovery_batches: u64 = if quick { 60 } else { 240 };

    table_header(
        "D1: durable write throughput & recovery",
        &["config", "clients", "qps", "records", "fsyncs", "grp", "recovery"],
    );

    let mut measurements = Vec::new();
    for &clients in client_counts {
        measurements.push(measure_writes(DurabilityMode::Sync, clients, per_client));
        measurements.push(measure_writes(DurabilityMode::Async, clients, per_client));
    }
    for shards in [0usize, 4] {
        measurements.push(measure_recovery(shards, recovery_batches));
    }

    for m in &measurements {
        table_row(&[
            m.name.clone(),
            m.clients.to_string(),
            format!("{:.0}", m.qps),
            m.records.to_string(),
            m.fsyncs.to_string(),
            if m.fsyncs > 0 {
                format!("{:.1}", m.records as f64 / m.fsyncs as f64)
            } else {
                "-".into()
            },
            if m.recovery_ms > 0.0 { format!("{:.1}ms", m.recovery_ms) } else { "-".into() },
        ]);
    }

    write_json(&measurements);
    println!("\ndurability: wrote {} measurements", measurements.len());
}
