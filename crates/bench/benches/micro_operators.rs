//! Experiment M1 — microbenchmarks of every published operator.
//!
//! Times each operator named in Section II: substructure `ifOverlap` / `next` /
//! `intersect`, ontology `CI` / `CRI` / `CmRI` / `mCmRI` / `SubTree` / subtree
//! difference, and a-graph `path` / `connect`. These establish the per-operation cost
//! floor the higher-level experiments build on.
//!
//! The `M1_set_ops` group sweeps candidate-set intersection and union across density
//! regimes (selectivity 10⁻⁴ … 0.5 over a 2²⁰ universe), pitting the compressed
//! bitmap kernels against the sorted-`Vec` galloping merges they replace on the
//! executor's hot path.  Both sides measure the pure kernel over pre-materialized
//! operands — the representations are built once outside the timing loop, mirroring
//! how the executor holds candidates in one representation across pipeline stages.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};

use agraph::{EdgeLabel, MultiGraph, NodeKind};
use datagen::ontology_gen;
use graphitti_query::bitmap::Bitmap;
use graphitti_query::setops;
use interval_index::{Interval, IntervalTree};
use ontology::RelationType;
use spatial_index::{RTree, Rect};

fn interval_tree(n: u64) -> IntervalTree {
    let mut t = IntervalTree::new();
    for i in 0..n {
        let s = (i * 37) % 1_000_000;
        t.insert(Interval::new(s, s + 40), i);
    }
    t
}

fn rtree(n: u64) -> RTree {
    let mut t = RTree::new();
    for i in 0..n {
        let x = (i as f64 * 3.0) % 10_000.0;
        t.insert(Rect::rect2(x, x, x + 20.0, x + 20.0), i);
    }
    t
}

fn star_graph(arms: usize) -> (MultiGraph, Vec<agraph::NodeId>) {
    let mut g = MultiGraph::new();
    let hub = g.add_node(NodeKind::Referent, "hub");
    let contents: Vec<_> = (0..arms)
        .map(|i| {
            let c = g.add_node(NodeKind::Content, format!("ann{i}"));
            g.add_edge(c, hub, EdgeLabel::annotates()).unwrap();
            c
        })
        .collect();
    (g, contents)
}

fn bench_operators(c: &mut Criterion) {
    // substructure operators
    let a = Interval::new(1000, 2000);
    let b = Interval::new(1500, 2500);
    c.bench_function("M1_ifOverlap_interval", |bch| bch.iter(|| a.if_overlap(&b)));
    c.bench_function("M1_intersect_interval", |bch| bch.iter(|| a.intersect(&b)));

    let ra = Rect::rect2(0.0, 0.0, 100.0, 100.0);
    let rb = Rect::rect2(50.0, 50.0, 150.0, 150.0);
    c.bench_function("M1_ifOverlap_rect", |bch| bch.iter(|| ra.if_overlap(&rb)));
    c.bench_function("M1_intersect_rect", |bch| bch.iter(|| ra.intersect(&rb)));

    let tree = interval_tree(10_000);
    c.bench_function("M1_next_interval_tree", |bch| {
        bch.iter(|| tree.next_after(Interval::new(500_000, 500_040)))
    });
    c.bench_function("M1_overlap_interval_tree", |bch| {
        bch.iter(|| tree.overlapping(Interval::new(500_000, 500_200)).len())
    });

    let rt = rtree(10_000);
    c.bench_function("M1_overlap_rtree", |bch| {
        bch.iter(|| rt.overlapping(Rect::rect2(5_000.0, 5_000.0, 5_200.0, 5_200.0)).len())
    });
    c.bench_function("M1_nearest_rtree", |bch| bch.iter(|| rt.nearest([5_000.0, 5_000.0, 0.0])));

    // ontology operators
    let (mut onto, _root, all) = ontology_gen::balanced_tree(4, 4);
    ontology_gen::populate_leaves(&mut onto, &all, 2);
    let root = all[0];
    let child = all[1];
    c.bench_function("M1_CI", |bch| bch.iter(|| onto.ci(root).len()));
    c.bench_function("M1_CRI", |bch| bch.iter(|| onto.cri(root, &RelationType::IsA).len()));
    c.bench_function("M1_CmRI", |bch| bch.iter(|| onto.cm_ri(&[root], &[RelationType::IsA]).len()));
    c.bench_function("M1_mCmRI", |bch| {
        bch.iter(|| onto.m_cm_ri(&[root, child], &[RelationType::IsA]).len())
    });
    c.bench_function("M1_SubTree", |bch| bch.iter(|| onto.subtree(root, &RelationType::IsA).len()));
    c.bench_function("M1_SubTree_difference", |bch| {
        bch.iter(|| onto.subtree_difference(root, child, &RelationType::IsA).len())
    });

    // a-graph operators
    let (g, contents) = star_graph(1_000);
    c.bench_function("M1_path", |bch| bch.iter(|| g.path(contents[0], contents[999])));
    c.bench_function("M1_connect", |bch| {
        bch.iter(|| g.connect(&[contents[0], contents[500], contents[999]]).map(|cs| cs.size()))
    });
}

/// Deterministic sorted id set of `universe * density` elements drawn uniformly
/// from `0..universe`.
fn random_ids(seed: u64, universe: u64, density: f64) -> Vec<u64> {
    let target = (universe as f64 * density) as usize;
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut set: BTreeSet<u64> = BTreeSet::new();
    while set.len() < target {
        set.insert(next() % universe);
    }
    set.into_iter().collect()
}

fn bench_set_ops(c: &mut Criterion) {
    const UNIVERSE: u64 = 1 << 20;
    let mut group = c.benchmark_group("M1_set_ops");
    for (label, density) in
        [("1e-4", 1e-4), ("1e-3", 1e-3), ("1e-2", 1e-2), ("1e-1", 1e-1), ("5e-1", 0.5)]
    {
        let a = random_ids(7, UNIVERSE, density);
        let b = random_ids(1009, UNIVERSE, density);
        let (ba, bb) = (Bitmap::from_sorted_slice(&a), Bitmap::from_sorted_slice(&b));

        group.bench_function(format!("intersect_vec_sel_{label}"), |bch| {
            bch.iter(|| setops::intersect_sorted(&a, &b).len())
        });
        group.bench_function(format!("intersect_bitmap_sel_{label}"), |bch| {
            bch.iter(|| ba.and(&bb).len())
        });
        group.bench_function(format!("union_vec_sel_{label}"), |bch| {
            bch.iter(|| setops::union_sorted(&[&a, &b]).len())
        });
        group.bench_function(format!("union_bitmap_sel_{label}"), |bch| {
            bch.iter(|| ba.or(&bb).len())
        });
    }
    // Posting → bitmap materialization cost at a representative density (the
    // executor pays this once per seed, then reuses the containers across stages).
    let posting = random_ids(13, UNIVERSE, 1e-2);
    group.bench_function("materialize_bitmap_sel_1e-2", |bch| {
        bch.iter(|| Bitmap::from_sorted_slice(&posting).len())
    });
    group.finish();
}

criterion_group!(benches, bench_operators, bench_set_ops);
criterion_main!(benches);
