//! Experiment M1 — microbenchmarks of every published operator.
//!
//! Times each operator named in Section II: substructure `ifOverlap` / `next` /
//! `intersect`, ontology `CI` / `CRI` / `CmRI` / `mCmRI` / `SubTree` / subtree
//! difference, and a-graph `path` / `connect`. These establish the per-operation cost
//! floor the higher-level experiments build on.

use criterion::{criterion_group, criterion_main, Criterion};

use agraph::{EdgeLabel, MultiGraph, NodeKind};
use datagen::ontology_gen;
use interval_index::{Interval, IntervalTree};
use ontology::RelationType;
use spatial_index::{RTree, Rect};

fn interval_tree(n: u64) -> IntervalTree {
    let mut t = IntervalTree::new();
    for i in 0..n {
        let s = (i * 37) % 1_000_000;
        t.insert(Interval::new(s, s + 40), i);
    }
    t
}

fn rtree(n: u64) -> RTree {
    let mut t = RTree::new();
    for i in 0..n {
        let x = (i as f64 * 3.0) % 10_000.0;
        t.insert(Rect::rect2(x, x, x + 20.0, x + 20.0), i);
    }
    t
}

fn star_graph(arms: usize) -> (MultiGraph, Vec<agraph::NodeId>) {
    let mut g = MultiGraph::new();
    let hub = g.add_node(NodeKind::Referent, "hub");
    let contents: Vec<_> = (0..arms)
        .map(|i| {
            let c = g.add_node(NodeKind::Content, format!("ann{i}"));
            g.add_edge(c, hub, EdgeLabel::annotates()).unwrap();
            c
        })
        .collect();
    (g, contents)
}

fn bench_operators(c: &mut Criterion) {
    // substructure operators
    let a = Interval::new(1000, 2000);
    let b = Interval::new(1500, 2500);
    c.bench_function("M1_ifOverlap_interval", |bch| bch.iter(|| a.if_overlap(&b)));
    c.bench_function("M1_intersect_interval", |bch| bch.iter(|| a.intersect(&b)));

    let ra = Rect::rect2(0.0, 0.0, 100.0, 100.0);
    let rb = Rect::rect2(50.0, 50.0, 150.0, 150.0);
    c.bench_function("M1_ifOverlap_rect", |bch| bch.iter(|| ra.if_overlap(&rb)));
    c.bench_function("M1_intersect_rect", |bch| bch.iter(|| ra.intersect(&rb)));

    let tree = interval_tree(10_000);
    c.bench_function("M1_next_interval_tree", |bch| {
        bch.iter(|| tree.next_after(Interval::new(500_000, 500_040)))
    });
    c.bench_function("M1_overlap_interval_tree", |bch| {
        bch.iter(|| tree.overlapping(Interval::new(500_000, 500_200)).len())
    });

    let rt = rtree(10_000);
    c.bench_function("M1_overlap_rtree", |bch| {
        bch.iter(|| rt.overlapping(Rect::rect2(5_000.0, 5_000.0, 5_200.0, 5_200.0)).len())
    });
    c.bench_function("M1_nearest_rtree", |bch| bch.iter(|| rt.nearest([5_000.0, 5_000.0, 0.0])));

    // ontology operators
    let (mut onto, _root, all) = ontology_gen::balanced_tree(4, 4);
    ontology_gen::populate_leaves(&mut onto, &all, 2);
    let root = all[0];
    let child = all[1];
    c.bench_function("M1_CI", |bch| bch.iter(|| onto.ci(root).len()));
    c.bench_function("M1_CRI", |bch| bch.iter(|| onto.cri(root, &RelationType::IsA).len()));
    c.bench_function("M1_CmRI", |bch| bch.iter(|| onto.cm_ri(&[root], &[RelationType::IsA]).len()));
    c.bench_function("M1_mCmRI", |bch| {
        bch.iter(|| onto.m_cm_ri(&[root, child], &[RelationType::IsA]).len())
    });
    c.bench_function("M1_SubTree", |bch| bch.iter(|| onto.subtree(root, &RelationType::IsA).len()));
    c.bench_function("M1_SubTree_difference", |bch| {
        bch.iter(|| onto.subtree_difference(root, child, &RelationType::IsA).len())
    });

    // a-graph operators
    let (g, contents) = star_graph(1_000);
    c.bench_function("M1_path", |bch| bch.iter(|| g.path(contents[0], contents[999])));
    c.bench_function("M1_connect", |bch| {
        bch.iter(|| g.connect(&[contents[0], contents[500], contents[999]]).map(|cs| cs.size()))
    });
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
