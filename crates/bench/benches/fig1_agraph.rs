//! Experiment F1 — Figure 1: a-graph construction for the interdisciplinary study.
//!
//! Sweeps the annotation count and measures (a) the throughput of building the a-graph
//! (register + annotate) and (b) discovery of indirectly-related annotations (two
//! contents sharing a referent). The paper's Figure 1 is the scenario picture; the
//! reproducible *shape* is that construction cost grows roughly linearly with the number
//! of annotations and that shared referents induce indirect relations.

use bench::{table_header, table_row};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::influenza::{self, InfluenzaConfig};

fn config(annotations: usize) -> InfluenzaConfig {
    InfluenzaConfig {
        seed: 2008,
        sequences: (annotations / 10).max(20),
        annotations,
        segments: 8,
        shared_referent_prob: 0.3,
        protease_prob: 0.3,
        ..InfluenzaConfig::default()
    }
}

fn bench_fig1(c: &mut Criterion) {
    let sizes = [1_000usize, 5_000, 10_000];

    table_header(
        "F1: a-graph construction (Figure 1 scenario)",
        &["annotations", "objects", "referents", "agraph_nodes", "indirect_links"],
    );
    for &a in &sizes {
        let sys = influenza::build(&config(a));
        let mut indirect = 0usize;
        for ann in sys.annotations() {
            indirect += sys.related_annotations(ann.id).len();
        }
        table_row(&[
            a.to_string(),
            sys.object_count().to_string(),
            sys.referent_count().to_string(),
            sys.agraph().node_count().to_string(),
            (indirect / 2).to_string(),
        ]);
    }

    let mut group = c.benchmark_group("F1_agraph_construction");
    for &a in &sizes {
        let cfg = config(a);
        group.bench_with_input(BenchmarkId::from_parameter(a), &cfg, |b, cfg| {
            b.iter(|| influenza::build(cfg));
        });
    }
    group.finish();

    let sys = influenza::build(&config(5_000));
    let ids: Vec<_> = sys.annotations().iter().map(|x| x.id).take(200).collect();
    c.bench_function("F1_related_annotation_lookup", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &id in &ids {
                total += sys.related_annotations(id).len();
            }
            total
        })
    });
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
