//! Experiment B2 — connection discovery: Graphitti a-graph BFS vs. relational self-join.
//!
//! The complement of B1. B1 showed that on a single-type query the flat relational
//! baseline is competitive. This experiment is Graphitti's home turf: transitively
//! discovering all annotations connected through shared referents. Graphitti does one
//! breadth-first traversal of the a-graph join index; the relational baseline must run an
//! iterative self-join over the referent table. Reproducible shape: Graphitti's cost is
//! proportional to the connected component it visits, while the baseline re-scans the
//! referent table each round and grows super-linearly with the workload.

use baseline::RelationalAnnotationStore;
use bench::{influenza_system, table_header, table_row};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphitti_core::{AnnotationId, Graphitti, Marker};

fn mirror_to_relational(sys: &Graphitti) -> RelationalAnnotationStore {
    let mut rel = RelationalAnnotationStore::new();
    for ann in sys.annotations() {
        let mut referents = Vec::new();
        for &rid in &ann.referents {
            if let Some(r) = sys.referent(rid) {
                if let Marker::Interval(iv) = r.marker {
                    referents.push((r.object.0, iv.start, iv.end));
                }
            }
        }
        rel.insert(
            ann.title().unwrap_or(""),
            ann.comment().unwrap_or(""),
            ann.creator().unwrap_or(""),
            &referents,
            &[],
        );
    }
    rel
}

fn bench_connection(c: &mut Criterion) {
    let sizes = [1_000usize, 3_000];

    table_header(
        "B2: transitive connection discovery (same answers)",
        &["annotations", "graphitti_reachable", "baseline_reachable", "agree"],
    );

    let mut group = c.benchmark_group("B2_connection_discovery");
    for &a in &sizes {
        let sys = influenza_system(a, 2008);
        let rel = mirror_to_relational(&sys);
        let start = AnnotationId(0);

        let g = sys.transitively_related_annotations(start);
        let b = rel.transitively_related(baseline::RelAnnotationId(0));
        table_row(&[
            a.to_string(),
            g.len().to_string(),
            b.len().to_string(),
            (g.len() == b.len()).to_string(),
        ]);

        group.bench_with_input(BenchmarkId::new("graphitti_bfs", a), &a, |bch, _| {
            bch.iter(|| sys.transitively_related_annotations(start).len());
        });
        group.bench_with_input(BenchmarkId::new("relational_selfjoin", a), &a, |bch, _| {
            bch.iter(|| rel.transitively_related(baseline::RelAnnotationId(0)).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_connection);
criterion_main!(benches);
