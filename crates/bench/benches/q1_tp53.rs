//! Experiment Q1 — the TP53 example query (§I).
//!
//! "Find annotations that contain the term 'protein TP53' and have paths to all mouse
//! brain images having at least 2 regions annotated with ontology term 'Deep Cerebellar
//! nuclei'." Sweeps the image count and measures query latency. Reproducible shape: the
//! keyword + ontology subqueries prune first, so latency grows sub-linearly in the image
//! count.

use bench::{neuro_workload, table_header, table_row};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphitti_query::{Executor, GraphConstraint, OntologyFilter, Query, Target};
use spatial_index::Rect;

fn bench_q1(c: &mut Criterion) {
    let sizes = [50usize, 100, 200];

    table_header(
        "Q1: protein TP53 with >=2 DCN regions",
        &["images", "annotations", "matching_objects", "pages"],
    );

    let mut group = c.benchmark_group("Q1_tp53");
    for &images in &sizes {
        let workload = neuro_workload(images, 8, 2008);
        let sys = &workload.system;
        let canvas = Rect::rect2(0.0, 0.0, 1_000.0, 1_000.0);
        let query = Query::new(Target::ConnectionGraphs)
            .with_phrase("protein TP53")
            .with_ontology(OntologyFilter::CitesTerm(workload.concepts.deep_cerebellar_nuclei))
            .with_constraint(GraphConstraint::MinRegionCount {
                count: 2,
                within: canvas,
                system: workload.systems[0].clone(),
            });

        let result = Executor::new(sys).run(&query);
        table_row(&[
            images.to_string(),
            sys.annotation_count().to_string(),
            result.objects.len().to_string(),
            result.page_count().to_string(),
        ]);

        group.bench_with_input(BenchmarkId::from_parameter(images), &images, |b, _| {
            let exec = Executor::new(sys);
            b.iter(|| exec.run(&query));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_q1);
criterion_main!(benches);
