//! Experiment A2 — "keep the number of index structures small".
//!
//! The paper shares one interval tree per chromosome (not per sequence) and one R-tree
//! per coordinate system (not per image). This ablation compares the *grouped* layout
//! (few large trees) against a *per-object* layout (many tiny trees) on the same
//! referents. Reproducible shape: grouped queries touch one tree and are competitive,
//! while the per-object layout pays a dispatch cost proportional to the number of
//! objects for cross-object queries.

use bench::{table_header, table_row};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interval_index::{DomainIntervals, Interval};

/// Grouped: one domain shared by all objects.
fn grouped(objects: u64, per_object: u64) -> DomainIntervals {
    let mut d = DomainIntervals::new();
    let mut payload = 0u64;
    for _o in 0..objects {
        for i in 0..per_object {
            let start = (payload * 13) % 1_000_000;
            d.insert("shared", Interval::new(start, start + 30), payload);
            payload += 1;
            let _ = i;
        }
    }
    d
}

/// Per-object: one domain per object.
fn per_object(objects: u64, per_object: u64) -> DomainIntervals {
    let mut d = DomainIntervals::new();
    let mut payload = 0u64;
    for o in 0..objects {
        let domain = format!("obj-{o}");
        for _i in 0..per_object {
            let start = (payload * 13) % 1_000_000;
            d.insert(&domain, Interval::new(start, start + 30), payload);
            payload += 1;
        }
    }
    d
}

fn bench_grouping(c: &mut Criterion) {
    let objects = 500u64;
    let per = 20u64;
    let probe = Interval::new(100_000, 100_500);

    let g = grouped(objects, per);
    let p = per_object(objects, per);

    table_header("A2: index grouping", &["layout", "structures", "total_intervals"]);
    table_row(&["grouped".into(), g.domain_count().to_string(), g.len().to_string()]);
    table_row(&["per_object".into(), p.domain_count().to_string(), p.len().to_string()]);

    let mut group = c.benchmark_group("A2_index_grouping");

    // grouped: a single overlap query on the shared tree
    group.bench_with_input(BenchmarkId::new("grouped_single_domain", objects), &objects, |b, _| {
        b.iter(|| g.overlapping("shared", probe).len());
    });

    // per-object: to answer the same cross-object query, every per-object tree must be
    // consulted (overlapping_all_domains)
    group.bench_with_input(
        BenchmarkId::new("per_object_all_domains", objects),
        &objects,
        |b, _| {
            b.iter(|| p.overlapping_all_domains(probe).len());
        },
    );

    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
