//! Experiment A4 — content keyword index vs. linear deep-text scan.
//!
//! The annotation-content store keeps a keyword inverted index so phrase/keyword queries
//! do not scan every document's text. This ablation compares indexed keyword lookup
//! against a linear scan that lowercases and searches each document's deep text.
//! Reproducible shape: the index turns an `O(docs × text)` scan into an `O(hits)` lookup,
//! so the speedup grows with the collection size for selective keywords.

use bench::{table_header, table_row};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlstore::{ContentStore, DublinCore};

fn build_store(n: usize) -> ContentStore {
    let mut s = ContentStore::new();
    for i in 0..n {
        // one in ten documents mentions the rare keyword "protease"
        let body = if i % 10 == 0 {
            "this region contains a protease cleavage motif of interest".to_string()
        } else {
            format!("routine observation number {i} with no special features")
        };
        s.insert(DublinCore::new().title(format!("ann {i}")).description(body).to_document());
    }
    s
}

/// Linear scan: verify every document's deep text (what the store avoids via the index).
fn linear_scan(store: &ContentStore, needle: &str) -> usize {
    let lowered = needle.to_lowercase();
    store
        .ids()
        .into_iter()
        .filter(|id| {
            store
                .get(*id)
                .map(|d| d.root.deep_text().to_lowercase().contains(&lowered))
                .unwrap_or(false)
        })
        .count()
}

fn bench_content(c: &mut Criterion) {
    let sizes = [1_000usize, 5_000, 20_000];

    table_header(
        "A4: content keyword index vs. linear scan (correctness)",
        &["docs", "index_hits", "scan_hits", "agree"],
    );
    for &n in &sizes {
        let s = build_store(n);
        let idx = s.with_keyword("protease").len();
        let scan = linear_scan(&s, "protease");
        table_row(&[n.to_string(), idx.to_string(), scan.to_string(), (idx == scan).to_string()]);
    }

    let mut group = c.benchmark_group("A4_content_search");
    for &n in &sizes {
        let s = build_store(n);
        group.bench_with_input(BenchmarkId::new("keyword_index", n), &n, |b, _| {
            b.iter(|| s.with_keyword("protease").len());
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            b.iter(|| linear_scan(&s, "protease"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_content);
criterion_main!(benches);
