//! Experiment A1 — index ablation: interval-tree / R-tree vs. linear scan, and the
//! plan-driven pipelined executor vs. the scan-and-intersect reference executor.
//!
//! Reproduces the design choice DESIGN.md calls out: the substructure indexes make
//! overlap lookup `O(log n + k)`, while the naive linear-scan baseline is `O(n)`. Sweeps
//! the referent count and benches both on the same data. Reproducible shape: the indexed
//! structure wins by a factor that grows with n.  The query-level ablation runs the same
//! queries through both executors — identical collation, so the gap isolates what the
//! persistent inverted indexes and the seed-then-verify pipeline buy.

use baseline::NaiveReferentIndex;
use bench::{table_header, table_row};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphitti_query::{Executor, OntologyFilter, Query, ReferenceExecutor, Target};
use interval_index::{DomainIntervals, Interval};
use spatial_index::{CoordinateSystems, Rect};

const DOMAIN: &str = "chr-demo";
const SYSTEM: &str = "cs-demo";

fn build_interval(n: u64) -> (DomainIntervals, NaiveReferentIndex) {
    let mut indexed = DomainIntervals::new();
    let mut naive = NaiveReferentIndex::new();
    for i in 0..n {
        let start = (i * 37) % 1_000_000;
        let iv = Interval::new(start, start + 40);
        indexed.insert(DOMAIN, iv, i);
        naive.insert_interval(DOMAIN, iv, i);
    }
    (indexed, naive)
}

fn build_region(n: u64) -> (CoordinateSystems, NaiveReferentIndex) {
    let mut indexed = CoordinateSystems::new();
    let mut naive = NaiveReferentIndex::new();
    for i in 0..n {
        let x = (i as f64 * 3.0) % 10_000.0;
        let r = Rect::rect2(x, x, x + 20.0, x + 20.0);
        indexed.insert(SYSTEM, r, i);
        naive.insert_region(SYSTEM, r, i);
    }
    (indexed, naive)
}

fn bench_ablation(c: &mut Criterion) {
    let sizes = [1_000u64, 10_000, 50_000];
    let probe = Interval::new(500_000, 500_200);

    table_header(
        "A1: index vs. linear scan (correctness)",
        &["n", "interval_hits_match", "region_hits_match"],
    );
    for &n in &sizes {
        let (idx, naive) = build_interval(n);
        let mut a: Vec<u64> = idx.overlapping(DOMAIN, probe).iter().map(|e| e.payload).collect();
        let mut b = naive.overlapping_intervals(DOMAIN, probe);
        a.sort_unstable();
        b.sort_unstable();
        let (cs, rnaive) = build_region(n);
        let rprobe = Rect::rect2(5_000.0, 5_000.0, 5_200.0, 5_200.0);
        let mut ra: Vec<u64> = cs.overlapping(SYSTEM, rprobe).iter().map(|e| e.payload).collect();
        let mut rb = rnaive.overlapping_regions(SYSTEM, rprobe);
        ra.sort_unstable();
        rb.sort_unstable();
        table_row(&[n.to_string(), (a == b).to_string(), (ra == rb).to_string()]);
    }

    let mut group = c.benchmark_group("A1_interval_overlap");
    for &n in &sizes {
        let (idx, naive) = build_interval(n);
        group.bench_with_input(BenchmarkId::new("interval_tree", n), &n, |b, _| {
            b.iter(|| idx.overlapping(DOMAIN, probe).len());
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            b.iter(|| naive.overlapping_intervals(DOMAIN, probe).len());
        });
    }
    group.finish();

    let rprobe = Rect::rect2(5_000.0, 5_000.0, 5_200.0, 5_200.0);
    let mut rgroup = c.benchmark_group("A1_region_overlap");
    for &n in &sizes {
        let (cs, naive) = build_region(n);
        rgroup.bench_with_input(BenchmarkId::new("r_tree", n), &n, |b, _| {
            b.iter(|| cs.overlapping(SYSTEM, rprobe).len());
        });
        rgroup.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            b.iter(|| naive.overlapping_regions(SYSTEM, rprobe).len());
        });
    }
    rgroup.finish();
}

/// Whole-query ablation: the pipelined executor (seeding from persistent inverted
/// indexes, verifying candidates by probes) against the scan-and-intersect reference.
fn bench_query_pipeline(c: &mut Criterion) {
    let sizes = [50usize, 100, 200];

    table_header(
        "A1: pipelined vs. scan-all executor (correctness)",
        &["images", "annotations", "results_match"],
    );

    let mut group = c.benchmark_group("A1_query_execution");
    for &images in &sizes {
        let workload = bench::neuro_workload(images, 8, 2008);
        let sys = &workload.system;
        let query = Query::new(Target::ConnectionGraphs)
            .with_phrase("protein TP53")
            .with_ontology(OntologyFilter::CitesTerm(workload.concepts.deep_cerebellar_nuclei));

        let fast = Executor::new(sys);
        let slow = ReferenceExecutor::new(sys);
        table_row(&[
            images.to_string(),
            sys.annotation_count().to_string(),
            (fast.run(&query) == slow.run(&query)).to_string(),
        ]);

        group.bench_with_input(BenchmarkId::new("pipelined", images), &images, |b, _| {
            b.iter(|| fast.run(&query));
        });
        group.bench_with_input(BenchmarkId::new("scan_all", images), &images, |b, _| {
            b.iter(|| slow.run(&query));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation, bench_query_pipeline);
criterion_main!(benches);
