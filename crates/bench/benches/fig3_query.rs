//! Experiment F3 — Figure 3: the query-tab "search, browse, explore" loop.
//!
//! Measures a graph query returning connection subgraphs, then correlated-data viewing
//! (annotations on a result object), then ontology-term expansion. The reproducible
//! shape is that query latency scales with the candidate set the driving subquery
//! produces, and exploration from a result node is cheap (local a-graph traversal).

use criterion::{criterion_group, criterion_main, Criterion};
use graphitti_query::{CandidateRepr, Executor, OntologyFilter, Query, Target};

fn bench_fig3(c: &mut Criterion) {
    let workload = bench::neuro_workload(100, 8, 2008);
    let sys = &workload.system;
    let exec = Executor::new(sys);
    let dcn = workload.concepts.deep_cerebellar_nuclei;

    let mut group = c.benchmark_group("F3_query_workflow");

    group.bench_function("connection_graph_query", |b| {
        let q = Query::new(Target::ConnectionGraphs)
            .with_phrase("protein TP53")
            .with_ontology(OntologyFilter::CitesTerm(dcn));
        b.iter(|| exec.run(&q));
    });

    // Ablation row: the same query forced onto the legacy sorted-`Vec` candidate
    // representation, so the bitmap kernels' contribution stays attributable.
    group.bench_function("connection_graph_query_sortedvec", |b| {
        let exec_vec = Executor::new(sys).with_candidate_repr(CandidateRepr::SortedVec);
        let q = Query::new(Target::ConnectionGraphs)
            .with_phrase("protein TP53")
            .with_ontology(OntologyFilter::CitesTerm(dcn));
        b.iter(|| exec_vec.run(&q));
    });

    // correlated-data viewing from the first result object
    let q = Query::new(Target::ConnectionGraphs).with_ontology(OntologyFilter::CitesTerm(dcn));
    let result = exec.run(&q);
    if let Some(&obj) = result.objects.first() {
        group.bench_function("correlated_data_view", |b| {
            b.iter(|| sys.annotations_of_object(obj));
        });
    }

    // ontology-term expansion
    group.bench_function("ontology_term_expansion", |b| {
        b.iter(|| sys.ontology().ci(workload.concepts.brain));
    });

    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
