//! Experiment R1 — overload resilience of the serving layer.
//!
//! Clients drive the worker pool at **2× its admission capacity**: each client
//! submits bursts of `2 × queue_capacity` deadline-budgeted queries and then
//! redeems the admitted tickets.  Two queue configurations face the same
//! pressure:
//!
//! * **bounded** — `ServiceConfig::with_queue_capacity(K)`: admission control
//!   sheds the excess at the door ([`ServiceError::Overloaded`]), so admitted
//!   queries see a queue of at most `K` and their latency stays bounded;
//! * **unbounded** — the pre-resilience behaviour: everything is admitted, the
//!   queue grows with the burst, and queries spend their deadline waiting in
//!   line (shed `0`, `deadline_misses` high, tail latency collapsed).
//!
//! The comparison metric is **goodput** — completed (served-before-deadline)
//! queries per second — not raw qps: a shed query costs its submitter one cheap
//! typed error, a deadline-missed query costs a queue slot and a dequeue.  A
//! third row exercises shard-degraded serving: a 4-shard scatter with one shard
//! down and `allow_partial`, where goodput is sustained by marked-subset
//! answers (`degraded` counts them).
//!
//! Rows carry `goodput_qps`, `shed`, `deadline_misses` and `degraded` beyond the
//! usual throughput fields; `bench_summary` routes them (they carry `qps`) into
//! `BENCH_throughput.json`.  Pass `--quick` (as CI does) for a smoke run.
//!
//! [`ServiceError::Overloaded`]: graphitti_query::ServiceError::Overloaded

use std::time::{Duration, Instant};

use bench::{influenza_system, percentile, table_header, table_row};
use graphitti_core::{Graphitti, ShardedSystem};
use graphitti_query::{
    ChaosConfig, GraphConstraint, Query, QueryBudget, QueryService, RetryPolicy, ServiceConfig,
    ShardedQueryService, ShardedServiceConfig, Target,
};

/// One measured configuration's outcome.
struct Measurement {
    name: String,
    workers: usize,
    shards: usize,
    clients: usize,
    /// Queries attempted (submitted + shed-at-the-door).
    queries: usize,
    completed: u64,
    shed: u64,
    deadline_misses: u64,
    degraded: u64,
    goodput_qps: f64,
    mean_ns: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
}

fn protease_mix() -> Vec<Query> {
    vec![
        Query::new(Target::Referents)
            .with_phrase("protease")
            .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 4, max_gap: 2_000 }),
        Query::new(Target::AnnotationContents).with_phrase("protease cleavage"),
        Query::new(Target::ConnectionGraphs).with_phrase("protease"),
    ]
}

/// The client-side pressure both queue configurations face: `clients` threads
/// each submit `bursts` bursts of `burst` queries under `deadline`.
#[derive(Clone, Copy)]
struct Load {
    burst: usize,
    clients: usize,
    bursts: usize,
    deadline: Duration,
}

/// Drive the pool at 2× the *bounded* configuration's admission capacity: every
/// client submits `2 × capacity`-query bursts under a per-query deadline, then
/// redeems what was admitted.  `capacity == usize::MAX` is the unbounded
/// (pre-resilience) queue facing the same pressure.
fn measure_pool(
    sys: &Graphitti,
    mix: &[Query],
    label: &str,
    capacity: usize,
    load: Load,
) -> Measurement {
    let Load { burst, clients, bursts, deadline } = load;
    let workers = 2usize;
    let service = QueryService::new(
        sys.snapshot(),
        ServiceConfig::default()
            .with_workers(workers)
            .with_queue_capacity(capacity)
            .with_cache_capacity(0),
    );
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let service = &service;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    for round in 0..bursts {
                        let mut tickets = Vec::with_capacity(burst);
                        for i in 0..burst {
                            let q = mix[(i + client + round) % mix.len()].clone();
                            let budget = QueryBudget::unbounded().with_deadline(deadline);
                            let t0 = Instant::now();
                            if let Ok(ticket) = service.submit_with_budget(q, budget) {
                                tickets.push((t0, ticket));
                            }
                        }
                        for (t0, ticket) in tickets {
                            if ticket.wait().is_ok() {
                                lat.push(t0.elapsed().as_nanos() as u64);
                            }
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread panicked"));
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let m = service.metrics();
    assert_eq!(m.shed + m.completed + m.failed, m.submitted, "metric consistency: {m:?}");
    latencies.sort_unstable();
    let mean_ns = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    Measurement {
        name: format!("R1_overload/q2_protease/queue={label}"),
        workers,
        shards: 0,
        clients,
        queries: (clients * bursts * burst),
        completed: m.completed,
        shed: m.shed,
        deadline_misses: m.deadline_misses,
        degraded: 0,
        goodput_qps: m.completed as f64 / wall,
        mean_ns,
        p50_ns: percentile(&latencies, 50.0),
        p95_ns: percentile(&latencies, 95.0),
        p99_ns: percentile(&latencies, 99.0),
    }
}

/// Shard-degraded goodput: a 4-shard scatter with one shard permanently down,
/// served under `allow_partial` — every answer is a marked subset, throughput is
/// sustained instead of collapsing into per-query retry storms.
fn measure_degraded(sys: &Graphitti, mix: &[Query], clients: usize, rounds: usize) -> Measurement {
    let shards = 4usize;
    let down = shards - 1;
    let study = sys.study_snapshot();
    let sharded =
        ShardedSystem::from_study_snapshot(&study, shards).expect("sharded replay of the system");
    let service = ShardedQueryService::new(
        sharded.capture_cut(),
        ShardedServiceConfig::default()
            .with_cache_capacity(0)
            .with_retry(
                RetryPolicy::default()
                    .with_max_attempts(2)
                    .with_base_delay(Duration::from_micros(200))
                    .with_max_delay(Duration::from_millis(2)),
            )
            .with_chaos(ChaosConfig::new().with_shard_outage(down, u64::MAX)),
    );
    let budget = QueryBudget::unbounded().with_allow_partial(true);
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let service = &service;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    for round in 0..rounds {
                        for i in 0..mix.len() {
                            let q = &mix[(i + client + round) % mix.len()];
                            let t0 = Instant::now();
                            let r = service
                                .run_with_budget(q, budget)
                                .expect("allow_partial rides out the outage");
                            assert!(r.is_degraded(), "the outage must mark every answer");
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread panicked"));
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let m = service.metrics();
    assert_eq!(m.completed, m.degraded, "every served answer is degraded: {m:?}");
    latencies.sort_unstable();
    let mean_ns = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    Measurement {
        name: format!("R1_overload/q2_protease/shards={shards}/outage=1"),
        workers: 0,
        shards,
        clients,
        queries: latencies.len(),
        completed: m.completed,
        shed: 0,
        deadline_misses: m.deadline_misses,
        degraded: m.degraded,
        goodput_qps: m.completed as f64 / wall,
        mean_ns,
        p50_ns: percentile(&latencies, 50.0),
        p95_ns: percentile(&latencies, 95.0),
        p99_ns: percentile(&latencies, 99.0),
    }
}

fn write_json(measurements: &[Measurement], cores: usize) {
    let entries = jsonlite::Json::Arr(
        measurements
            .iter()
            .map(|m| {
                jsonlite::Json::obj([
                    ("bench", jsonlite::Json::str("overload")),
                    ("name", jsonlite::Json::str(m.name.clone())),
                    ("ns_per_iter", jsonlite::Json::Num(m.mean_ns)),
                    ("qps", jsonlite::Json::Num(m.goodput_qps)),
                    ("goodput_qps", jsonlite::Json::Num(m.goodput_qps)),
                    ("completed", jsonlite::Json::u64(m.completed)),
                    ("shed", jsonlite::Json::u64(m.shed)),
                    ("deadline_misses", jsonlite::Json::u64(m.deadline_misses)),
                    ("degraded", jsonlite::Json::u64(m.degraded)),
                    ("p50_ns", jsonlite::Json::u64(m.p50_ns)),
                    ("p95_ns", jsonlite::Json::u64(m.p95_ns)),
                    ("p99_ns", jsonlite::Json::u64(m.p99_ns)),
                    ("clients", jsonlite::Json::u64(m.clients as u64)),
                    ("workers", jsonlite::Json::u64(m.workers as u64)),
                    ("shards", jsonlite::Json::u64(m.shards as u64)),
                    ("cache", jsonlite::Json::u64(0)),
                    ("queries", jsonlite::Json::u64(m.queries as u64)),
                    ("cores", jsonlite::Json::u64(cores as u64)),
                ])
            })
            .collect(),
    );
    let path = std::env::var("BENCH_JSON").map(std::path::PathBuf::from).unwrap_or_else(|_| {
        let dir = criterion::workspace_root().join("target").join("criterion-json");
        let _ = std::fs::create_dir_all(&dir);
        dir.join("overload.json")
    });
    if let Err(e) = std::fs::write(&path, entries.pretty() + "\n") {
        eprintln!("overload: cannot write {}: {e}", path.display());
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let annotations = if quick { 400 } else { 1_500 };
    let sys = influenza_system(annotations, 2008);
    let mix = protease_mix();

    let capacity = if quick { 4 } else { 8 };
    let clients = if quick { 2 } else { 4 };
    let bursts = if quick { 4 } else { 10 };
    let burst = 2 * capacity; // 2× admission capacity per burst, per client
                              // Tight enough that a burst sitting in an unbounded queue overruns it: the
                              // whole point of admission control is refusing work that would otherwise
                              // expire in line.
    let deadline = if quick { Duration::from_millis(10) } else { Duration::from_millis(25) };

    table_header(
        &format!("R1: overload resilience ({cores} core(s))"),
        &["config", "goodput", "shed", "dl_miss", "degraded", "p50", "p99"],
    );

    let load = Load { burst, clients, bursts, deadline };
    let bounded = measure_pool(&sys, &mix, &format!("bounded({capacity})"), capacity, load);
    let unbounded = measure_pool(&sys, &mix, "unbounded", usize::MAX, load);
    let degraded = measure_degraded(&sys, &mix, clients, if quick { 10 } else { 40 });

    // The resilience story in two asserts: admission control actually shed under
    // 2× pressure, and the unbounded queue admitted everything (its losses, if
    // any, are deadline misses — queue-time, not shed-at-the-door).
    assert!(bounded.shed > 0, "2x pressure must trip admission control");
    assert_eq!(unbounded.shed, 0, "the unbounded queue never sheds");

    let measurements = vec![bounded, unbounded, degraded];
    for m in &measurements {
        table_row(&[
            m.name.clone(),
            format!("{:.0}/s", m.goodput_qps),
            m.shed.to_string(),
            m.deadline_misses.to_string(),
            m.degraded.to_string(),
            format!("{:.1}µs", m.p50_ns as f64 / 1_000.0),
            format!("{:.1}µs", m.p99_ns as f64 / 1_000.0),
        ]);
    }
    write_json(&measurements, cores);
    println!("\noverload: wrote {} measurements", measurements.len());
}
