//! Experiment B1 — Graphitti vs. the relational-annotation baseline.
//!
//! Compares answering the protease query (Q2) on Graphitti (a-graph + interval trees)
//! against the flat relational-annotation store (scans + joins, no a-graph, no
//! substructure index). Both return the same objects; the benchmark measures the cost
//! difference. Reproducible shape: Graphitti's indexed evaluation beats the
//! scan-and-join baseline, by a margin that grows with the workload.

use baseline::RelationalAnnotationStore;
use bench::{influenza_system, table_header, table_row};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphitti_core::Marker;
use graphitti_query::{Executor, GraphConstraint, Query, Target};

/// Mirror a Graphitti influenza system into the relational baseline so both answer the
/// same query over the same logical data.
fn mirror_to_relational(sys: &graphitti_core::Graphitti) -> RelationalAnnotationStore {
    let mut rel = RelationalAnnotationStore::new();
    for ann in sys.annotations() {
        let comment = ann.comment().unwrap_or("");
        let title = ann.title().unwrap_or("");
        let creator = ann.creator().unwrap_or("");
        let mut referents = Vec::new();
        for &rid in &ann.referents {
            if let Some(r) = sys.referent(rid) {
                if let Marker::Interval(iv) = r.marker {
                    referents.push((r.object.0, iv.start, iv.end));
                }
            }
        }
        let terms: Vec<u64> = ann.terms.iter().map(|t| t.0 as u64).collect();
        rel.insert(title, comment, creator, &referents, &terms);
    }
    rel
}

fn bench_baseline(c: &mut Criterion) {
    let sizes = [1_000usize, 5_000];

    table_header(
        "B1: Graphitti vs. relational baseline (same answers)",
        &["annotations", "graphitti_objects", "baseline_objects", "agree"],
    );

    let mut group = c.benchmark_group("B1_protease_query");
    for &a in &sizes {
        let sys = influenza_system(a, 2008);
        let rel = mirror_to_relational(&sys);

        let query = Query::new(Target::Referents)
            .with_phrase("protease")
            .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 4, max_gap: 2_000 });
        let mut g_objs: Vec<u64> =
            Executor::new(&sys).run(&query).objects.iter().map(|o| o.0).collect();
        let mut b_objs: Vec<u64> = rel.objects_with_consecutive_intervals("protease", 4, 2_000);
        g_objs.sort_unstable();
        b_objs.sort_unstable();
        table_row(&[
            a.to_string(),
            g_objs.len().to_string(),
            b_objs.len().to_string(),
            (g_objs == b_objs).to_string(),
        ]);

        group.bench_with_input(BenchmarkId::new("graphitti", a), &a, |bch, _| {
            let exec = Executor::new(&sys);
            bch.iter(|| exec.run(&query));
        });
        group.bench_with_input(BenchmarkId::new("relational_baseline", a), &a, |bch, _| {
            bch.iter(|| rel.objects_with_consecutive_intervals("protease", 4, 2_000));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
