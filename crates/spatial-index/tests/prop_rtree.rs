//! Property tests: the R-tree must agree with a brute-force scan and preserve its
//! structural invariants under arbitrary insertion orders and removals.

use proptest::prelude::*;
use spatial_index::{RTree, Rect};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..500.0, 0.0f64..500.0, 1.0f64..40.0, 1.0f64..40.0)
        .prop_map(|(x, y, w, h)| Rect::rect2(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rect_overlap_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.if_overlap(&b), b.if_overlap(&a));
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
        } else {
            prop_assert!(!a.if_overlap(&b));
        }
        let u = a.union(&b);
        prop_assert!(u.contains(&a) && u.contains(&b));
    }

    #[test]
    fn rtree_overlap_matches_bruteforce(
        rects in prop::collection::vec(arb_rect(), 0..150),
        query in arb_rect(),
    ) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i as u64);
        }
        tree.check_invariants().unwrap();
        let mut expected: Vec<u64> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.if_overlap(&query))
            .map(|(i, _)| i as u64)
            .collect();
        let mut got: Vec<u64> = tree.overlapping(query).iter().map(|e| e.payload).collect();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rtree_nearest_matches_bruteforce(
        rects in prop::collection::vec(arb_rect(), 1..100),
        px in 0.0f64..600.0,
        py in 0.0f64..600.0,
    ) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i as u64);
        }
        let p = [px, py, 0.0];
        let expected = rects
            .iter()
            .map(|r| r.distance2_to_point(p))
            .fold(f64::INFINITY, f64::min);
        let got = tree.nearest(p).unwrap().rect.distance2_to_point(p);
        prop_assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn bulk_load_matches_bruteforce(
        rects in prop::collection::vec(arb_rect(), 0..200),
        query in arb_rect(),
    ) {
        let entries: Vec<(Rect, u64)> =
            rects.iter().enumerate().map(|(i, r)| (*r, i as u64)).collect();
        let tree = RTree::bulk_load(entries);
        prop_assert_eq!(tree.len(), rects.len());
        let mut expected: Vec<u64> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.if_overlap(&query))
            .map(|(i, _)| i as u64)
            .collect();
        let mut got: Vec<u64> = tree.overlapping(query).iter().map(|e| e.payload).collect();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn k_nearest_matches_bruteforce(
        rects in prop::collection::vec(arb_rect(), 1..100),
        px in 0.0f64..600.0,
        py in 0.0f64..600.0,
        k in 1usize..10,
    ) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i as u64);
        }
        let p = [px, py, 0.0];
        let mut dists: Vec<f64> = rects.iter().map(|r| r.distance2_to_point(p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let knn = tree.k_nearest(p, k);
        prop_assert_eq!(knn.len(), k.min(rects.len()));
        for (i, e) in knn.iter().enumerate() {
            prop_assert!((e.rect.distance2_to_point(p) - dists[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn rtree_remove_keeps_consistency(
        rects in prop::collection::vec(arb_rect(), 1..80),
        remove_idx in 0usize..80,
        query in arb_rect(),
    ) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i as u64);
        }
        let idx = remove_idx % rects.len();
        prop_assert!(tree.remove(rects[idx], idx as u64));
        tree.check_invariants().unwrap();
        prop_assert_eq!(tree.len(), rects.len() - 1);
        let mut expected: Vec<u64> = rects
            .iter()
            .enumerate()
            .filter(|(i, r)| *i != idx && r.if_overlap(&query))
            .map(|(i, _)| i as u64)
            .collect();
        let mut got: Vec<u64> = tree.overlapping(query).iter().map(|e| e.payload).collect();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }
}
