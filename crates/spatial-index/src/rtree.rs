//! A quadratic-split R-tree.
//!
//! The classic Guttman R-tree: leaves hold up to `MAX_ENTRIES` spatial entries, inner
//! nodes hold up to `MAX_ENTRIES` child boxes; insertion descends by least enlargement
//! and splits with the quadratic seed-picking heuristic.  Deletion reinserts orphaned
//! entries.  This is a faithful, dependency-free implementation sufficient for region
//! referents at the scale of the paper's neuroscience workloads (10⁴–10⁶ regions).

use serde::{Deserialize, Serialize};

use crate::rect::Rect;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum entries per node after a split.
const MIN_ENTRIES: usize = 3;

/// One indexed spatial entry: a box plus its opaque payload (Graphitti referent id).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialEntry {
    /// The indexed region.
    pub rect: Rect,
    /// Caller-supplied payload.
    pub payload: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf { entries: Vec<SpatialEntry> },
    Inner { children: Vec<(Rect, Box<Node>)> },
}

impl Node {
    fn bounding(&self) -> Option<Rect> {
        match self {
            Node::Leaf { entries } => entries.iter().map(|e| e.rect).reduce(|a, b| a.union(&b)),
            Node::Inner { children } => children.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b)),
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Inner { children } => children.len(),
        }
    }
}

/// A quadratic-split R-tree over one coordinate system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RTree {
    root: Node,
    len: usize,
}

impl Default for RTree {
    fn default() -> Self {
        RTree { root: Node::Leaf { entries: Vec::new() }, len: 0 }
    }
}

impl RTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        RTree::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bulk-load a tree from a batch of entries using the Sort-Tile-Recursive (STR)
    /// packing algorithm, which produces a better-packed, lower-overlap tree than
    /// repeated insertion. Preferred when all referents for a coordinate system are known
    /// up front.
    pub fn bulk_load(entries: Vec<(Rect, u64)>) -> RTree {
        let items: Vec<SpatialEntry> =
            entries.into_iter().map(|(rect, payload)| SpatialEntry { rect, payload }).collect();
        let len = items.len();
        if items.len() <= MAX_ENTRIES {
            return RTree { root: Node::Leaf { entries: items }, len };
        }

        // 1. pack leaves via STR.
        let leaf_count = items.len().div_ceil(MAX_ENTRIES);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = slice_count * MAX_ENTRIES;

        let mut by_x = items;
        by_x.sort_by(|a, b| {
            a.rect.center()[0].partial_cmp(&b.rect.center()[0]).unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut leaves: Vec<Node> = Vec::new();
        for slice in by_x.chunks(per_slice.max(1)) {
            let mut slice_vec = slice.to_vec();
            slice_vec.sort_by(|a, b| {
                a.rect.center()[1]
                    .partial_cmp(&b.rect.center()[1])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for leaf_items in slice_vec.chunks(MAX_ENTRIES) {
                leaves.push(Node::Leaf { entries: leaf_items.to_vec() });
            }
        }

        // 2. build inner levels bottom-up.
        let mut level: Vec<Node> = leaves;
        while level.len() > 1 {
            let mut next: Vec<Node> = Vec::new();
            for group in level.chunks(MAX_ENTRIES) {
                let children: Vec<(Rect, Box<Node>)> = group
                    .iter()
                    .map(|n| (n.bounding().expect("non-empty packed node"), Box::new(n.clone())))
                    .collect();
                next.push(Node::Inner { children });
            }
            level = next;
        }
        let root = level.into_iter().next().unwrap_or(Node::Leaf { entries: Vec::new() });
        RTree { root, len }
    }

    /// Insert a region with its payload.
    pub fn insert(&mut self, rect: Rect, payload: u64) {
        let entry = SpatialEntry { rect, payload };
        if let Some((left, right)) = Self::insert_rec(&mut self.root, entry) {
            // root split: grow the tree by one level
            let old_root = std::mem::replace(&mut self.root, Node::Leaf { entries: Vec::new() });
            drop(old_root);
            let lb = left.bounding().expect("split node is non-empty");
            let rb = right.bounding().expect("split node is non-empty");
            self.root = Node::Inner { children: vec![(lb, Box::new(left)), (rb, Box::new(right))] };
        }
        self.len += 1;
    }

    fn insert_rec(node: &mut Node, entry: SpatialEntry) -> Option<(Node, Node)> {
        match node {
            Node::Leaf { entries } => {
                entries.push(entry);
                if entries.len() > MAX_ENTRIES {
                    Some(Self::split_leaf(entries))
                } else {
                    None
                }
            }
            Node::Inner { children } => {
                // choose the child needing least enlargement (ties by smaller measure)
                let idx = children
                    .iter()
                    .enumerate()
                    .min_by(|(_, (ra, _)), (_, (rb, _))| {
                        let ea = ra.enlargement(&entry.rect);
                        let eb = rb.enlargement(&entry.rect);
                        ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal).then(
                            ra.measure()
                                .partial_cmp(&rb.measure())
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                    })
                    .map(|(i, _)| i)
                    .expect("inner node has at least one child");
                let split = Self::insert_rec(&mut children[idx].1, entry);
                if let Some((a, b)) = split {
                    // the child was emptied by the split; replace it with the two halves
                    let ab = a.bounding().expect("non-empty");
                    let bb = b.bounding().expect("non-empty");
                    children[idx] = (ab, Box::new(a));
                    children.push((bb, Box::new(b)));
                    if children.len() > MAX_ENTRIES {
                        return Some(Self::split_inner(children));
                    }
                } else {
                    // refresh the child's bounding box
                    children[idx].0 =
                        children[idx].1.bounding().expect("child node is non-empty after insert");
                }
                None
            }
        }
    }

    fn split_leaf(entries: &mut Vec<SpatialEntry>) -> (Node, Node) {
        let items = std::mem::take(entries);
        let rects: Vec<Rect> = items.iter().map(|e| e.rect).collect();
        let (ga, gb) = Self::quadratic_partition(&rects);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            if ga.contains(&i) {
                a.push(item);
            } else {
                debug_assert!(gb.contains(&i));
                b.push(item);
            }
        }
        (Node::Leaf { entries: a }, Node::Leaf { entries: b })
    }

    fn split_inner(children: &mut Vec<(Rect, Box<Node>)>) -> (Node, Node) {
        let items = std::mem::take(children);
        let rects: Vec<Rect> = items.iter().map(|(r, _)| *r).collect();
        let (ga, _gb) = Self::quadratic_partition(&rects);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            if ga.contains(&i) {
                a.push(item);
            } else {
                b.push(item);
            }
        }
        (Node::Inner { children: a }, Node::Inner { children: b })
    }

    /// Guttman's quadratic split: pick the two rectangles that would waste the most
    /// area if grouped together as seeds, then assign the rest by least enlargement,
    /// honouring the minimum fill factor.
    fn quadratic_partition(rects: &[Rect]) -> (Vec<usize>, Vec<usize>) {
        let n = rects.len();
        debug_assert!(n >= 2);
        let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::MIN);
        for i in 0..n {
            for j in (i + 1)..n {
                let waste =
                    rects[i].union(&rects[j]).measure() - rects[i].measure() - rects[j].measure();
                if waste > worst {
                    worst = waste;
                    seed_a = i;
                    seed_b = j;
                }
            }
        }
        let mut group_a = vec![seed_a];
        let mut group_b = vec![seed_b];
        let mut box_a = rects[seed_a];
        let mut box_b = rects[seed_b];
        let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

        while let Some(&next) = remaining.first() {
            // honour minimum fill
            let left = remaining.len();
            if group_a.len() + left <= MIN_ENTRIES {
                for &i in &remaining {
                    group_a.push(i);
                    box_a = box_a.union(&rects[i]);
                }
                break;
            }
            if group_b.len() + left <= MIN_ENTRIES {
                for &i in &remaining {
                    group_b.push(i);
                    box_b = box_b.union(&rects[i]);
                }
                break;
            }
            // pick the rect with the greatest preference difference
            let mut pick = next;
            let mut best_diff = f64::MIN;
            for &i in &remaining {
                let da = box_a.enlargement(&rects[i]);
                let db = box_b.enlargement(&rects[i]);
                let diff = (da - db).abs();
                if diff > best_diff {
                    best_diff = diff;
                    pick = i;
                }
            }
            remaining.retain(|&i| i != pick);
            let da = box_a.enlargement(&rects[pick]);
            let db = box_b.enlargement(&rects[pick]);
            if da < db || (da == db && group_a.len() <= group_b.len()) {
                group_a.push(pick);
                box_a = box_a.union(&rects[pick]);
            } else {
                group_b.push(pick);
                box_b = box_b.union(&rects[pick]);
            }
        }
        (group_a, group_b)
    }

    /// Remove one entry matching `(rect, payload)` exactly. Returns true when removed.
    pub fn remove(&mut self, rect: Rect, payload: u64) -> bool {
        // Simple and robust strategy: collect all entries, drop the first match, and
        // rebuild.  Removal is rare in annotation workloads (annotations are mostly
        // append-only), so clarity wins over an orphan-reinsertion implementation.
        let mut all = self.entries();
        let before = all.len();
        let mut removed = false;
        all.retain(|e| {
            if !removed && e.rect == rect && e.payload == payload {
                removed = true;
                false
            } else {
                true
            }
        });
        if !removed {
            return false;
        }
        let mut rebuilt = RTree::new();
        for e in all {
            rebuilt.insert(e.rect, e.payload);
        }
        debug_assert_eq!(rebuilt.len() + 1, before);
        *self = rebuilt;
        true
    }

    /// All entries whose region overlaps `query`, in ascending payload order.
    pub fn overlapping(&self, query: Rect) -> Vec<SpatialEntry> {
        let mut out = Vec::new();
        Self::search(&self.root, &query, &mut out);
        out.sort_by_key(|e| e.payload);
        out
    }

    fn search(node: &Node, query: &Rect, out: &mut Vec<SpatialEntry>) {
        match node {
            Node::Leaf { entries } => {
                for e in entries {
                    if e.rect.if_overlap(query) {
                        out.push(*e);
                    }
                }
            }
            Node::Inner { children } => {
                for (bb, child) in children {
                    if bb.if_overlap(query) {
                        Self::search(child, query, out);
                    }
                }
            }
        }
    }

    /// All entries fully contained in `query`.
    pub fn contained_in(&self, query: Rect) -> Vec<SpatialEntry> {
        self.overlapping(query).into_iter().filter(|e| query.contains(&e.rect)).collect()
    }

    /// All entries containing the point.
    pub fn containing_point(&self, p: [f64; 3]) -> Vec<SpatialEntry> {
        self.overlapping(Rect::new(p, p)).into_iter().filter(|e| e.rect.contains_point(p)).collect()
    }

    /// The entry whose region is nearest to the point (by box distance), if any.
    pub fn nearest(&self, p: [f64; 3]) -> Option<SpatialEntry> {
        // branch-and-bound over the tree
        fn walk(node: &Node, p: [f64; 3], best: &mut Option<(f64, SpatialEntry)>) {
            match node {
                Node::Leaf { entries } => {
                    for e in entries {
                        let d = e.rect.distance2_to_point(p);
                        let better = match best {
                            None => true,
                            Some((bd, be)) => d < *bd || (d == *bd && e.payload < be.payload),
                        };
                        if better {
                            *best = Some((d, *e));
                        }
                    }
                }
                Node::Inner { children } => {
                    let mut order: Vec<&(Rect, Box<Node>)> = children.iter().collect();
                    order.sort_by(|a, b| {
                        a.0.distance2_to_point(p)
                            .partial_cmp(&b.0.distance2_to_point(p))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    for (bb, child) in order {
                        if let Some((bd, _)) = best {
                            if bb.distance2_to_point(p) > *bd {
                                continue;
                            }
                        }
                        walk(child, p, best);
                    }
                }
            }
        }
        let mut best = None;
        walk(&self.root, p, &mut best);
        best.map(|(_, e)| e)
    }

    /// The `k` entries nearest to a point, by box distance, ascending. Ties broken by
    /// payload. Returns fewer than `k` when the tree holds fewer entries.
    pub fn k_nearest(&self, p: [f64; 3], k: usize) -> Vec<SpatialEntry> {
        if k == 0 {
            return Vec::new();
        }
        // Collect all with distances and partially sort — simple and correct; the tree's
        // branch-and-bound `nearest` covers the common k=1 case, this covers general k.
        let mut scored: Vec<(f64, SpatialEntry)> =
            self.entries().into_iter().map(|e| (e.rect.distance2_to_point(p), e)).collect();
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.payload.cmp(&b.1.payload))
        });
        scored.truncate(k);
        scored.into_iter().map(|(_, e)| e).collect()
    }

    /// All entries whose box lies within squared distance `radius2` of the point.
    pub fn within_radius(&self, p: [f64; 3], radius2: f64) -> Vec<SpatialEntry> {
        let mut out: Vec<SpatialEntry> = self
            .entries()
            .into_iter()
            .filter(|e| e.rect.distance2_to_point(p) <= radius2)
            .collect();
        out.sort_by_key(|e| e.payload);
        out
    }

    /// Every stored entry (ascending payload order).
    pub fn entries(&self) -> Vec<SpatialEntry> {
        fn collect(node: &Node, out: &mut Vec<SpatialEntry>) {
            match node {
                Node::Leaf { entries } => out.extend(entries.iter().copied()),
                Node::Inner { children } => {
                    for (_, c) in children {
                        collect(c, out);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(self.len);
        collect(&self.root, &mut out);
        out.sort_by_key(|e| e.payload);
        out
    }

    /// Tree height (1 for a single leaf).
    pub fn height(&self) -> usize {
        fn h(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Inner { children } => {
                    1 + children.iter().map(|(_, c)| h(c)).max().unwrap_or(0)
                }
            }
        }
        h(&self.root)
    }

    /// Check structural invariants (fill factors and bounding-box correctness); used by
    /// tests. Returns an error message describing the first violation found.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        fn check(node: &Node, is_root: bool) -> std::result::Result<(), String> {
            match node {
                Node::Leaf { entries } => {
                    if !is_root && entries.len() < MIN_ENTRIES {
                        return Err(format!("leaf underfilled: {}", entries.len()));
                    }
                    if entries.len() > MAX_ENTRIES {
                        return Err(format!("leaf overfilled: {}", entries.len()));
                    }
                    Ok(())
                }
                Node::Inner { children } => {
                    if children.is_empty() {
                        return Err("empty inner node".into());
                    }
                    if children.len() > MAX_ENTRIES {
                        return Err(format!("inner overfilled: {}", children.len()));
                    }
                    for (bb, child) in children {
                        let actual = child.bounding().ok_or("empty child")?;
                        if !bb.contains(&actual) {
                            return Err(format!("stale bounding box {bb} vs {actual}"));
                        }
                        check(child, false)?;
                    }
                    Ok(())
                }
            }
        }
        if self.root.len() == 0 && self.len != 0 {
            return Err("length mismatch".into());
        }
        check(&self.root, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_tree(n: u32) -> RTree {
        // n x n unit squares at integer offsets
        let mut t = RTree::new();
        let mut id = 0u64;
        for x in 0..n {
            for y in 0..n {
                t.insert(Rect::rect2(x as f64, y as f64, x as f64 + 1.0, y as f64 + 1.0), id);
                id += 1;
            }
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert!(t.overlapping(Rect::rect2(0.0, 0.0, 10.0, 10.0)).is_empty());
        assert!(t.nearest([0.0, 0.0, 0.0]).is_none());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn overlap_query_on_grid() {
        let t = grid_tree(10);
        assert_eq!(t.len(), 100);
        t.check_invariants().unwrap();
        assert!(t.height() > 1);
        // query covering a 2x2 block strictly inside cells (1..3) x (1..3)
        let hits = t.overlapping(Rect::rect2(1.2, 1.2, 2.8, 2.8));
        assert_eq!(hits.len(), 4);
        // touching boundaries: a thin query at x == 3.0 touches two columns
        let hits = t.overlapping(Rect::rect2(3.0, 0.1, 3.0, 0.2));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn containment_and_point_queries() {
        let t = grid_tree(5);
        let contained = t.contained_in(Rect::rect2(0.0, 0.0, 2.0, 2.0));
        assert_eq!(contained.len(), 4);
        let at = t.containing_point([2.5, 2.5, 0.0]);
        assert_eq!(at.len(), 1);
        // a lattice point touches 4 cells
        let corner = t.containing_point([2.0, 2.0, 0.0]);
        assert_eq!(corner.len(), 4);
    }

    #[test]
    fn nearest_neighbour() {
        let t = grid_tree(4);
        let n = t.nearest([10.0, 10.0, 0.0]).unwrap();
        // nearest cell is the top-right one [3,4]x[3,4]
        assert!(n.rect.contains_point([4.0, 4.0, 0.0]));
        let inside = t.nearest([0.5, 0.5, 0.0]).unwrap();
        assert_eq!(inside.payload, 0);
    }

    #[test]
    fn k_nearest_and_radius() {
        let t = grid_tree(5);
        let knn = t.k_nearest([0.5, 0.5, 0.0], 3);
        assert_eq!(knn.len(), 3);
        // the containing cell (payload 0) is nearest (distance 0)
        assert_eq!(knn[0].payload, 0);
        // k larger than the population returns everything
        assert_eq!(t.k_nearest([0.0, 0.0, 0.0], 1000).len(), 25);
        assert!(t.k_nearest([0.0, 0.0, 0.0], 0).is_empty());

        // within_radius: cells touching a small disc around the origin
        let near = t.within_radius([0.5, 0.5, 0.0], 0.0);
        assert_eq!(near.len(), 1); // only the containing cell has distance 0
        let wider = t.within_radius([0.5, 0.5, 0.0], 4.0);
        assert!(wider.len() > 1);
    }

    #[test]
    fn duplicates_allowed() {
        let mut t = RTree::new();
        let r = Rect::rect2(0.0, 0.0, 1.0, 1.0);
        t.insert(r, 1);
        t.insert(r, 2);
        assert_eq!(t.overlapping(r).len(), 2);
    }

    #[test]
    fn remove_entry() {
        let mut t = grid_tree(4);
        assert_eq!(t.len(), 16);
        assert!(t.remove(Rect::rect2(0.0, 0.0, 1.0, 1.0), 0));
        assert_eq!(t.len(), 15);
        assert!(!t.remove(Rect::rect2(0.0, 0.0, 1.0, 1.0), 0));
        assert!(t.containing_point([0.5, 0.5, 0.0]).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn entries_roundtrip() {
        let t = grid_tree(6);
        let e = t.entries();
        assert_eq!(e.len(), 36);
        let payloads: Vec<u64> = e.iter().map(|x| x.payload).collect();
        assert_eq!(payloads, (0..36).collect::<Vec<u64>>());
    }

    #[test]
    fn three_dimensional_entries() {
        let mut t = RTree::new();
        for z in 0..10 {
            t.insert(Rect::box3(0.0, 0.0, z as f64, 1.0, 1.0, z as f64 + 0.5), z as u64);
        }
        let hits = t.overlapping(Rect::box3(0.0, 0.0, 2.0, 1.0, 1.0, 4.0));
        assert_eq!(hits.len(), 3); // z = 2, 3, 4 slabs
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_matches_inserted_queries() {
        // build the same entries two ways and check query parity
        let entries: Vec<(Rect, u64)> = (0..400u64)
            .map(|i| {
                let x = (i as f64 * 7.0) % 1000.0;
                let y = (i as f64 * 13.0) % 1000.0;
                (Rect::rect2(x, y, x + 15.0, y + 15.0), i)
            })
            .collect();

        let bulk = RTree::bulk_load(entries.clone());
        let mut inserted = RTree::new();
        for (r, p) in &entries {
            inserted.insert(*r, *p);
        }
        assert_eq!(bulk.len(), 400);

        let probe = Rect::rect2(100.0, 100.0, 300.0, 300.0);
        let mut a: Vec<u64> = bulk.overlapping(probe).iter().map(|e| e.payload).collect();
        let mut b: Vec<u64> = inserted.overlapping(probe).iter().map(|e| e.payload).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // nearest distance agrees with the inserted tree
        let p = [500.0, 500.0, 0.0];
        let db = bulk.nearest(p).unwrap().rect.distance2_to_point(p);
        let di = inserted.nearest(p).unwrap().rect.distance2_to_point(p);
        assert!((db - di).abs() < 1e-9);
    }

    #[test]
    fn bulk_load_small() {
        let bulk = RTree::bulk_load(vec![(Rect::rect2(0.0, 0.0, 1.0, 1.0), 0)]);
        assert_eq!(bulk.len(), 1);
        assert_eq!(bulk.overlapping(Rect::rect2(0.0, 0.0, 2.0, 2.0)).len(), 1);
        let empty = RTree::bulk_load(vec![]);
        assert!(empty.is_empty());
    }

    #[test]
    fn skewed_insertion_keeps_invariants() {
        let mut t = RTree::new();
        for i in 0..500u64 {
            let x = (i as f64) * 0.01;
            t.insert(Rect::rect2(x, 0.0, x + 0.005, 0.5), i);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 500);
        let all = t.overlapping(Rect::rect2(-1.0, -1.0, 100.0, 100.0));
        assert_eq!(all.len(), 500);
    }
}
