//! # spatial-index — R-trees for 2-D / 3-D substructures
//!
//! The paper stores annotated regions of 2-D and 3-D data (image regions, brain
//! volumes) in *a collection of R-trees*, again keeping the number of structures small:
//! "regions of all brain images of the same resolution are referenced with respect to
//! the same brain coordinate system, and placed in a single R-tree".
//!
//! This crate provides:
//!
//! * [`Rect`] — an axis-aligned box in 2 or 3 dimensions with the substructure
//!   operators `ifOverlap` and `intersect`;
//! * [`RTree`] — a quadratic-split R-tree with overlap, containment, point and
//!   nearest-neighbour queries;
//! * [`CoordinateSystems`] — the collection of R-trees keyed by coordinate-system name.
//!
//! ```
//! use spatial_index::{CoordinateSystems, Rect};
//!
//! let mut cs = CoordinateSystems::new();
//! cs.insert("mouse-brain-25um", Rect::rect2(10.0, 10.0, 30.0, 40.0), 1);
//! cs.insert("mouse-brain-25um", Rect::rect2(25.0, 20.0, 60.0, 50.0), 2);
//! assert_eq!(cs.overlapping("mouse-brain-25um", Rect::rect2(26.0, 22.0, 28.0, 24.0)).len(), 2);
//! ```

pub mod collection;
pub mod rect;
pub mod rtree;

pub use collection::{CoordinateSystems, SystemStats};
pub use rect::Rect;
pub use rtree::{RTree, SpatialEntry};
