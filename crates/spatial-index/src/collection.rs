//! The "collection of R-trees" keyed by coordinate system.
//!
//! All regions registered against the same coordinate system (e.g. every mouse-brain
//! image at the 25 µm resolution) share one R-tree, exactly as the paper prescribes to
//! keep the number of index structures small.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::rect::Rect;
use crate::rtree::{RTree, SpatialEntry};

/// Summary statistics for one coordinate system's R-tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Coordinate-system name.
    pub system: String,
    /// Number of stored regions.
    pub entries: usize,
    /// Height of the underlying R-tree.
    pub height: usize,
}

/// A collection of R-trees, one per named coordinate system.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoordinateSystems {
    systems: BTreeMap<String, RTree>,
}

impl CoordinateSystems {
    /// Create an empty collection.
    pub fn new() -> Self {
        CoordinateSystems::default()
    }

    /// Number of coordinate systems with at least one region.
    pub fn system_count(&self) -> usize {
        self.systems.len()
    }

    /// Total number of regions across all systems.
    pub fn len(&self) -> usize {
        self.systems.values().map(|t| t.len()).sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a region into a coordinate system, creating it on first use.
    pub fn insert(&mut self, system: &str, rect: Rect, payload: u64) {
        self.systems.entry(system.to_string()).or_default().insert(rect, payload);
    }

    /// Bulk-load an entire coordinate system's R-tree via STR packing, replacing any
    /// existing tree for that system.
    pub fn bulk_load(&mut self, system: &str, entries: Vec<(Rect, u64)>) {
        self.systems.insert(system.to_string(), RTree::bulk_load(entries));
    }

    /// Remove a `(rect, payload)` entry; empty systems are dropped.
    pub fn remove(&mut self, system: &str, rect: Rect, payload: u64) -> bool {
        let Some(tree) = self.systems.get_mut(system) else { return false };
        let removed = tree.remove(rect, payload);
        if tree.is_empty() {
            self.systems.remove(system);
        }
        removed
    }

    /// Regions overlapping `query` within one coordinate system.
    pub fn overlapping(&self, system: &str, query: Rect) -> Vec<SpatialEntry> {
        self.systems.get(system).map(|t| t.overlapping(query)).unwrap_or_default()
    }

    /// Regions fully contained in `query` within one coordinate system.
    pub fn contained_in(&self, system: &str, query: Rect) -> Vec<SpatialEntry> {
        self.systems.get(system).map(|t| t.contained_in(query)).unwrap_or_default()
    }

    /// Regions containing a point within one coordinate system.
    pub fn containing_point(&self, system: &str, p: [f64; 3]) -> Vec<SpatialEntry> {
        self.systems.get(system).map(|t| t.containing_point(p)).unwrap_or_default()
    }

    /// Nearest region to a point within one coordinate system.
    pub fn nearest(&self, system: &str, p: [f64; 3]) -> Option<SpatialEntry> {
        self.systems.get(system).and_then(|t| t.nearest(p))
    }

    /// All regions of a coordinate system.
    pub fn entries(&self, system: &str) -> Vec<SpatialEntry> {
        self.systems.get(system).map(|t| t.entries()).unwrap_or_default()
    }

    /// Registered coordinate-system names, sorted.
    pub fn systems(&self) -> Vec<&str> {
        self.systems.keys().map(String::as_str).collect()
    }

    /// Whether a coordinate system exists.
    pub fn has_system(&self, system: &str) -> bool {
        self.systems.contains_key(system)
    }

    /// Per-system statistics.
    pub fn stats(&self) -> Vec<SystemStats> {
        self.systems
            .iter()
            .map(|(name, tree)| SystemStats {
                system: name.clone(),
                entries: tree.len(),
                height: tree.height(),
            })
            .collect()
    }

    /// Search every coordinate system for regions overlapping `query`.
    pub fn overlapping_all_systems(&self, query: Rect) -> Vec<(String, SpatialEntry)> {
        let mut out = Vec::new();
        for (name, tree) in &self.systems {
            for e in tree.overlapping(query) {
                out.push((name.clone(), e));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoordinateSystems {
        let mut cs = CoordinateSystems::new();
        cs.insert("brain-25um", Rect::rect2(0.0, 0.0, 10.0, 10.0), 1);
        cs.insert("brain-25um", Rect::rect2(5.0, 5.0, 15.0, 15.0), 2);
        cs.insert("brain-100um", Rect::rect2(0.0, 0.0, 10.0, 10.0), 3);
        cs
    }

    #[test]
    fn insert_and_count() {
        let cs = sample();
        assert_eq!(cs.system_count(), 2);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs.systems(), vec!["brain-100um", "brain-25um"]);
        assert!(cs.has_system("brain-25um"));
        assert!(!cs.has_system("atlas"));
        assert!(!cs.is_empty());
    }

    #[test]
    fn queries_scoped_by_system() {
        let cs = sample();
        assert_eq!(cs.overlapping("brain-25um", Rect::rect2(6.0, 6.0, 7.0, 7.0)).len(), 2);
        assert_eq!(cs.overlapping("brain-100um", Rect::rect2(6.0, 6.0, 7.0, 7.0)).len(), 1);
        assert_eq!(cs.overlapping("none", Rect::rect2(6.0, 6.0, 7.0, 7.0)).len(), 0);
        assert_eq!(cs.containing_point("brain-25um", [1.0, 1.0, 0.0]).len(), 1);
        assert_eq!(cs.contained_in("brain-25um", Rect::rect2(0.0, 0.0, 20.0, 20.0)).len(), 2);
        assert!(cs.nearest("brain-100um", [100.0, 100.0, 0.0]).is_some());
        assert!(cs.nearest("none", [0.0, 0.0, 0.0]).is_none());
    }

    #[test]
    fn cross_system_search() {
        let cs = sample();
        let hits = cs.overlapping_all_systems(Rect::rect2(1.0, 1.0, 2.0, 2.0));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn remove_drops_empty_system() {
        let mut cs = sample();
        assert!(cs.remove("brain-100um", Rect::rect2(0.0, 0.0, 10.0, 10.0), 3));
        assert_eq!(cs.system_count(), 1);
        assert!(!cs.remove("brain-100um", Rect::rect2(0.0, 0.0, 10.0, 10.0), 3));
    }

    #[test]
    fn stats() {
        let cs = sample();
        let st = cs.stats();
        assert_eq!(st.len(), 2);
        assert_eq!(st[1].system, "brain-25um");
        assert_eq!(st[1].entries, 2);
        assert!(st[1].height >= 1);
    }

    #[test]
    fn entries_listing() {
        let cs = sample();
        assert_eq!(cs.entries("brain-25um").len(), 2);
        assert!(cs.entries("none").is_empty());
    }

    #[test]
    fn bulk_load_system() {
        let mut cs = CoordinateSystems::new();
        let entries: Vec<(Rect, u64)> = (0..50u64)
            .map(|i| {
                let x = i as f64 * 10.0;
                (Rect::rect2(x, 0.0, x + 5.0, 5.0), i)
            })
            .collect();
        cs.bulk_load("cs", entries);
        assert_eq!(cs.entries("cs").len(), 50);
        assert_eq!(cs.overlapping("cs", Rect::rect2(0.0, 0.0, 25.0, 5.0)).len(), 3);
    }
}
