//! Axis-aligned boxes in 2 or 3 dimensions and the paper's spatial substructure
//! operators.
//!
//! A [`Rect`] always stores three dimensions; genuinely 2-D regions (image regions)
//! simply use a zero-extent third axis.  This keeps one R-tree implementation serving
//! both the 2-D image-region case and the 3-D brain-volume case the paper mentions.

use serde::{Deserialize, Serialize};

/// An axis-aligned box `[min, max]` per axis (closed on both ends, matching how image
/// regions are usually specified).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner.
    pub min: [f64; 3],
    /// Maximum corner.
    pub max: [f64; 3],
}

impl Rect {
    /// Create a 3-D box. Panics when any `min > max` (an inverted box is a caller bug).
    pub fn new(min: [f64; 3], max: [f64; 3]) -> Self {
        for d in 0..3 {
            assert!(min[d] <= max[d], "inverted box on axis {d}: {} > {}", min[d], max[d]);
        }
        Rect { min, max }
    }

    /// Create a 2-D rectangle (zero-extent z axis).
    pub fn rect2(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new([x0, y0, 0.0], [x1, y1, 0.0])
    }

    /// Create a 3-D box from scalar corners.
    pub fn box3(x0: f64, y0: f64, z0: f64, x1: f64, y1: f64, z1: f64) -> Self {
        Rect::new([x0, y0, z0], [x1, y1, z1])
    }

    /// A degenerate box at a single point.
    pub fn point(x: f64, y: f64, z: f64) -> Self {
        Rect::new([x, y, z], [x, y, z])
    }

    /// Extent along an axis.
    pub fn extent(&self, axis: usize) -> f64 {
        self.max[axis] - self.min[axis]
    }

    /// Area in 2-D / volume measure used for R-tree heuristics: the product of extents,
    /// treating zero-extent axes as contributing a factor of 1 so 2-D rectangles get
    /// their area rather than a degenerate 0.
    pub fn measure(&self) -> f64 {
        (0..3)
            .map(|d| {
                let e = self.extent(d);
                if e == 0.0 {
                    1.0
                } else {
                    e
                }
            })
            .product()
    }

    /// The paper's `ifOverlap` for spatial substructures: true when the boxes share at
    /// least one point (closed-interval semantics, so touching boxes do overlap).
    pub fn if_overlap(&self, other: &Rect) -> bool {
        (0..3).all(|d| self.min[d] <= other.max[d] && other.min[d] <= self.max[d])
    }

    /// The paper's `intersect` for convex spatial types: the shared box, or `None` when
    /// the boxes are disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        if !self.if_overlap(other) {
            return None;
        }
        let mut min = [0.0; 3];
        let mut max = [0.0; 3];
        for d in 0..3 {
            min[d] = self.min[d].max(other.min[d]);
            max[d] = self.max[d].min(other.max[d]);
        }
        Some(Rect { min, max })
    }

    /// The minimum bounding box of the two inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        let mut min = [0.0; 3];
        let mut max = [0.0; 3];
        for d in 0..3 {
            min[d] = self.min[d].min(other.min[d]);
            max[d] = self.max[d].max(other.max[d]);
        }
        Rect { min, max }
    }

    /// How much the measure grows if `other` is merged into `self` (R-tree insertion
    /// heuristic).
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).measure() - self.measure()
    }

    /// True when `self` fully contains `other`.
    pub fn contains(&self, other: &Rect) -> bool {
        (0..3).all(|d| self.min[d] <= other.min[d] && other.max[d] <= self.max[d])
    }

    /// True when the point lies inside the box (closed).
    pub fn contains_point(&self, p: [f64; 3]) -> bool {
        (0..3).all(|d| self.min[d] <= p[d] && p[d] <= self.max[d])
    }

    /// The centre of the box.
    pub fn center(&self) -> [f64; 3] {
        [
            (self.min[0] + self.max[0]) / 2.0,
            (self.min[1] + self.max[1]) / 2.0,
            (self.min[2] + self.max[2]) / 2.0,
        ]
    }

    /// Squared distance from a point to the box (0 when inside) — used by
    /// nearest-neighbour search.
    pub fn distance2_to_point(&self, p: [f64; 3]) -> f64 {
        (0..3)
            .map(|d| {
                let v = if p[d] < self.min[d] {
                    self.min[d] - p[d]
                } else if p[d] > self.max[d] {
                    p[d] - self.max[d]
                } else {
                    0.0
                };
                v * v
            })
            .sum()
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[({}, {}, {})..({}, {}, {})]",
            self.min[0], self.min[1], self.min[2], self.max[0], self.max[1], self.max[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_helpers() {
        let r = Rect::rect2(0.0, 0.0, 10.0, 5.0);
        assert_eq!(r.extent(0), 10.0);
        assert_eq!(r.extent(1), 5.0);
        assert_eq!(r.extent(2), 0.0);
        assert_eq!(r.measure(), 50.0);
        let b = Rect::box3(0.0, 0.0, 0.0, 2.0, 3.0, 4.0);
        assert_eq!(b.measure(), 24.0);
        let p = Rect::point(1.0, 2.0, 3.0);
        assert!(p.contains_point([1.0, 2.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "inverted box")]
    fn inverted_box_panics() {
        let _ = Rect::new([0.0, 0.0, 0.0], [-1.0, 0.0, 0.0]);
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Rect::rect2(0.0, 0.0, 10.0, 10.0);
        let b = Rect::rect2(5.0, 5.0, 15.0, 15.0);
        let c = Rect::rect2(20.0, 20.0, 30.0, 30.0);
        assert!(a.if_overlap(&b));
        assert!(!a.if_overlap(&c));
        assert!(a.if_overlap(&Rect::rect2(10.0, 10.0, 20.0, 20.0))); // touching counts
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Rect::rect2(5.0, 5.0, 10.0, 10.0));
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn union_and_enlargement() {
        let a = Rect::rect2(0.0, 0.0, 10.0, 10.0);
        let b = Rect::rect2(20.0, 0.0, 30.0, 10.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::rect2(0.0, 0.0, 30.0, 10.0));
        assert!(a.enlargement(&b) > 0.0);
        assert_eq!(a.enlargement(&Rect::rect2(1.0, 1.0, 2.0, 2.0)), 0.0);
    }

    #[test]
    fn containment() {
        let a = Rect::rect2(0.0, 0.0, 10.0, 10.0);
        assert!(a.contains(&Rect::rect2(2.0, 2.0, 8.0, 8.0)));
        assert!(a.contains(&a));
        assert!(!a.contains(&Rect::rect2(-1.0, 0.0, 5.0, 5.0)));
        assert!(a.contains_point([10.0, 10.0, 0.0]));
        assert!(!a.contains_point([10.1, 10.0, 0.0]));
    }

    #[test]
    fn distance_to_point() {
        let a = Rect::rect2(0.0, 0.0, 10.0, 10.0);
        assert_eq!(a.distance2_to_point([5.0, 5.0, 0.0]), 0.0);
        assert_eq!(a.distance2_to_point([13.0, 14.0, 0.0]), 9.0 + 16.0);
        assert_eq!(a.center(), [5.0, 5.0, 0.0]);
    }

    #[test]
    fn display_is_readable() {
        let r = Rect::rect2(1.0, 2.0, 3.0, 4.0);
        assert!(r.to_string().contains("(1, 2, 0)"));
    }

    #[test]
    fn overlap_in_3d_requires_all_axes() {
        let a = Rect::box3(0.0, 0.0, 0.0, 10.0, 10.0, 10.0);
        let b = Rect::box3(5.0, 5.0, 20.0, 15.0, 15.0, 30.0);
        assert!(!a.if_overlap(&b));
        let c = Rect::box3(5.0, 5.0, 5.0, 15.0, 15.0, 15.0);
        assert!(a.if_overlap(&c));
        assert_eq!(a.intersect(&c).unwrap(), Rect::box3(5.0, 5.0, 5.0, 10.0, 10.0, 10.0));
    }
}
