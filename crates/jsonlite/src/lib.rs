//! # jsonlite — a minimal, dependency-free JSON value model
//!
//! The workspace builds offline, so instead of `serde`/`serde_json` the snapshot and
//! result exporters hand-assemble a [`Json`] tree and render it with [`Json::pretty`].
//! The parser accepts standard JSON (objects, arrays, strings with escapes, numbers,
//! booleans, null) and is used by snapshot import.
//!
//! Object key order is preserved (insertion order), which keeps exports deterministic
//! and diffs stable across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as f64; integral values render without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A JSON parse error with a byte offset and message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build a number from any integer that fits an f64 exactly enough for ids/counts.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Build a number from a u64 (lossless for values < 2^53, which covers dense ids).
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Build an array by mapping an iterator.
    pub fn arr<T>(items: impl IntoIterator<Item = T>, f: impl Fn(T) -> Json) -> Json {
        Json::Arr(items.into_iter().map(f).collect())
    }

    // --- accessors (used by importers) ---

    /// The value of an object key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64 (floor), if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as i64, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    // --- rendering ---

    /// Render compactly (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation (serde_json `to_string_pretty` style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Trailing whitespace is allowed; trailing garbage errors.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no Inf/NaN; degrade to null like serde_json's arbitrary-precision off
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos is at 'u'
        self.pos += 1;
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
            16,
        )
        .map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        // surrogate pair
        if (0xD800..0xDC00).contains(&code) {
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let hex2 = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .ok_or_else(|| self.err("truncated surrogate"))?;
                let low = u32::from_str_radix(
                    std::str::from_utf8(hex2).map_err(|_| self.err("bad surrogate"))?,
                    16,
                )
                .map_err(|_| self.err("bad surrogate"))?;
                self.pos += 4;
                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid code point"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Sort an object's keys recursively (useful for canonical comparison in tests).
pub fn canonicalize(v: &Json) -> Json {
    match v {
        Json::Obj(pairs) => {
            let map: BTreeMap<String, Json> =
                pairs.iter().map(|(k, val)| (k.clone(), canonicalize(val))).collect();
            Json::Obj(map.into_iter().collect())
        }
        Json::Arr(items) => Json::Arr(items.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = Json::obj([
            ("name", Json::str("graphitti")),
            ("count", Json::u64(3)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
            ("nested", Json::obj([("ok", Json::Bool(true)), ("none", Json::Null)])),
        ]);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        let compact = v.compact();
        assert_eq!(Json::parse(&compact).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Json::parse(r#"{"s":"a\"b\nA","n":-12.5,"e":1e3}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\nA"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-12.5));
        assert_eq!(v.get("e").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{not valid").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn preserves_key_order() {
        let v = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        match &v {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "b");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!("expected object"),
        }
        let canon = canonicalize(&v);
        match canon {
            Json::Obj(pairs) => assert_eq!(pairs[0].0, "a"),
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn unicode_surrogate_pair() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }
}
