//! The catalogue of type-specific relations.
//!
//! Each registered data type (DNA sequence, protein, image, …) gets its own table.
//! The [`Catalog`] is the named collection of those tables — Graphitti core creates one
//! table per [`graphitti_core::DataType`] on demand.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::RelError;
use crate::predicate::Predicate;
use crate::table::{RowId, Table};
use crate::value::Schema;
use crate::Result;

/// A named collection of tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Create an empty catalogue.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Create a new table. Errors if one with the name already exists.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(RelError::TableExists(name));
        }
        self.tables.insert(name.clone(), Table::new(name, schema));
        Ok(())
    }

    /// Create a table if it does not already exist; returns whether it was created.
    pub fn ensure_table(&mut self, name: impl Into<String>, schema: Schema) -> bool {
        let name = name.into();
        if self.tables.contains_key(&name) {
            false
        } else {
            self.tables.insert(name.clone(), Table::new(name, schema));
            true
        }
    }

    /// Drop a table, returning it if it existed.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Immutable access to a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Mutable access to a table, erroring if absent.
    pub fn require_table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables.get_mut(name).ok_or_else(|| RelError::NoSuchTable(name.to_string()))
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Run a predicate scan on a named table, erroring if the table is absent.
    pub fn scan(&self, table: &str, predicate: &Predicate) -> Result<Vec<RowId>> {
        self.table(table)
            .map(|t| t.scan(predicate))
            .ok_or_else(|| RelError::NoSuchTable(table.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Column, ColumnType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::Text),
            Column::new("length", ColumnType::Int),
        ])
    }

    #[test]
    fn create_and_access() {
        let mut c = Catalog::new();
        c.create_table("dna", schema()).unwrap();
        assert!(c.has_table("dna"));
        assert_eq!(c.table_count(), 1);
        assert_eq!(c.create_table("dna", schema()), Err(RelError::TableExists("dna".into())));
        c.table_mut("dna").unwrap().insert(vec![Value::text("x"), Value::Int(5)]).unwrap();
        assert_eq!(c.total_rows(), 1);
    }

    #[test]
    fn ensure_table_idempotent() {
        let mut c = Catalog::new();
        assert!(c.ensure_table("img", schema()));
        assert!(!c.ensure_table("img", schema()));
        assert_eq!(c.table_count(), 1);
    }

    #[test]
    fn drop_and_require() {
        let mut c = Catalog::new();
        c.create_table("protein", schema()).unwrap();
        assert!(c.require_table_mut("protein").is_ok());
        assert!(c.drop_table("protein").is_some());
        assert!(c.drop_table("protein").is_none());
        assert_eq!(
            c.require_table_mut("protein").err(),
            Some(RelError::NoSuchTable("protein".into()))
        );
    }

    #[test]
    fn scan_through_catalog() {
        let mut c = Catalog::new();
        c.create_table("dna", schema()).unwrap();
        let t = c.table_mut("dna").unwrap();
        t.insert(vec![Value::text("a"), Value::Int(10)]).unwrap();
        t.insert(vec![Value::text("b"), Value::Int(20)]).unwrap();
        let hits = c.scan("dna", &Predicate::gt("length", Value::Int(15))).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(matches!(c.scan("missing", &Predicate::True), Err(RelError::NoSuchTable(_))));
    }

    #[test]
    fn table_names_sorted() {
        let mut c = Catalog::new();
        c.create_table("z", schema()).unwrap();
        c.create_table("a", schema()).unwrap();
        assert_eq!(c.table_names(), vec!["a", "z"]);
    }
}
