//! # relstore — the in-memory relational store
//!
//! Graphitti models "data objects and their metadata … as type-specific relations
//! stored in a relational database — thus DNA sequences, protein sequences, images etc.
//! all have their metadata stored in separate tables.  The raw actual data is also
//! stored in the same tables in their native formats."
//!
//! This crate is that relational substrate, built from scratch:
//!
//! * [`value`] — typed values (`Int`, `Float`, `Text`, `Bool`, `Blob`, `Null`) and the
//!   column schema;
//! * [`predicate`] — row predicates (comparisons, LIKE-style substring match, boolean
//!   combinators) used by search forms and by the query processor's relational
//!   subqueries;
//! * [`table`] — a heap table with primary-key access and optional secondary indexes;
//! * [`catalog`] — the named collection of type-specific tables (one per registered
//!   data type).
//!
//! ```
//! use relstore::{Catalog, Column, ColumnType, Predicate, Schema, Value};
//!
//! let mut catalog = Catalog::new();
//! let schema = Schema::new(vec![
//!     Column::new("accession", ColumnType::Text),
//!     Column::new("length", ColumnType::Int),
//! ]);
//! catalog.create_table("dna_sequence", schema).unwrap();
//! let t = catalog.table_mut("dna_sequence").unwrap();
//! t.insert(vec![Value::text("NC_007373"), Value::Int(2300)]).unwrap();
//! let hits = t.scan(&Predicate::gt("length", Value::Int(1000)));
//! assert_eq!(hits.len(), 1);
//! ```

pub mod catalog;
pub mod error;
pub mod predicate;
pub mod query;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use error::RelError;
pub use predicate::Predicate;
pub use query::{
    avg, count, distinct, group_by_count, hash_join, min_max, scan_ordered, scan_top_k, sum_int,
    Order,
};
pub use table::{RowId, Table};
pub use value::{Column, ColumnType, Row, Schema, Value};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, RelError>;
