//! Row predicates.
//!
//! The demo's search forms ("the search window displays a form to query the specific
//! data type") and the query processor's relational subqueries both boil down to
//! predicates over a single table's rows: comparisons on named columns, substring
//! matches, and boolean combinations.

use serde::{Deserialize, Serialize};

use crate::value::{Schema, Value};

/// A predicate over a row of a given schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (the full scan).
    True,
    /// Column equals value.
    Eq(String, Value),
    /// Column does not equal value (NULL never matches).
    Ne(String, Value),
    /// Column is strictly less than value.
    Lt(String, Value),
    /// Column is less than or equal to value.
    Le(String, Value),
    /// Column is strictly greater than value.
    Gt(String, Value),
    /// Column is greater than or equal to value.
    Ge(String, Value),
    /// Column (text) contains the given substring, case-insensitively.
    Contains(String, String),
    /// Column is NULL.
    IsNull(String),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = value`.
    pub fn eq(column: impl Into<String>, value: Value) -> Predicate {
        Predicate::Eq(column.into(), value)
    }

    /// `column != value`.
    pub fn ne(column: impl Into<String>, value: Value) -> Predicate {
        Predicate::Ne(column.into(), value)
    }

    /// `column < value`.
    pub fn lt(column: impl Into<String>, value: Value) -> Predicate {
        Predicate::Lt(column.into(), value)
    }

    /// `column <= value`.
    pub fn le(column: impl Into<String>, value: Value) -> Predicate {
        Predicate::Le(column.into(), value)
    }

    /// `column > value`.
    pub fn gt(column: impl Into<String>, value: Value) -> Predicate {
        Predicate::Gt(column.into(), value)
    }

    /// `column >= value`.
    pub fn ge(column: impl Into<String>, value: Value) -> Predicate {
        Predicate::Ge(column.into(), value)
    }

    /// `column LIKE %needle%` (case-insensitive substring).
    pub fn contains(column: impl Into<String>, needle: impl Into<String>) -> Predicate {
        Predicate::Contains(column.into(), needle.into())
    }

    /// `column IS NULL`.
    pub fn is_null(column: impl Into<String>) -> Predicate {
        Predicate::IsNull(column.into())
    }

    /// Conjunction.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate against a row. Unknown columns and NULL comparisons evaluate to false
    /// (SQL-like three-valued logic collapsed to boolean).
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> bool {
        let get =
            |name: &str| -> Option<&Value> { schema.column_index(name).and_then(|i| row.get(i)) };
        match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => get(c).map(|x| !x.is_null() && x == v).unwrap_or(false),
            Predicate::Ne(c, v) => get(c).map(|x| !x.is_null() && x != v).unwrap_or(false),
            Predicate::Lt(c, v) => Self::cmp(get(c), v, |o| o == std::cmp::Ordering::Less),
            Predicate::Le(c, v) => Self::cmp(get(c), v, |o| o != std::cmp::Ordering::Greater),
            Predicate::Gt(c, v) => Self::cmp(get(c), v, |o| o == std::cmp::Ordering::Greater),
            Predicate::Ge(c, v) => Self::cmp(get(c), v, |o| o != std::cmp::Ordering::Less),
            Predicate::Contains(c, needle) => get(c)
                .and_then(|x| x.as_text())
                .map(|t| t.to_lowercase().contains(&needle.to_lowercase()))
                .unwrap_or(false),
            Predicate::IsNull(c) => get(c).map(Value::is_null).unwrap_or(false),
            Predicate::And(a, b) => a.eval(schema, row) && b.eval(schema, row),
            Predicate::Or(a, b) => a.eval(schema, row) || b.eval(schema, row),
            Predicate::Not(p) => !p.eval(schema, row),
        }
    }

    fn cmp(lhs: Option<&Value>, rhs: &Value, keep: impl Fn(std::cmp::Ordering) -> bool) -> bool {
        match lhs {
            Some(v) if !v.is_null() && !rhs.is_null() => keep(v.compare(rhs)),
            _ => false,
        }
    }

    /// If this predicate pins a column to an exact value at its top level (possibly
    /// under conjunctions), return `(column, value)` — used by tables to route scans
    /// through a hash index.
    pub fn equality_binding(&self) -> Option<(&str, &Value)> {
        match self {
            Predicate::Eq(c, v) => Some((c.as_str(), v)),
            Predicate::And(a, b) => a.equality_binding().or_else(|| b.equality_binding()),
            _ => None,
        }
    }

    /// A rough selectivity estimate in `[0, 1]` used by the query planner's feasible
    /// ordering: equality is most selective, ranges moderate, full scans not at all.
    pub fn selectivity(&self) -> f64 {
        match self {
            Predicate::True => 1.0,
            Predicate::Eq(..) => 0.05,
            Predicate::Ne(..) => 0.9,
            Predicate::Lt(..) | Predicate::Le(..) | Predicate::Gt(..) | Predicate::Ge(..) => 0.3,
            Predicate::Contains(..) => 0.2,
            Predicate::IsNull(..) => 0.1,
            Predicate::And(a, b) => (a.selectivity() * b.selectivity()).max(0.001),
            Predicate::Or(a, b) => (a.selectivity() + b.selectivity()).min(1.0),
            Predicate::Not(p) => (1.0 - p.selectivity()).max(0.05),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("accession", ColumnType::Text),
            Column::new("length", ColumnType::Int),
            Column::new("gc", ColumnType::Float),
            Column::new("curated", ColumnType::Bool),
        ])
    }

    fn row() -> Vec<Value> {
        vec![Value::text("NC_007373"), Value::Int(2300), Value::Float(0.41), Value::Bool(true)]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row();
        assert!(Predicate::eq("accession", Value::text("NC_007373")).eval(&s, &r));
        assert!(!Predicate::eq("accession", Value::text("other")).eval(&s, &r));
        assert!(Predicate::ne("length", Value::Int(100)).eval(&s, &r));
        assert!(Predicate::gt("length", Value::Int(1000)).eval(&s, &r));
        assert!(Predicate::ge("length", Value::Int(2300)).eval(&s, &r));
        assert!(Predicate::lt("gc", Value::Float(0.5)).eval(&s, &r));
        assert!(Predicate::le("gc", Value::Float(0.41)).eval(&s, &r));
        assert!(!Predicate::gt("length", Value::Int(99999)).eval(&s, &r));
        assert!(Predicate::True.eval(&s, &r));
    }

    #[test]
    fn mixed_numeric_comparison() {
        let s = schema();
        let r = row();
        assert!(Predicate::gt("length", Value::Float(2299.5)).eval(&s, &r));
        assert!(Predicate::lt("gc", Value::Int(1)).eval(&s, &r));
    }

    #[test]
    fn contains_is_case_insensitive() {
        let s = schema();
        let r = row();
        assert!(Predicate::contains("accession", "nc_0073").eval(&s, &r));
        assert!(!Predicate::contains("accession", "xyz").eval(&s, &r));
        // contains on a non-text column is false, not a panic
        assert!(!Predicate::contains("length", "23").eval(&s, &r));
    }

    #[test]
    fn null_semantics() {
        let s = schema();
        let r = vec![Value::Null, Value::Null, Value::Null, Value::Null];
        assert!(Predicate::is_null("accession").eval(&s, &r));
        assert!(!Predicate::eq("accession", Value::Null).eval(&s, &r));
        assert!(!Predicate::gt("length", Value::Int(0)).eval(&s, &r));
        assert!(!Predicate::is_null("accession").eval(&schema(), &row()));
    }

    #[test]
    fn unknown_column_is_false() {
        let s = schema();
        let r = row();
        assert!(!Predicate::eq("missing", Value::Int(1)).eval(&s, &r));
        assert!(!Predicate::is_null("missing").eval(&s, &r));
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row();
        let p =
            Predicate::gt("length", Value::Int(1000)).and(Predicate::contains("accession", "NC"));
        assert!(p.eval(&s, &r));
        let q =
            Predicate::eq("curated", Value::Bool(false)).or(Predicate::lt("gc", Value::Float(0.5)));
        assert!(q.eval(&s, &r));
        assert!(!q.clone().not().eval(&s, &r));
        assert!(Predicate::eq("curated", Value::Bool(false)).not().eval(&s, &r));
    }

    #[test]
    fn equality_binding_extraction() {
        let p = Predicate::gt("length", Value::Int(10))
            .and(Predicate::eq("accession", Value::text("A")));
        let (col, val) = p.equality_binding().unwrap();
        assert_eq!(col, "accession");
        assert_eq!(val, &Value::text("A"));
        assert!(Predicate::gt("length", Value::Int(10)).equality_binding().is_none());
    }

    #[test]
    fn selectivity_ordering() {
        let eq = Predicate::eq("a", Value::Int(1));
        let range = Predicate::gt("a", Value::Int(1));
        assert!(eq.selectivity() < range.selectivity());
        assert!(range.selectivity() < Predicate::True.selectivity());
        let conj = eq.clone().and(range.clone());
        assert!(conj.selectivity() <= eq.selectivity());
        let disj = eq.clone().or(range.clone());
        assert!(disj.selectivity() >= range.selectivity());
        assert!(Predicate::True.selectivity() <= 1.0);
    }
}
