//! Error type for the relational store.

use std::fmt;

/// Errors raised by relational-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name exists.
    NoSuchTable(String),
    /// No column with this name exists in the table's schema.
    NoSuchColumn(String),
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Columns defined in the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value's type did not match the column type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// The column's declared type.
        expected: &'static str,
        /// The supplied value rendered for diagnostics.
        got: String,
    },
    /// A row id did not refer to a live row.
    NoSuchRow(u64),
    /// An index with this name already exists on the table.
    IndexExists(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::TableExists(t) => write!(f, "table '{t}' already exists"),
            RelError::NoSuchTable(t) => write!(f, "no table named '{t}'"),
            RelError::NoSuchColumn(c) => write!(f, "no column named '{c}'"),
            RelError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            RelError::TypeMismatch { column, expected, got } => {
                write!(f, "column '{column}' expects {expected}, got {got}")
            }
            RelError::NoSuchRow(id) => write!(f, "no row with id {id}"),
            RelError::IndexExists(name) => write!(f, "index '{name}' already exists"),
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RelError::TableExists("t".into()).to_string().contains("'t'"));
        assert!(RelError::ArityMismatch { expected: 3, got: 1 }.to_string().contains("3"));
        assert!(RelError::TypeMismatch {
            column: "len".into(),
            expected: "Int",
            got: "Text(\"x\")".into()
        }
        .to_string()
        .contains("len"));
    }
}
