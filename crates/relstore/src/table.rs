//! A heap table with optional secondary hash indexes.
//!
//! Rows live in a slab addressed by a dense [`RowId`]; removed rows are tombstoned so
//! ids stay stable (Graphitti core stores a row id in the a-graph node key for every
//! registered object).  Secondary hash indexes accelerate equality scans, which is how
//! the search forms look an accession or image id up.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::RelError;
use crate::predicate::Predicate;
use crate::value::{Schema, Value};
use crate::Result;

/// Identifier of a row within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowId(pub u64);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    values: Vec<Value>,
    alive: bool,
}

/// A secondary hash index over one column's values.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HashIndex {
    column: usize,
    // key is the value rendered to its display string (cheap, good enough for the
    // value domains used here), mapping to the row ids carrying that value
    buckets: HashMap<String, Vec<RowId>>,
}

/// A heap table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    slots: Vec<Slot>,
    live: usize,
    indexes: HashMap<String, HashIndex>,
}

fn index_key(v: &Value) -> String {
    // Distinguish types so that Int(1) and Text("1") never collide.
    match v {
        Value::Null => "\0null".to_string(),
        Value::Int(i) => format!("i{i}"),
        Value::Float(x) => format!("f{x}"),
        Value::Text(t) => format!("t{t}"),
        Value::Bool(b) => format!("b{b}"),
        Value::Blob(b) => format!("x{}", b.len()),
    }
}

impl Table {
    /// Create an empty table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table { name: name.into(), schema, slots: Vec::new(), live: 0, indexes: HashMap::new() }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a row, type-checking it against the schema, and return its id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId> {
        if values.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (col, value) in self.schema.columns.iter().zip(&values) {
            if !value.matches(col.ty) {
                return Err(RelError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.name(),
                    got: format!("{value:?}"),
                });
            }
        }
        let id = RowId(self.slots.len() as u64);
        for index in self.indexes.values_mut() {
            let key = index_key(&values[index.column]);
            index.buckets.entry(key).or_default().push(id);
        }
        self.slots.push(Slot { values, alive: true });
        self.live += 1;
        Ok(id)
    }

    /// Fetch a row by id.
    pub fn get(&self, id: RowId) -> Option<&[Value]> {
        self.slots.get(id.0 as usize).filter(|s| s.alive).map(|s| s.values.as_slice())
    }

    /// Fetch a single column value of a row.
    pub fn get_value(&self, id: RowId, column: &str) -> Option<&Value> {
        let idx = self.schema.column_index(column)?;
        self.get(id).and_then(|row| row.get(idx))
    }

    /// Remove a row by id; returns the removed values.
    pub fn remove(&mut self, id: RowId) -> Result<Vec<Value>> {
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .filter(|s| s.alive)
            .ok_or(RelError::NoSuchRow(id.0))?;
        slot.alive = false;
        let values = slot.values.clone();
        self.live -= 1;
        for index in self.indexes.values_mut() {
            let key = index_key(&values[index.column]);
            if let Some(bucket) = index.buckets.get_mut(&key) {
                bucket.retain(|&r| r != id);
                if bucket.is_empty() {
                    index.buckets.remove(&key);
                }
            }
        }
        Ok(values)
    }

    /// Update a row in place (re-type-checked and re-indexed).
    pub fn update(&mut self, id: RowId, values: Vec<Value>) -> Result<()> {
        self.get(id).ok_or(RelError::NoSuchRow(id.0))?;
        if values.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (col, value) in self.schema.columns.iter().zip(&values) {
            if !value.matches(col.ty) {
                return Err(RelError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.name(),
                    got: format!("{value:?}"),
                });
            }
        }
        let old = self.slots[id.0 as usize].values.clone();
        for index in self.indexes.values_mut() {
            let old_key = index_key(&old[index.column]);
            if let Some(bucket) = index.buckets.get_mut(&old_key) {
                bucket.retain(|&r| r != id);
            }
            let new_key = index_key(&values[index.column]);
            index.buckets.entry(new_key).or_default().push(id);
        }
        self.slots[id.0 as usize].values = values;
        Ok(())
    }

    /// Create a secondary hash index on a column.
    pub fn create_index(&mut self, name: impl Into<String>, column: &str) -> Result<()> {
        let name = name.into();
        if self.indexes.contains_key(&name) {
            return Err(RelError::IndexExists(name));
        }
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| RelError::NoSuchColumn(column.to_string()))?;
        let mut buckets: HashMap<String, Vec<RowId>> = HashMap::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.alive {
                buckets.entry(index_key(&slot.values[col])).or_default().push(RowId(i as u64));
            }
        }
        self.indexes.insert(name, HashIndex { column: col, buckets });
        Ok(())
    }

    /// Whether any secondary index covers the named column.
    pub fn has_index_on(&self, column: &str) -> bool {
        self.schema
            .column_index(column)
            .map(|idx| self.indexes.values().any(|i| i.column == idx))
            .unwrap_or(false)
    }

    /// All live row ids in ascending order.
    pub fn row_ids(&self) -> Vec<RowId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| RowId(i as u64))
            .collect()
    }

    /// Iterate over `(id, row)` for every live row.
    pub fn rows(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, s)| (RowId(i as u64), s.values.as_slice()))
    }

    /// Scan the table for rows satisfying the predicate, returning their ids.
    ///
    /// When the predicate pins an indexed column to an equality value, the matching
    /// bucket is scanned instead of the whole table.
    pub fn scan(&self, predicate: &Predicate) -> Vec<RowId> {
        if let Some((column, value)) = predicate.equality_binding() {
            if let Some(col_idx) = self.schema.column_index(column) {
                if let Some(index) = self.indexes.values().find(|i| i.column == col_idx) {
                    let key = index_key(value);
                    let candidates = index.buckets.get(&key).cloned().unwrap_or_default();
                    return candidates
                        .into_iter()
                        .filter(|&id| {
                            self.get(id)
                                .map(|row| predicate.eval(&self.schema, row))
                                .unwrap_or(false)
                        })
                        .collect();
                }
            }
        }
        self.rows().filter(|(_, row)| predicate.eval(&self.schema, row)).map(|(id, _)| id).collect()
    }

    /// Scan and return `(id, row)` pairs.
    pub fn select(&self, predicate: &Predicate) -> Vec<(RowId, Vec<Value>)> {
        self.scan(predicate)
            .into_iter()
            .filter_map(|id| self.get(id).map(|r| (id, r.to_vec())))
            .collect()
    }

    /// Count rows matching a predicate.
    pub fn count(&self, predicate: &Predicate) -> usize {
        self.scan(predicate).len()
    }

    /// Project selected columns from matching rows.
    pub fn project(&self, predicate: &Predicate, columns: &[&str]) -> Result<Vec<Vec<Value>>> {
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema.column_index(c).ok_or_else(|| RelError::NoSuchColumn(c.to_string()))
            })
            .collect::<Result<_>>()?;
        Ok(self
            .scan(predicate)
            .into_iter()
            .filter_map(|id| self.get(id))
            .map(|row| idxs.iter().map(|&i| row[i].clone()).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Column, ColumnType};

    fn dna_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("accession", ColumnType::Text),
            Column::new("length", ColumnType::Int),
            Column::new("organism", ColumnType::Text),
        ]);
        let mut t = Table::new("dna_sequence", schema);
        t.insert(vec![Value::text("A1"), Value::Int(1000), Value::text("H5N1")]).unwrap();
        t.insert(vec![Value::text("A2"), Value::Int(2300), Value::text("H5N1")]).unwrap();
        t.insert(vec![Value::text("A3"), Value::Int(900), Value::text("H1N1")]).unwrap();
        t
    }

    #[test]
    fn insert_and_get() {
        let t = dna_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(RowId(1)).unwrap()[0], Value::text("A2"));
        assert_eq!(t.get_value(RowId(1), "length"), Some(&Value::Int(2300)));
        assert!(t.get(RowId(99)).is_none());
    }

    #[test]
    fn type_and_arity_checks() {
        let mut t = dna_table();
        assert_eq!(
            t.insert(vec![Value::text("x")]),
            Err(RelError::ArityMismatch { expected: 3, got: 1 })
        );
        let err = t.insert(vec![Value::Int(1), Value::Int(2), Value::text("z")]);
        assert!(matches!(err, Err(RelError::TypeMismatch { .. })));
        // NULL is allowed in any column
        assert!(t.insert(vec![Value::Null, Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn scan_without_index() {
        let t = dna_table();
        let hits = t.scan(&Predicate::gt("length", Value::Int(950)));
        assert_eq!(hits, vec![RowId(0), RowId(1)]);
        assert_eq!(t.count(&Predicate::eq("organism", Value::text("H5N1"))), 2);
    }

    #[test]
    fn scan_uses_index() {
        let mut t = dna_table();
        t.create_index("by_accession", "accession").unwrap();
        assert!(t.has_index_on("accession"));
        assert!(!t.has_index_on("length"));
        let hits = t.scan(&Predicate::eq("accession", Value::text("A2")));
        assert_eq!(hits, vec![RowId(1)]);
        // compound predicate still routed through the index on the equality part
        let compound = Predicate::eq("accession", Value::text("A2"))
            .and(Predicate::gt("length", Value::Int(2000)));
        assert_eq!(t.scan(&compound), vec![RowId(1)]);
        let miss = Predicate::eq("accession", Value::text("nope"));
        assert!(t.scan(&miss).is_empty());
    }

    #[test]
    fn index_built_after_inserts_then_maintained() {
        let mut t = dna_table();
        t.create_index("org", "organism").unwrap();
        t.insert(vec![Value::text("A4"), Value::Int(1500), Value::text("H5N1")]).unwrap();
        assert_eq!(t.scan(&Predicate::eq("organism", Value::text("H5N1"))).len(), 3);
        assert_eq!(t.create_index("org", "organism"), Err(RelError::IndexExists("org".into())));
        assert!(matches!(t.create_index("bad", "nope"), Err(RelError::NoSuchColumn(_))));
    }

    #[test]
    fn remove_updates_index() {
        let mut t = dna_table();
        t.create_index("org", "organism").unwrap();
        t.remove(RowId(0)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.scan(&Predicate::eq("organism", Value::text("H5N1"))), vec![RowId(1)]);
        assert!(t.get(RowId(0)).is_none());
        assert_eq!(t.remove(RowId(0)), Err(RelError::NoSuchRow(0)));
    }

    #[test]
    fn update_reindexes() {
        let mut t = dna_table();
        t.create_index("org", "organism").unwrap();
        t.update(RowId(2), vec![Value::text("A3"), Value::Int(900), Value::text("H5N1")]).unwrap();
        assert_eq!(t.scan(&Predicate::eq("organism", Value::text("H5N1"))).len(), 3);
        assert_eq!(t.scan(&Predicate::eq("organism", Value::text("H1N1"))).len(), 0);
    }

    #[test]
    fn project_columns() {
        let t = dna_table();
        let rows =
            t.project(&Predicate::eq("organism", Value::text("H5N1")), &["accession"]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::text("A1")]);
        assert!(matches!(t.project(&Predicate::True, &["nope"]), Err(RelError::NoSuchColumn(_))));
    }

    #[test]
    fn ids_stable_after_removal() {
        let mut t = dna_table();
        t.remove(RowId(1)).unwrap();
        let id = t.insert(vec![Value::text("A4"), Value::Int(1), Value::text("X")]).unwrap();
        assert_eq!(id, RowId(3));
        assert_eq!(t.row_ids(), vec![RowId(0), RowId(2), RowId(3)]);
    }
}
