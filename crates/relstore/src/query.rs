//! Relational query operators: projection, ordering, limit, aggregation and hash joins.
//!
//! The paper stores type-specific metadata in relations and the query processor's
//! relational subqueries scan and join them. This module gives the relational store the
//! small algebra those subqueries need beyond a single-table predicate scan: ordering,
//! top-k, group-free aggregates and an equi-join between two tables.

use crate::predicate::Predicate;
use crate::table::Table;
use crate::value::Value;

/// A sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// Scan a table, then sort the resulting rows by a column.
pub fn scan_ordered(
    table: &Table,
    predicate: &Predicate,
    column: &str,
    order: Order,
) -> Vec<Vec<Value>> {
    let idx = match table.schema().column_index(column) {
        Some(i) => i,
        None => return Vec::new(),
    };
    let mut rows: Vec<Vec<Value>> = table.select(predicate).into_iter().map(|(_, r)| r).collect();
    rows.sort_by(|a, b| {
        let cmp = a[idx].compare(&b[idx]);
        match order {
            Order::Asc => cmp,
            Order::Desc => cmp.reverse(),
        }
    });
    rows
}

/// Scan, order and keep only the first `k` rows (top-k).
pub fn scan_top_k(
    table: &Table,
    predicate: &Predicate,
    column: &str,
    order: Order,
    k: usize,
) -> Vec<Vec<Value>> {
    let mut rows = scan_ordered(table, predicate, column, order);
    rows.truncate(k);
    rows
}

/// Count rows matching a predicate.
pub fn count(table: &Table, predicate: &Predicate) -> usize {
    table.count(predicate)
}

/// Sum an integer column over matching rows (NULL and non-int values skipped).
pub fn sum_int(table: &Table, predicate: &Predicate, column: &str) -> i64 {
    let Some(idx) = table.schema().column_index(column) else { return 0 };
    table
        .select(predicate)
        .into_iter()
        .filter_map(|(_, row)| row.get(idx).and_then(Value::as_int))
        .sum()
}

/// Average of an integer/float column over matching rows, or `None` when no rows match.
pub fn avg(table: &Table, predicate: &Predicate, column: &str) -> Option<f64> {
    let idx = table.schema().column_index(column)?;
    let values: Vec<f64> = table
        .select(predicate)
        .into_iter()
        .filter_map(|(_, row)| row.get(idx).and_then(Value::as_float))
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Minimum and maximum of a column over matching rows.
pub fn min_max(table: &Table, predicate: &Predicate, column: &str) -> Option<(Value, Value)> {
    let idx = table.schema().column_index(column)?;
    let mut rows = table.select(predicate).into_iter().filter_map(|(_, r)| r.into_iter().nth(idx));
    let first = rows.next()?;
    let (mut lo, mut hi) = (first.clone(), first);
    for v in rows {
        if v.compare(&lo) == std::cmp::Ordering::Less {
            lo = v.clone();
        }
        if v.compare(&hi) == std::cmp::Ordering::Greater {
            hi = v;
        }
    }
    Some((lo, hi))
}

/// Distinct values of a column over matching rows, in ascending order.
pub fn distinct(table: &Table, predicate: &Predicate, column: &str) -> Vec<Value> {
    let Some(idx) = table.schema().column_index(column) else { return Vec::new() };
    let mut values: Vec<Value> = table
        .select(predicate)
        .into_iter()
        .filter_map(|(_, row)| row.into_iter().nth(idx))
        .collect();
    values.sort_by(|a, b| a.compare(b));
    values.dedup();
    values
}

/// Group matching rows by a column and count each group. Returns `(value, count)` pairs
/// in ascending value order — the `GROUP BY col` / `COUNT(*)` the processor needs for
/// aggregate subqueries.
pub fn group_by_count(table: &Table, predicate: &Predicate, column: &str) -> Vec<(Value, usize)> {
    let Some(idx) = table.schema().column_index(column) else { return Vec::new() };
    let mut rows: Vec<Value> = table
        .select(predicate)
        .into_iter()
        .filter_map(|(_, row)| row.into_iter().nth(idx))
        .collect();
    rows.sort_by(|a, b| a.compare(b));
    let mut out: Vec<(Value, usize)> = Vec::new();
    for v in rows {
        match out.last_mut() {
            Some((last, count)) if last.compare(&v) == std::cmp::Ordering::Equal => *count += 1,
            _ => out.push((v, 1)),
        }
    }
    out
}

/// An equi-join of two tables on `left.left_col = right.right_col`, returning the
/// concatenation of the matching rows (left columns followed by right columns).
///
/// Implemented as a hash join: the right table is hashed on its join column, then the
/// left table is probed. This is the join the relational-annotation baseline performs
/// by hand.
pub fn hash_join(
    left: &Table,
    left_pred: &Predicate,
    left_col: &str,
    right: &Table,
    right_pred: &Predicate,
    right_col: &str,
) -> Vec<Vec<Value>> {
    use std::collections::HashMap;
    let (Some(li), Some(ri)) =
        (left.schema().column_index(left_col), right.schema().column_index(right_col))
    else {
        return Vec::new();
    };

    // hash the (smaller) right side by join-key display
    let mut index: HashMap<String, Vec<Vec<Value>>> = HashMap::new();
    for (_, row) in right.select(right_pred) {
        index.entry(key_of(&row[ri])).or_default().push(row);
    }

    let mut out = Vec::new();
    for (_, lrow) in left.select(left_pred) {
        if let Some(matches) = index.get(&key_of(&lrow[li])) {
            for rrow in matches {
                let mut joined = lrow.clone();
                joined.extend(rrow.iter().cloned());
                out.push(joined);
            }
        }
    }
    out
}

fn key_of(v: &Value) -> String {
    match v {
        Value::Null => "\0".into(),
        Value::Int(i) => format!("i{i}"),
        Value::Float(x) => format!("f{x}"),
        Value::Text(t) => format!("t{t}"),
        Value::Bool(b) => format!("b{b}"),
        Value::Blob(b) => format!("x{}", b.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Column, ColumnType, Schema};

    fn seqs() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("name", ColumnType::Text),
            Column::new("length", ColumnType::Int),
        ]);
        let mut t = Table::new("seq", schema);
        t.insert(vec![Value::Int(1), Value::text("a"), Value::Int(300)]).unwrap();
        t.insert(vec![Value::Int(2), Value::text("b"), Value::Int(100)]).unwrap();
        t.insert(vec![Value::Int(3), Value::text("c"), Value::Int(200)]).unwrap();
        t
    }

    fn annots() -> Table {
        let schema = Schema::new(vec![
            Column::new("seq_id", ColumnType::Int),
            Column::new("note", ColumnType::Text),
        ]);
        let mut t = Table::new("ann", schema);
        t.insert(vec![Value::Int(1), Value::text("first")]).unwrap();
        t.insert(vec![Value::Int(1), Value::text("second")]).unwrap();
        t.insert(vec![Value::Int(3), Value::text("third")]).unwrap();
        t
    }

    #[test]
    fn ordering() {
        let t = seqs();
        let asc = scan_ordered(&t, &Predicate::True, "length", Order::Asc);
        let lens: Vec<i64> = asc.iter().map(|r| r[2].as_int().unwrap()).collect();
        assert_eq!(lens, vec![100, 200, 300]);
        let desc = scan_ordered(&t, &Predicate::True, "length", Order::Desc);
        let lens: Vec<i64> = desc.iter().map(|r| r[2].as_int().unwrap()).collect();
        assert_eq!(lens, vec![300, 200, 100]);
    }

    #[test]
    fn top_k() {
        let t = seqs();
        let top2 = scan_top_k(&t, &Predicate::True, "length", Order::Desc, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0][2].as_int(), Some(300));
    }

    #[test]
    fn aggregates() {
        let t = seqs();
        assert_eq!(count(&t, &Predicate::True), 3);
        assert_eq!(sum_int(&t, &Predicate::True, "length"), 600);
        assert_eq!(avg(&t, &Predicate::True, "length"), Some(200.0));
        let (lo, hi) = min_max(&t, &Predicate::True, "length").unwrap();
        assert_eq!(lo, Value::Int(100));
        assert_eq!(hi, Value::Int(300));
        assert!(avg(&t, &Predicate::eq("id", Value::Int(999)), "length").is_none());
    }

    #[test]
    fn equi_join() {
        let s = seqs();
        let a = annots();
        let joined = hash_join(&s, &Predicate::True, "id", &a, &Predicate::True, "seq_id");
        // seq 1 matches 2 annotations, seq 3 matches 1, seq 2 matches none
        assert_eq!(joined.len(), 3);
        // each joined row is seq columns (3) + ann columns (2)
        assert!(joined.iter().all(|r| r.len() == 5));
        // filtered join: only long sequences
        let long = hash_join(
            &s,
            &Predicate::gt("length", Value::Int(150)),
            "id",
            &a,
            &Predicate::True,
            "seq_id",
        );
        // seq 1 (300) -> 2 anns, seq 3 (200) -> 1 ann
        assert_eq!(long.len(), 3);
    }

    #[test]
    fn join_missing_column() {
        let s = seqs();
        let a = annots();
        assert!(hash_join(&s, &Predicate::True, "nope", &a, &Predicate::True, "seq_id").is_empty());
    }

    #[test]
    fn distinct_values() {
        let a = annots();
        // seq_id values are 1, 1, 3 -> distinct 1, 3
        assert_eq!(distinct(&a, &Predicate::True, "seq_id"), vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn group_by_count_aggregates() {
        let a = annots();
        let groups = group_by_count(&a, &Predicate::True, "seq_id");
        assert_eq!(groups, vec![(Value::Int(1), 2), (Value::Int(3), 1)]);
    }
}
