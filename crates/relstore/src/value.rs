//! Typed values, columns and schemas.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// Raw bytes — the paper stores "the raw actual data … in their native formats"
    /// alongside the metadata, so every type-specific table can carry a blob column.
    Blob,
}

impl ColumnType {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "Int",
            ColumnType::Float => "Float",
            ColumnType::Text => "Text",
            ColumnType::Bool => "Bool",
            ColumnType::Blob => "Blob",
        }
    }
}

/// A value stored in a row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL-style NULL; compatible with every column type.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Text value.
    Text(String),
    /// Boolean value.
    Bool(bool),
    /// Raw bytes value.
    Blob(Bytes),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Convenience constructor for blob values.
    pub fn blob(b: impl Into<Bytes>) -> Value {
        Value::Blob(b.into())
    }

    /// Whether this value can live in a column of the given type.
    pub fn matches(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ColumnType::Int)
                | (Value::Float(_), ColumnType::Float)
                | (Value::Text(_), ColumnType::Text)
                | (Value::Bool(_), ColumnType::Bool)
                | (Value::Blob(_), ColumnType::Blob)
        )
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float value, accepting ints as well.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The text value, if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The boolean value, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total ordering used by comparison predicates and sort: NULL sorts first, then
    /// by type (Int/Float compared numerically together), then value.
    pub fn compare(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            // heterogeneous comparisons order by a fixed type rank
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) | Value::Float(_) => 1,
        Value::Text(_) => 2,
        Value::Bool(_) => 3,
        Value::Blob(_) => 4,
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(t) => write!(f, "{t}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Blob(b) => write!(f, "<blob {} bytes>", b.len()),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Create a column definition.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// A table schema: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// The columns in definition order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Create a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A row of values, one per schema column.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn value_type_matching() {
        assert!(Value::Int(1).matches(ColumnType::Int));
        assert!(!Value::Int(1).matches(ColumnType::Text));
        assert!(Value::Null.matches(ColumnType::Blob));
        assert!(Value::text("x").matches(ColumnType::Text));
        assert!(Value::Bool(true).matches(ColumnType::Bool));
        assert!(Value::Float(1.5).matches(ColumnType::Float));
        assert!(Value::blob(vec![1u8, 2]).matches(ColumnType::Blob));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::text("hi").as_text(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::text("hi").as_int(), None);
    }

    #[test]
    fn value_ordering() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Ordering::Less);
        assert_eq!(Value::Int(2).compare(&Value::Float(1.5)), Ordering::Greater);
        assert_eq!(Value::Null.compare(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::text("a").compare(&Value::text("b")), Ordering::Less);
        assert_eq!(Value::text("a").compare(&Value::Int(5)), Ordering::Greater);
        assert_eq!(Value::Bool(false).compare(&Value::Bool(true)), Ordering::Less);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::blob(vec![0u8; 4]).to_string(), "<blob 4 bytes>");
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![
            Column::new("accession", ColumnType::Text),
            Column::new("length", ColumnType::Int),
        ]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column_index("length"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.column("accession").unwrap().ty, ColumnType::Text);
        assert_eq!(s.column_names(), vec!["accession", "length"]);
        assert_eq!(ColumnType::Blob.name(), "Blob");
    }
}
