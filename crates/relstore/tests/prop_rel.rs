//! Property tests: indexed scans must return exactly the same rows as a full scan, and
//! insert/remove must keep row counts and lookups consistent.

use proptest::prelude::*;
use relstore::{Column, ColumnType, Predicate, Schema, Table, Value};

fn table_with(rows: &[(String, i64)]) -> Table {
    let schema = Schema::new(vec![
        Column::new("name", ColumnType::Text),
        Column::new("len", ColumnType::Int),
    ]);
    let mut t = Table::new("t", schema);
    for (n, l) in rows {
        t.insert(vec![Value::text(n.clone()), Value::Int(*l)]).unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_equality_matches_full_scan(
        rows in prop::collection::vec(("[a-e]", 0i64..100), 1..80),
        probe in "[a-e]",
    ) {
        let mut indexed = table_with(&rows);
        indexed.create_index("by_name", "name").unwrap();
        let unindexed = table_with(&rows);
        let pred = Predicate::eq("name", Value::text(probe));
        let mut a = indexed.scan(&pred);
        let mut b = unindexed.scan(&pred);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn range_scan_matches_reference(
        rows in prop::collection::vec(("[a-z]{1,4}", 0i64..1000), 0..120),
        threshold in 0i64..1000,
    ) {
        let t = table_with(&rows);
        let pred = Predicate::ge("len", Value::Int(threshold));
        let got: usize = t.scan(&pred).len();
        let expected = rows.iter().filter(|(_, l)| *l >= threshold).count();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn remove_then_count_consistent(
        rows in prop::collection::vec(("[a-c]", 0i64..50), 1..60),
        remove in 0usize..60,
    ) {
        let mut t = table_with(&rows);
        t.create_index("by_name", "name").unwrap();
        let idx = remove % rows.len();
        t.remove(relstore::RowId(idx as u64)).unwrap();
        prop_assert_eq!(t.len(), rows.len() - 1);
        // every remaining value of "a" is findable via the index
        let expected = rows
            .iter()
            .enumerate()
            .filter(|(i, (n, _))| *i != idx && n == "a")
            .count();
        prop_assert_eq!(t.scan(&Predicate::eq("name", Value::text("a"))).len(), expected);
    }

    #[test]
    fn contains_predicate_matches_reference(
        rows in prop::collection::vec("[a-z]{1,8}", 0..80),
        needle in "[a-z]{1,3}",
    ) {
        let schema = Schema::new(vec![Column::new("s", ColumnType::Text)]);
        let mut t = Table::new("t", schema);
        for r in &rows {
            t.insert(vec![Value::text(r.clone())]).unwrap();
        }
        let got = t.scan(&Predicate::contains("s", needle.clone())).len();
        let expected = rows.iter().filter(|r| r.contains(&needle)).count();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn hash_join_matches_nested_loop(
        left in prop::collection::vec((0i64..10, "[a-z]{1,4}"), 0..40),
        right in prop::collection::vec((0i64..10, "[a-z]{1,4}"), 0..40),
    ) {
        use relstore::{hash_join, Column, ColumnType};
        let lschema = Schema::new(vec![
            Column::new("k", ColumnType::Int),
            Column::new("lv", ColumnType::Text),
        ]);
        let rschema = Schema::new(vec![
            Column::new("k", ColumnType::Int),
            Column::new("rv", ColumnType::Text),
        ]);
        let mut lt = Table::new("l", lschema);
        let mut rt = Table::new("r", rschema);
        for (k, v) in &left {
            lt.insert(vec![Value::Int(*k), Value::text(v.clone())]).unwrap();
        }
        for (k, v) in &right {
            rt.insert(vec![Value::Int(*k), Value::text(v.clone())]).unwrap();
        }
        let joined = hash_join(&lt, &Predicate::True, "k", &rt, &Predicate::True, "k");
        let expected: usize = left
            .iter()
            .map(|(lk, _)| right.iter().filter(|(rk, _)| rk == lk).count())
            .sum();
        prop_assert_eq!(joined.len(), expected);
        for row in &joined {
            prop_assert_eq!(row[0].as_int(), row[2].as_int());
        }
    }
}
