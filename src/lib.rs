//! # Graphitti
//!
//! An annotation management system for heterogeneous scientific objects — a Rust
//! reproduction of the ICDE 2008 demonstration paper *"Graphitti: An Annotation
//! Management System for Heterogeneous Objects"* (Gupta, Condit, Gupta; SDSC / UCSD).
//!
//! This facade crate re-exports every subsystem so applications can depend on a single
//! crate:
//!
//! * [`core`] — the annotation model and the [`core::Graphitti`] facade,
//! * [`query`] — the graph query language, planner and executor,
//! * [`agraph`] — the directed labelled multigraph ("labelled join index"),
//! * [`intervals`] — interval trees for 1-D substructures,
//! * [`spatial`] — R-trees for 2-D/3-D substructures,
//! * [`xml`] — the XML annotation-content store and path-expression engine,
//! * [`relational`] — the in-memory relational store for type-specific metadata,
//! * [`onto`] — the OntoQuest-style ontology store,
//! * [`workloads`] — synthetic scientific workloads (influenza study, brain atlas),
//! * [`baselines`] — the relational-annotation baseline and unindexed ablation variant.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete annotate-then-query walk-through. In
//! short:
//!
//! ```
//! use graphitti::core::{Graphitti, DataType, Marker};
//!
//! let mut sys = Graphitti::new();
//! // register a DNA sequence and annotate an interval of it
//! let seq = sys.register_sequence("H5N1-segment-4", DataType::DnaSequence, 1_800, "chr-demo");
//! let ann = sys
//!     .annotate()
//!     .title("putative cleavage site")
//!     .comment("polybasic cleavage site observed in HA")
//!     .creator("condit")
//!     .mark(seq, Marker::interval(1_020, 1_062))
//!     .commit()
//!     .unwrap();
//! assert!(sys.annotation(ann).is_some());
//! ```
//!
//! ## Performance
//!
//! Query execution is **plan-driven and pipelined** (see [`query::plan`] and
//! [`query::exec`]):
//!
//! * the system maintains **persistent inverted indexes** incrementally at
//!   register / annotate time ([`core::Indexes`]): term → annotation postings,
//!   doc → annotation, data type → referents, block id → referents, referent →
//!   annotations — so no subquery ever scans the registries or rebuilds a
//!   throwaway map per query;
//! * the planner estimates subquery selectivity from **live statistics**
//!   ([`core::Stats`] plus keyword / element document frequencies) and orders
//!   subqueries most-selective-first;
//! * the most selective subquery of each family **seeds** the candidate set straight
//!   from an index, later subqueries **verify** the survivors with `O(log n)`
//!   membership probes, and candidate sets are sorted id vectors intersected by a
//!   galloping merge ([`query::setops`]);
//! * collation starts neighbor expansion from the pruned candidate set and splits the
//!   witness subgraph into result pages with a single induction + union-find pass.
//!
//! On the benchmark workloads this makes the worked example queries 2.6–3.3× faster
//! than the scan-and-intersect strategy (preserved as [`query::reference`] — also the
//! oracle that randomized tests compare against): `fig3_query` connection-graph query
//! 224 µs → 67 µs, `q1_tp53` at 200 images 663 µs → 252 µs on the same machine.
//! Run `cargo bench` then `cargo run -p bench --bin bench_summary` to regenerate the
//! machine-readable `BENCH_query.json`.
//!
//! ## Concurrency
//!
//! The read path is **snapshot-isolated and concurrent** (see `ARCHITECTURE.md` for
//! the full model):
//!
//! * [`core::Graphitti`] keeps all state in an `Arc`-shared [`core::SystemView`];
//!   [`core::Snapshot`] captures it in O(1) and the first mutation afterwards
//!   copy-on-publishes, so readers never block writers and never see torn state;
//! * [`query::QueryService`] executes independent queries from a submission queue in
//!   parallel on a worker pool, fans the verify phase of one large query across
//!   chunked candidate ranges, and fronts execution with an LRU result cache keyed by
//!   the canonical query form ([`query::Query::canonicalize`]) and invalidated on
//!   snapshot publish.
//!
//! ## Sharding
//!
//! [`core::ShardedSystem`] hash-partitions annotations / referents / content across N
//! independent shards by anchor-object hash (object metadata and the ontology are
//! replicated; annotation/referent ids stay **global**), and
//! [`query::ShardedQueryService`] serves scatter-gather over a consistent
//! [`core::ShardCut`] — per-shard candidate pipelines merged by a k-way sorted union,
//! one global collation pass, answers **byte-identical** to the equivalent unsharded
//! system (the randomized cross-shard battery in
//! `crates/graphitti-query/tests/sharded_equivalence.rs` pins this at shard counts
//! {1, 2, 3, 8}).  See `examples/sharded_service.rs` and the "Sharding" section of
//! `ARCHITECTURE.md`.
//!
//! Run `cargo bench -p bench --bench throughput` for queries/second and latency
//! percentiles per worker/cache/shards configuration (`BENCH_throughput.json`).
//!
//! ## Network tier
//!
//! [`net::NetServer`] puts either serving layer behind a TCP endpoint speaking a
//! CRC-framed binary protocol (query DSL + budget in, **streamed result pages**
//! out, typed [`query::ServiceError`]s as wire error frames), with per-connection
//! backpressure, connection-level shedding, and a plaintext `/health` +
//! `/metrics` endpoint.  See the "Network tier" section of `ARCHITECTURE.md`,
//! `examples/network_service.rs`, and `cargo bench -p bench --bench serving`.

pub use agraph;
pub use baseline as baselines;
pub use datagen as workloads;
pub use graphitti_core as core;
pub use graphitti_net as net;
pub use graphitti_query as query;
pub use interval_index as intervals;
pub use ontology as onto;
pub use relstore as relational;
pub use spatial_index as spatial;
pub use xmlstore as xml;
