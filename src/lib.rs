//! # Graphitti
//!
//! An annotation management system for heterogeneous scientific objects — a Rust
//! reproduction of the ICDE 2008 demonstration paper *"Graphitti: An Annotation
//! Management System for Heterogeneous Objects"* (Gupta, Condit, Gupta; SDSC / UCSD).
//!
//! This facade crate re-exports every subsystem so applications can depend on a single
//! crate:
//!
//! * [`core`] — the annotation model and the [`core::Graphitti`] facade,
//! * [`query`] — the graph query language, planner and executor,
//! * [`agraph`] — the directed labelled multigraph ("labelled join index"),
//! * [`intervals`] — interval trees for 1-D substructures,
//! * [`spatial`] — R-trees for 2-D/3-D substructures,
//! * [`xml`] — the XML annotation-content store and path-expression engine,
//! * [`relational`] — the in-memory relational store for type-specific metadata,
//! * [`onto`] — the OntoQuest-style ontology store,
//! * [`workloads`] — synthetic scientific workloads (influenza study, brain atlas),
//! * [`baselines`] — the relational-annotation baseline and unindexed ablation variant.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete annotate-then-query walk-through. In
//! short:
//!
//! ```
//! use graphitti::core::{Graphitti, DataType, Marker};
//!
//! let mut sys = Graphitti::new();
//! // register a DNA sequence and annotate an interval of it
//! let seq = sys.register_sequence("H5N1-segment-4", DataType::DnaSequence, 1_800, "chr-demo");
//! let ann = sys
//!     .annotate()
//!     .title("putative cleavage site")
//!     .comment("polybasic cleavage site observed in HA")
//!     .creator("condit")
//!     .mark(seq, Marker::interval(1_020, 1_062))
//!     .commit()
//!     .unwrap();
//! assert!(sys.annotation(ann).is_some());
//! ```

pub use agraph;
pub use baseline as baselines;
pub use datagen as workloads;
pub use graphitti_core as core;
pub use graphitti_query as query;
pub use interval_index as intervals;
pub use ontology as onto;
pub use relstore as relational;
pub use spatial_index as spatial;
pub use xmlstore as xml;
